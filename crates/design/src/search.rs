//! The search driver: objective seam, evaluation memo, strategies.
//!
//! # Determinism contract
//!
//! All optimizer math (CMA-ES updates, surrogate fits, ranking, memo
//! bookkeeping) is serial. The only parallelism is fanning an evaluation
//! batch through [`tts_exec::par_map`], which preserves input order, so a
//! search is byte-identical at any `TTS_THREADS` and fully replayable from
//! its seed. Timing is only ever recorded into a `BestEffort`-tagged
//! histogram, which is excluded from deterministic metric snapshots.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

use tts_obs::{Determinism, MetricsSink};
use tts_rng::{Sample, SeedableRng, Xoshiro256pp};

use crate::cmaes::CmaEs;
use crate::space::{DesignSpace, Dim};
use crate::surrogate::{expected_improvement, Rbf, MAX_TRAINING};

/// Objective value marking an infeasible design (constraint violation the
/// objective cannot express as a penalty). Infeasible points are archived
/// but never become the incumbent and never enter surrogate training.
pub const INFEASIBLE: f64 = f64::INFINITY;

/// Latency buckets (milliseconds per simulator evaluation).
const EVAL_MS_EDGES: [f64; 10] = [0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0];

/// A black-box objective over a [`DesignSpace`]. `evaluate` runs the (maybe
/// expensive) simulator and returns its full output; `value` extracts the
/// scalar to minimize — keeping the two separate lets callers re-apply
/// richer selection rules (e.g. fig12's two-stage gain/delay rule) over the
/// archive of full outputs. Return [`INFEASIBLE`] from `value` for hard
/// constraint violations, or fold soft constraints in as penalties.
pub trait Objective: Sync {
    /// Full simulator output for one design point.
    type Out: Clone + Send;
    /// Run the simulator at the (snapped) point `x`.
    fn evaluate(&self, x: &[f64]) -> Self::Out;
    /// Scalar objective (lower is better) of an output.
    fn value(&self, out: &Self::Out) -> f64;
}

/// Byte-keyed evaluation memo: snapped point bits → simulator output.
/// Shareable across searches so e.g. a grid cross-check re-uses every
/// point the CMA-ES run already paid for.
#[derive(Debug, Clone, Default)]
pub struct EvalCache<Out> {
    map: BTreeMap<Vec<u8>, Out>,
}

impl<Out> EvalCache<Out> {
    /// An empty memo.
    pub fn new() -> Self {
        EvalCache {
            map: BTreeMap::new(),
        }
    }

    /// Number of memoized evaluations.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// How to explore the space.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Exhaustively evaluate an explicit candidate list, in order, keeping
    /// the first strictly-best point — the paper's sweep semantics.
    Grid(Vec<Vec<f64>>),
    /// Surrogate-screened (μ/μ_w, λ)-CMA-ES with a lattice-polish phase.
    Cmaes,
}

/// Tunables for one search run.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Exploration strategy.
    pub strategy: Strategy,
    /// Seed for every random decision in the run.
    pub seed: u64,
    /// Hard cap on *paid* simulator evaluations (memo hits are free).
    pub budget: usize,
    /// Cap on CMA-ES generations.
    pub max_generations: usize,
    /// Population size override (default `4 + ⌊3 ln d⌋`).
    pub lambda: Option<usize>,
    /// Paid evaluations per generation: the surrogate ranks the population
    /// by expected improvement and only the top `screen` are simulated.
    pub screen: usize,
    /// Space-filling design size seeding the surrogate before CMA-ES.
    pub doe: usize,
    /// Initial CMA-ES step size in the unit cube.
    pub sigma0: f64,
    /// Spend leftover budget certifying lattice-local optimality.
    pub polish: bool,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            strategy: Strategy::Cmaes,
            seed: 42,
            budget: 64,
            max_generations: 64,
            lambda: None,
            screen: 1,
            doe: 3,
            sigma0: 0.3,
            polish: true,
        }
    }
}

/// Outcome of a search.
#[derive(Debug, Clone)]
pub struct SearchResult<Out> {
    /// Best (snapped) design point found.
    pub best_x: Vec<f64>,
    /// Simulator output at `best_x`.
    pub best_out: Out,
    /// Objective value at `best_x` ([`INFEASIBLE`] when nothing feasible).
    pub best_value: f64,
    /// Paid simulator evaluations.
    pub evals: usize,
    /// Requests served from the memo instead of the simulator.
    pub memo_hits: usize,
    /// CMA-ES generations run (0 for grid).
    pub generations: usize,
    /// Surrogate model fits performed.
    pub surrogate_fits: usize,
    /// Best-so-far objective after each phase step (finite entries only,
    /// non-increasing).
    pub trace: Vec<f64>,
    /// Every distinct point whose true output was obtained, in first-seen
    /// order, with its full simulator output.
    pub archive: Vec<(Vec<f64>, Out)>,
}

struct Search<'a, O: Objective> {
    space: &'a DesignSpace,
    obj: &'a O,
    sink: &'a MetricsSink,
    cache: &'a mut EvalCache<O::Out>,
    budget: usize,
    evals: usize,
    memo_hits: usize,
    generations: usize,
    surrogate_fits: usize,
    known: BTreeSet<Vec<u8>>,
    archive: Vec<(Vec<f64>, O::Out)>,
    training: Vec<(Vec<f64>, f64)>,
    best: Option<(Vec<f64>, O::Out, f64)>,
    fallback: Option<(Vec<f64>, O::Out)>,
    trace: Vec<f64>,
}

impl<'a, O: Objective> Search<'a, O> {
    fn new(
        space: &'a DesignSpace,
        obj: &'a O,
        sink: &'a MetricsSink,
        cache: &'a mut EvalCache<O::Out>,
        budget: usize,
    ) -> Self {
        Search {
            space,
            obj,
            sink,
            cache,
            budget,
            evals: 0,
            memo_hits: 0,
            generations: 0,
            surrogate_fits: 0,
            known: BTreeSet::new(),
            archive: Vec::new(),
            training: Vec::new(),
            best: None,
            fallback: None,
            trace: Vec::new(),
        }
    }

    fn best_value(&self) -> f64 {
        self.best.as_ref().map_or(INFEASIBLE, |(_, _, v)| *v)
    }

    /// Fold a point with known true output into the search state. Archive
    /// order follows request order; the incumbent moves only on a strict
    /// improvement, so among ties the earliest-requested point wins —
    /// matching the grid sweep's first-best rule.
    fn observe(&mut self, x: &[f64], out: O::Out, key: Vec<u8>) {
        if !self.known.insert(key) {
            return;
        }
        let v = self.obj.value(&out);
        if self.fallback.is_none() {
            self.fallback = Some((x.to_vec(), out.clone()));
        }
        if v.is_finite() {
            self.training.push((self.space.unit_of(x), v));
            if v < self.best_value() {
                self.best = Some((x.to_vec(), out.clone(), v));
            }
        }
        self.archive.push((x.to_vec(), out));
    }

    /// Request true outputs for `points` (snapped). Memo hits are free;
    /// misses are deduplicated, truncated to the remaining budget, and
    /// fanned through `par_map` in request order.
    fn request(&mut self, points: &[Vec<f64>]) {
        let mut fresh: BTreeSet<Vec<u8>> = BTreeSet::new();
        let mut to_eval: Vec<Vec<f64>> = Vec::new();
        for x in points {
            let k = self.space.key(x);
            if self.cache.map.contains_key(&k) || fresh.contains(&k) {
                continue;
            }
            if self.evals + to_eval.len() >= self.budget {
                continue;
            }
            fresh.insert(k);
            to_eval.push(x.clone());
        }
        if !to_eval.is_empty() {
            let obj = self.obj;
            let t0 = Instant::now();
            let outs = tts_exec::par_map(&to_eval, |x| obj.evaluate(x));
            let per_eval_ms = t0.elapsed().as_secs_f64() * 1e3 / to_eval.len() as f64;
            let hist = self.sink.histogram_tagged(
                "design.eval_ms",
                &EVAL_MS_EDGES,
                Determinism::BestEffort,
            );
            for _ in 0..to_eval.len() {
                hist.record(per_eval_ms);
            }
            self.sink.counter("design.evals").add(to_eval.len() as u64);
            self.evals += to_eval.len();
            for (x, out) in to_eval.into_iter().zip(outs) {
                let k = self.space.key(&x);
                self.cache.map.insert(k, out);
            }
        }
        for x in points {
            let k = self.space.key(x);
            if let Some(out) = self.cache.map.get(&k) {
                if !fresh.contains(&k) {
                    self.memo_hits += 1;
                }
                let out = out.clone();
                self.observe(x, out, k);
            }
            // Unseen and unaffordable: silently skipped (budget exhausted).
        }
    }

    /// Fit the RBF surrogate on the best [`MAX_TRAINING`] feasible points.
    fn fit_surrogate(&mut self) -> Option<Rbf> {
        if self.training.len() < 3 {
            return None;
        }
        let samples: Vec<(Vec<f64>, f64)> = if self.training.len() > MAX_TRAINING {
            let mut idx: Vec<usize> = (0..self.training.len()).collect();
            idx.sort_by(|&a, &b| {
                self.training[a]
                    .1
                    .partial_cmp(&self.training[b].1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            idx.truncate(MAX_TRAINING);
            idx.sort_unstable();
            idx.iter().map(|&i| self.training[i].clone()).collect()
        } else {
            self.training.clone()
        };
        let fit = Rbf::fit(&samples);
        if fit.is_some() {
            self.surrogate_fits += 1;
            self.sink.counter("design.surrogate.fits").incr();
        }
        fit
    }

    /// Worst-feasible-plus-range stand-in so infeasible or unknown points
    /// rank strictly behind every feasible one in a CMA-ES tell.
    fn penalty_value(&self) -> f64 {
        let worst = self
            .training
            .iter()
            .map(|(_, v)| *v)
            .fold(f64::NEG_INFINITY, f64::max);
        if worst.is_finite() {
            let best = self.best_value();
            let range = if best.is_finite() {
                (worst - best).max(1.0)
            } else {
                1.0
            };
            worst + range
        } else {
            1.0
        }
    }

    fn run_grid(mut self, candidates: &[Vec<f64>]) -> SearchResult<O::Out> {
        assert!(!candidates.is_empty(), "grid strategy needs candidates");
        let pts: Vec<Vec<f64>> = candidates.iter().map(|c| self.space.snap(c)).collect();
        self.request(&pts);
        let v = self.best_value();
        if v.is_finite() {
            self.trace.push(v);
        }
        self.finish()
    }

    fn run_cmaes(mut self, cfg: &SearchConfig) -> SearchResult<O::Out> {
        let d = self.space.dim();

        // Deterministic Latin-hypercube design of experiments: one stratum
        // per point and dimension, strata shuffled by a seeded stream.
        let mut doe_rng = Xoshiro256pp::seed_from_u64(cfg.seed ^ 0x5eed_d0e5_5eed_d0e5);
        let n0 = cfg.doe.min(self.budget).max(1);
        let mut strata: Vec<Vec<usize>> = vec![(0..n0).collect(); d];
        for col in strata.iter_mut() {
            for i in (1..col.len()).rev() {
                let j = (f64::sample(&mut doe_rng) * (i + 1) as f64) as usize;
                col.swap(i, j.min(i));
            }
        }
        let doe_pts: Vec<Vec<f64>> = (0..n0)
            .map(|row| {
                let u: Vec<f64> = (0..d)
                    .map(|c| (strata[c][row] as f64 + 0.5) / n0 as f64)
                    .collect();
                self.space.from_unit(&u)
            })
            .collect();
        self.request(&doe_pts);
        if self.best_value().is_finite() {
            self.trace.push(self.best_value());
        }

        // Centre the strategy on the best DoE point when one is feasible.
        let mean0 = match &self.best {
            Some((bx, _, _)) => self.space.unit_of(bx),
            None => vec![0.5; d],
        };
        let mut es = CmaEs::new(d, cfg.seed, cfg.sigma0, cfg.lambda, mean0);

        let reserve = if cfg.polish {
            self.polish_reserve().min(self.budget / 3)
        } else {
            0
        };
        let gen_budget = self.budget.saturating_sub(reserve);
        let mut stall = 0usize;
        while self.evals < gen_budget && self.generations < cfg.max_generations {
            let asked = es.ask();
            let real: Vec<Vec<f64>> = asked.iter().map(|u| self.space.from_unit(u)).collect();
            let units: Vec<Vec<f64>> = real.iter().map(|x| self.space.unit_of(x)).collect();
            let prev_best = self.best_value();

            let rbf = self.fit_surrogate();
            // Rank the population's unevaluated points by expected
            // improvement and pay for only the most promising ones.
            let mut unknown: Vec<usize> = Vec::new();
            let mut seen_in_gen: BTreeSet<Vec<u8>> = BTreeSet::new();
            for (i, x) in real.iter().enumerate() {
                let k = self.space.key(x);
                if !self.cache.map.contains_key(&k) && seen_in_gen.insert(k) {
                    unknown.push(i);
                }
            }
            if let Some(rbf) = &rbf {
                let f_best = self.best_value();
                let mut scored: Vec<(f64, usize)> = unknown
                    .iter()
                    .map(|&i| {
                        let pred = rbf.predict(&units[i]);
                        let s = rbf.min_dist(&units[i]) * rbf.value_range();
                        (expected_improvement(pred, s, f_best), i)
                    })
                    .collect();
                scored.sort_by(|a, b| {
                    b.0.partial_cmp(&a.0)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.1.cmp(&b.1))
                });
                unknown = scored.into_iter().map(|(_, i)| i).collect();
            }
            let pay = cfg.screen.max(1).min(gen_budget - self.evals);
            let chosen: Vec<Vec<f64>> =
                unknown.iter().take(pay).map(|&i| real[i].clone()).collect();
            self.request(&chosen);

            let penalty = self.penalty_value();
            let tell_vals: Vec<f64> = real
                .iter()
                .enumerate()
                .map(|(i, x)| {
                    let k = self.space.key(x);
                    if let Some(out) = self.cache.map.get(&k) {
                        let v = self.obj.value(out);
                        if v.is_finite() {
                            v
                        } else {
                            penalty
                        }
                    } else if let Some(rbf) = &rbf {
                        rbf.predict(&units[i])
                    } else {
                        penalty
                    }
                })
                .collect();
            es.tell(&units, &tell_vals);
            self.generations += 1;
            self.sink.counter("design.generations").incr();

            let now_best = self.best_value();
            if now_best < prev_best {
                stall = 0;
            } else {
                stall += 1;
            }
            if now_best.is_finite() {
                self.trace.push(now_best);
            }
            if stall >= 12 && es.sigma() < 0.02 {
                break;
            }
        }

        if cfg.polish {
            self.polish();
        }
        self.finish()
    }

    /// Evaluations worth reserving for the polish phase: one sweep of the
    /// incumbent's lattice neighborhood.
    fn polish_reserve(&self) -> usize {
        self.space
            .dims()
            .iter()
            .map(|d| match *d {
                Dim::Continuous { step, .. } => {
                    if step > 0.0 {
                        2
                    } else {
                        0
                    }
                }
                Dim::Integer { .. } => 2,
                Dim::Categorical { choices, .. } => choices.saturating_sub(1),
            })
            .sum()
    }

    /// Hill-climb the snap lattice around the incumbent: evaluate its
    /// neighbors (cheapest certificate of grid-local optimality) and move
    /// only on strict improvement. Memoized neighbors are free, so the walk
    /// can keep riding cached values after the budget runs out.
    fn polish(&mut self) {
        loop {
            let Some((bx, _, bv)) = self.best.clone() else {
                break;
            };
            let ns = self.space.neighbors(&bx);
            let unknown: Vec<Vec<f64>> = ns
                .iter()
                .filter(|n| !self.cache.map.contains_key(&self.space.key(n)))
                .cloned()
                .collect();
            if !unknown.is_empty() && self.evals < self.budget {
                self.request(&unknown);
            }
            let mut step_best: Option<(Vec<f64>, f64)> = None;
            for n in &ns {
                if let Some(out) = self.cache.map.get(&self.space.key(n)) {
                    let v = self.obj.value(out);
                    if v.is_finite() && v < step_best.as_ref().map_or(INFEASIBLE, |(_, sv)| *sv) {
                        step_best = Some((n.clone(), v));
                    }
                }
            }
            match step_best {
                Some((nx, nv)) if nv < bv => {
                    let out = self
                        .cache
                        .map
                        .get(&self.space.key(&nx))
                        .expect("polish winner must be memoized")
                        .clone();
                    self.best = Some((nx, out, nv));
                    self.trace.push(nv);
                }
                _ => break,
            }
        }
    }

    fn finish(self) -> SearchResult<O::Out> {
        let (best_x, best_out, best_value) = match self.best {
            Some((x, o, v)) => (x, o, v),
            None => {
                let (x, o) = self
                    .fallback
                    .expect("design search evaluated no points (budget 0 or empty grid?)");
                (x, o, INFEASIBLE)
            }
        };
        if best_value.is_finite() {
            self.sink.gauge("design.best_objective").set(best_value);
        }
        SearchResult {
            best_x,
            best_out,
            best_value,
            evals: self.evals,
            memo_hits: self.memo_hits,
            generations: self.generations,
            surrogate_fits: self.surrogate_fits,
            trace: self.trace,
            archive: self.archive,
        }
    }
}

/// Minimize `obj` over `space` with a private evaluation memo.
pub fn minimize<O: Objective>(
    space: &DesignSpace,
    obj: &O,
    cfg: &SearchConfig,
    sink: &MetricsSink,
) -> SearchResult<O::Out> {
    let mut cache = EvalCache::new();
    minimize_with_cache(space, obj, cfg, sink, &mut cache)
}

/// Minimize `obj` over `space`, sharing `cache` with previous and future
/// searches — points already memoized cost nothing.
pub fn minimize_with_cache<O: Objective>(
    space: &DesignSpace,
    obj: &O,
    cfg: &SearchConfig,
    sink: &MetricsSink,
    cache: &mut EvalCache<O::Out>,
) -> SearchResult<O::Out> {
    assert!(
        cfg.budget > 0 || !cache.is_empty(),
        "search budget must be positive"
    );
    let search = Search::new(space, obj, sink, cache, cfg.budget);
    match &cfg.strategy {
        Strategy::Grid(candidates) => search.run_grid(candidates),
        Strategy::Cmaes => search.run_cmaes(cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Dim;

    struct Sphere {
        center: Vec<f64>,
    }

    impl Objective for Sphere {
        type Out = f64;
        fn evaluate(&self, x: &[f64]) -> f64 {
            x.iter()
                .zip(&self.center)
                .map(|(a, b)| (a - b) * (a - b))
                .sum()
        }
        fn value(&self, out: &f64) -> f64 {
            *out
        }
    }

    fn unit_space(d: usize) -> DesignSpace {
        DesignSpace::new(
            (0..d)
                .map(|_| Dim::Continuous {
                    name: "x",
                    lo: 0.0,
                    hi: 1.0,
                    step: 0.0,
                })
                .collect(),
        )
    }

    #[test]
    fn cmaes_minimizes_a_sphere() {
        let space = unit_space(3);
        let obj = Sphere {
            center: vec![0.3, 0.6, 0.4],
        };
        let cfg = SearchConfig {
            budget: 400,
            max_generations: 200,
            screen: 4,
            ..SearchConfig::default()
        };
        let sink = MetricsSink::disabled();
        let r = minimize(&space, &obj, &cfg, &sink);
        assert!(r.best_value < 1e-3, "sphere best {} too poor", r.best_value);
        assert!(r.evals <= 400);
    }

    #[test]
    fn grid_keeps_first_best_on_ties() {
        let space = DesignSpace::new(vec![Dim::Continuous {
            name: "x",
            lo: 0.0,
            hi: 4.0,
            step: 1.0,
        }]);
        struct Flat;
        impl Objective for Flat {
            type Out = f64;
            fn evaluate(&self, _x: &[f64]) -> f64 {
                1.0
            }
            fn value(&self, out: &f64) -> f64 {
                *out
            }
        }
        let candidates: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let cfg = SearchConfig {
            strategy: Strategy::Grid(candidates),
            budget: 100,
            ..SearchConfig::default()
        };
        let sink = MetricsSink::disabled();
        let r = minimize(&space, &Flat, &cfg, &sink);
        assert_eq!(r.best_x, vec![0.0], "ties must keep the earliest candidate");
        assert_eq!(r.evals, 5);
        assert_eq!(r.archive.len(), 5);
    }

    #[test]
    fn memo_is_shared_between_searches() {
        let space = DesignSpace::new(vec![Dim::Continuous {
            name: "x",
            lo: 0.0,
            hi: 4.0,
            step: 1.0,
        }]);
        let obj = Sphere { center: vec![2.0] };
        let sink = MetricsSink::disabled();
        let mut cache = EvalCache::new();
        let candidates: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let cfg = SearchConfig {
            strategy: Strategy::Grid(candidates.clone()),
            budget: 100,
            ..SearchConfig::default()
        };
        let first = minimize_with_cache(&space, &obj, &cfg, &sink, &mut cache);
        assert_eq!(first.evals, 5);
        let second = minimize_with_cache(&space, &obj, &cfg, &sink, &mut cache);
        assert_eq!(second.evals, 0, "second sweep must be all memo hits");
        assert_eq!(second.memo_hits, 5);
        assert_eq!(second.best_x, first.best_x);
    }

    #[test]
    fn budget_is_a_hard_cap() {
        let space = unit_space(2);
        let obj = Sphere {
            center: vec![0.5, 0.5],
        };
        let cfg = SearchConfig {
            budget: 9,
            ..SearchConfig::default()
        };
        let sink = MetricsSink::disabled();
        let r = minimize(&space, &obj, &cfg, &sink);
        assert!(r.evals <= 9, "spent {} evals over a budget of 9", r.evals);
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let space = unit_space(2);
        let obj = Sphere {
            center: vec![0.25, 0.75],
        };
        let cfg = SearchConfig {
            budget: 40,
            ..SearchConfig::default()
        };
        let sink = MetricsSink::disabled();
        let a = minimize(&space, &obj, &cfg, &sink);
        let b = minimize(&space, &obj, &cfg, &sink);
        assert_eq!(a.best_x, b.best_x);
        assert_eq!(a.trace, b.trace);
        assert_eq!(
            a.archive.iter().map(|(x, _)| x.clone()).collect::<Vec<_>>(),
            b.archive.iter().map(|(x, _)| x.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn infeasible_points_never_win() {
        let space = DesignSpace::new(vec![Dim::Continuous {
            name: "x",
            lo: 0.0,
            hi: 9.0,
            step: 1.0,
        }]);
        struct HalfFeasible;
        impl Objective for HalfFeasible {
            type Out = f64;
            fn evaluate(&self, x: &[f64]) -> f64 {
                x[0]
            }
            fn value(&self, out: &f64) -> f64 {
                if *out < 5.0 {
                    INFEASIBLE
                } else {
                    *out
                }
            }
        }
        let candidates: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let cfg = SearchConfig {
            strategy: Strategy::Grid(candidates),
            budget: 100,
            ..SearchConfig::default()
        };
        let sink = MetricsSink::disabled();
        let r = minimize(&space, &HalfFeasible, &cfg, &sink);
        assert_eq!(r.best_x, vec![5.0]);
        assert!(r.best_value.is_finite());
    }
}
