//! `tts-design`: deterministic surrogate-assisted design search.
//!
//! The paper (and the repo until now) picks PCM melting points by walking an
//! exhaustive candidate grid through the cluster simulator. That is fine for
//! one dimension and fatal for the joint spaces that actually matter
//! (material × mass × tariff × climate × server class). This crate replaces
//! the brute-force sweep with a derivative-free optimizer that typically
//! matches the grid optimum in an order of magnitude fewer simulator
//! evaluations:
//!
//! * a typed [`DesignSpace`] (continuous, integer, and categorical
//!   dimensions with box bounds and lattice snapping) and an [`Objective`]
//!   seam that separates the expensive simulator output from the scalar
//!   being minimized, so richer selection rules can be re-applied over the
//!   archive;
//! * a (μ/μ_w, λ)-CMA-ES core ([`cmaes::CmaEs`]) working in the unit cube;
//! * an RBF-surrogate / expected-improvement screening layer
//!   ([`surrogate`]) that ranks each CMA-ES population on the model and
//!   pays for simulator runs only on the most promising candidates;
//! * a byte-keyed evaluation memo ([`EvalCache`]) so no design point is
//!   ever simulated twice, shareable across searches (a grid cross-check
//!   re-uses everything the CMA-ES run already paid for);
//! * a lattice-polish phase that certifies grid-local optimality of the
//!   incumbent within the remaining budget.
//!
//! Everything is deterministic: no external dependencies, randomness only
//! from seeded `tts-rng` streams, all optimizer math serial, and evaluation
//! batches fanned out through `tts_exec::par_map` which preserves order —
//! results are byte-identical at any `TTS_THREADS` and replayable from a
//! single seed.

pub mod cmaes;
pub mod search;
pub mod space;
pub mod surrogate;

pub use search::{
    minimize, minimize_with_cache, EvalCache, Objective, SearchConfig, SearchResult, Strategy,
    INFEASIBLE,
};
pub use space::{DesignSpace, Dim};
