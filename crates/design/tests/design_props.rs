//! Property tests for the design-search optimizer on the classic
//! black-box test functions: sphere, Rosenbrock, Rastrigin, and a
//! discontinuous step. Driven by the in-repo deterministic prop harness —
//! every run prints its master seed on failure and replays exactly with
//! `TTS_PROP_SEED=0x…`.

use tts_design::{minimize, DesignSpace, Dim, Objective, SearchConfig};
use tts_obs::MetricsSink;
use tts_rng::prop::prelude::*;

type BoxedFn = Box<dyn Fn(&[f64]) -> f64 + Sync>;

/// A test function: boxed closure + its box bounds.
struct TestFn {
    f: BoxedFn,
    lo: f64,
    hi: f64,
    step: f64,
}

impl Objective for TestFn {
    type Out = f64;
    fn evaluate(&self, x: &[f64]) -> f64 {
        (self.f)(x)
    }
    fn value(&self, out: &f64) -> f64 {
        *out
    }
}

impl TestFn {
    fn space(&self, d: usize) -> DesignSpace {
        DesignSpace::new(
            (0..d)
                .map(|_| Dim::Continuous {
                    name: "x",
                    lo: self.lo,
                    hi: self.hi,
                    step: self.step,
                })
                .collect(),
        )
    }
}

fn sphere(center: Vec<f64>) -> TestFn {
    TestFn {
        f: Box::new(move |x| x.iter().zip(&center).map(|(a, b)| (a - b) * (a - b)).sum()),
        lo: 0.0,
        hi: 1.0,
        step: 0.0,
    }
}

fn rosenbrock() -> TestFn {
    TestFn {
        f: Box::new(|x| {
            x.windows(2)
                .map(|w| 100.0 * (w[1] - w[0] * w[0]).powi(2) + (1.0 - w[0]).powi(2))
                .sum()
        }),
        lo: -2.0,
        hi: 2.0,
        step: 0.0,
    }
}

fn rastrigin() -> TestFn {
    TestFn {
        f: Box::new(|x| {
            10.0 * x.len() as f64
                + x.iter()
                    .map(|&v| v * v - 10.0 * (std::f64::consts::TAU * v).cos())
                    .sum::<f64>()
        }),
        lo: -2.0,
        hi: 2.0,
        step: 0.0,
    }
}

/// Discontinuous staircase: constant plateaus with jumps, lowest plateau
/// at the lower-left corner. No gradient information anywhere.
fn staircase() -> TestFn {
    TestFn {
        f: Box::new(|x| x.iter().map(|&v| (v * 3.0).min(2.999).floor()).sum()),
        lo: 0.0,
        hi: 1.0,
        step: 0.0,
    }
}

fn in_bounds(space: &DesignSpace, x: &[f64]) -> bool {
    space.dims().iter().zip(x).all(|(d, &v)| match *d {
        Dim::Continuous { lo, hi, .. } => (lo..=hi).contains(&v),
        Dim::Integer { lo, hi, .. } => (lo as f64..=hi as f64).contains(&v),
        Dim::Categorical { choices, .. } => (0.0..choices as f64).contains(&v),
    })
}

proptest! {
    #![cases(16)]

    #[test]
    fn sphere_converges_within_tolerance(
        seed in 0u64..1 << 48,
        cx in 0.15f64..0.85,
        cy in 0.15f64..0.85,
    ) {
        let obj = sphere(vec![cx, cy]);
        let space = obj.space(2);
        let cfg = SearchConfig { seed, budget: 150, max_generations: 100, screen: 2, ..SearchConfig::default() };
        let r = minimize(&space, &obj, &cfg, &MetricsSink::disabled());
        prop_assert!(r.best_value < 1e-2, "sphere best {} at center ({cx},{cy})", r.best_value);
        prop_assert!(r.evals <= 150);
        for (x, _) in &r.archive {
            prop_assert!(in_bounds(&space, x), "out-of-bounds point {x:?}");
        }
    }

    #[test]
    fn rosenbrock_converges_and_respects_bounds(seed in 0u64..1 << 48) {
        let obj = rosenbrock();
        let space = obj.space(2);
        let cfg = SearchConfig { seed, budget: 300, max_generations: 200, screen: 3, ..SearchConfig::default() };
        let r = minimize(&space, &obj, &cfg, &MetricsSink::disabled());
        // The optimum is 0 at (1,1); anywhere in the banana valley is far
        // below the ~10³ plateau values.
        prop_assert!(r.best_value < 1.0, "rosenbrock best {}", r.best_value);
        for (x, _) in &r.archive {
            prop_assert!(in_bounds(&space, x), "out-of-bounds point {x:?}");
        }
        for w in r.trace.windows(2) {
            prop_assert!(w[1] <= w[0], "trace must be non-increasing: {:?}", r.trace);
        }
    }

    #[test]
    fn rastrigin_reaches_a_deep_minimum(seed in 0u64..1 << 48) {
        let obj = rastrigin();
        let space = obj.space(2);
        // Multi-modal: seed the surrogate with a wide space-filling design
        // and a large initial step so CMA-ES starts in a good basin
        // instead of descending the first one it sees.
        let cfg = SearchConfig { seed, budget: 400, max_generations: 250, screen: 4, doe: 16, sigma0: 0.5, ..SearchConfig::default() };
        let r = minimize(&space, &obj, &cfg, &MetricsSink::disabled());
        // Global minimum 0 at the origin; on this domain the local minima
        // range from ~1 (first ring) to 8 (the corner basins), while the
        // inter-basin plateau averages ≈ 30. Below 8 means the search beat
        // the worst basin of a heavily multi-modal function; most seeds
        // land near 5 or better.
        prop_assert!(r.best_value < 8.0, "rastrigin best {}", r.best_value);
        for (x, _) in &r.archive {
            prop_assert!(in_bounds(&space, x), "out-of-bounds point {x:?}");
        }
    }

    #[test]
    fn staircase_finds_the_lowest_plateau(seed in 0u64..1 << 48) {
        let obj = staircase();
        let space = obj.space(2);
        let cfg = SearchConfig { seed, budget: 200, max_generations: 150, screen: 2, ..SearchConfig::default() };
        let r = minimize(&space, &obj, &cfg, &MetricsSink::disabled());
        // The lowest plateau (value 0) covers the lower-left ninth of the
        // square; a derivative-free search must land there despite zero
        // gradient signal on every plateau.
        prop_assert_eq!(r.best_value, 0.0);
        for (x, _) in &r.archive {
            prop_assert!(in_bounds(&space, x), "out-of-bounds point {x:?}");
        }
    }

    #[test]
    fn identical_seed_identical_trajectory(
        seed in 0u64..1 << 48,
        cx in 0.1f64..0.9,
        cy in 0.1f64..0.9,
    ) {
        let obj = sphere(vec![cx, cy]);
        let space = obj.space(2);
        let cfg = SearchConfig { seed, budget: 60, ..SearchConfig::default() };
        let a = minimize(&space, &obj, &cfg, &MetricsSink::disabled());
        let b = minimize(&space, &obj, &cfg, &MetricsSink::disabled());
        prop_assert_eq!(a.best_x.clone(), b.best_x.clone());
        prop_assert_eq!(a.best_value.to_bits(), b.best_value.to_bits());
        prop_assert_eq!(a.trace.clone(), b.trace.clone());
        let ax: Vec<Vec<f64>> = a.archive.iter().map(|(x, _)| x.clone()).collect();
        let bx: Vec<Vec<f64>> = b.archive.iter().map(|(x, _)| x.clone()).collect();
        prop_assert_eq!(ax, bx, "evaluation order must replay identically");
    }
}
