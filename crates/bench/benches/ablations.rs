//! Ablation benches for the design choices called out in DESIGN.md.
//!
//! Beyond raw timing, each ablation prints the *quality* metric it trades
//! against (accuracy, peak reduction, response time) to stderr once, so
//! `cargo bench` output doubles as the ablation record.

use std::hint::black_box;
use std::sync::Once;
use tts_bench::harness::{criterion_group, criterion_main, BatchSize, Criterion};
use tts_dcsim::balancer::{LeastLoaded, RandomBalancer, RoundRobin};
use tts_dcsim::cluster::{run_cooling_load, select_melting_point, ClusterConfig};
use tts_dcsim::discrete::ClusterConfig as DiscreteConfig;

/// The ablation cluster: 32 four-core servers in racks of eight.
fn discrete_32x4<B: tts_dcsim::balancer::Balancer>(
    balancer: B,
) -> tts_dcsim::discrete::DiscreteClusterSim<B> {
    DiscreteConfig::new(32)
        .cores_per_server(4)
        .rack_size(8)
        .build(balancer)
}
use tts_pcm::{ContainerBank, PcmMaterial};
use tts_server::{ServerClass, ServerWaxCharacteristics};
use tts_thermal::network::ThermalNetwork;
use tts_thermal::Integrator;
use tts_units::{
    Celsius, Fraction, JoulesPerKelvin, Liters, Meters, Seconds, Watts, WattsPerKelvin,
    WattsPerSquareMeterKelvin,
};
use tts_workload::series::TimeSeries;
use tts_workload::{GoogleTrace, JobStream, JobType};

static REPORT: Once = Once::new();

/// A two-node RC rig with a known analytic endpoint, for integrator
/// accuracy.
fn rig(integrator: Integrator) -> ThermalNetwork {
    let mut net = ThermalNetwork::new();
    net.set_integrator(integrator);
    let amb = net.add_boundary("ambient", Celsius::new(20.0));
    let a = net.add_capacitive("a", JoulesPerKelvin::new(1000.0), Celsius::new(80.0));
    let b = net.add_capacitive("b", JoulesPerKelvin::new(400.0), Celsius::new(20.0));
    net.connect(a, b, WattsPerKelvin::new(2.0));
    net.connect(b, amb, WattsPerKelvin::new(1.0));
    net.set_power(a, Watts::new(10.0));
    net
}

fn bench_integrators(c: &mut Criterion) {
    REPORT.call_once(report_quality_metrics);
    let mut group = c.benchmark_group("ablation_integrator");
    for (name, integ) in [
        ("exponential_euler", Integrator::ExponentialEuler),
        ("rk4", Integrator::Rk4),
        ("explicit_euler", Integrator::ExplicitEuler),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || rig(integ),
                |mut net| {
                    for _ in 0..1000 {
                        net.step(Seconds::new(20.0));
                    }
                    black_box(net.time())
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_balancers(c: &mut Criterion) {
    let trace = TimeSeries::new(Seconds::new(60.0), vec![0.7; 30]);
    let jobs = JobStream::new(trace, JobType::SocialNetworking, 32, 7).collect_all();
    let mut group = c.benchmark_group("ablation_balancer");
    group.sample_size(10);
    group.bench_function("round_robin", |b| {
        b.iter_batched(
            || discrete_32x4(RoundRobin::new()),
            |mut sim| black_box(sim.run(&jobs, Seconds::new(1800.0))),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("least_loaded", |b| {
        b.iter_batched(
            || discrete_32x4(LeastLoaded::new()),
            |mut sim| black_box(sim.run(&jobs, Seconds::new(1800.0))),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("random", |b| {
        b.iter_batched(
            || discrete_32x4(RandomBalancer::new(9)),
            |mut sim| black_box(sim.run(&jobs, Seconds::new(1800.0))),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_melting_selection(c: &mut Criterion) {
    let trace = GoogleTrace::default_two_day();
    let spec = ServerClass::LowPower1U.spec();
    let chars = ServerWaxCharacteristics::extract(
        &spec,
        &PcmMaterial::commercial_paraffin(Celsius::new(45.0)),
    );
    let config = ClusterConfig::paper_cluster(spec, chars);
    let mut group = c.benchmark_group("ablation_melting_point");
    group.sample_size(10);
    group.bench_function("fixed_39C_retail_wax", |b| {
        let cfg = ClusterConfig {
            chars: config.chars.with_melting_point(Celsius::new(39.0)),
            spec: config.spec.clone(),
            servers: config.servers,
        };
        b.iter(|| black_box(run_cooling_load(&cfg, trace.total())))
    });
    group.bench_function("optimized", |b| {
        b.iter(|| {
            black_box(select_melting_point(
                &config,
                trace.total(),
                (30..=60).map(f64::from),
            ))
        })
    });
    group.finish();
}

/// One-time stderr report of the quality side of each ablation.
fn report_quality_metrics() {
    // Container subdivision: the paper's no-metal-mesh argument.
    let film = WattsPerSquareMeterKelvin::new(30.0);
    let one = ContainerBank::subdivide(Liters::new(4.0), 1, Meters::new(0.40), Meters::new(0.20));
    let four = ContainerBank::subdivide(Liters::new(4.0), 4, Meters::new(0.40), Meters::new(0.20));
    eprintln!(
        "[ablation] container subdivision: 1 box => {:.2} W/K, 4 boxes => {:.2} W/K ({}x)",
        one.total_conductance(film).value(),
        four.total_conductance(film).value(),
        four.total_conductance(film).value() / one.total_conductance(film).value()
    );

    // Melting point choice: retail 39 °C wax vs optimized, 1U cluster.
    let trace = GoogleTrace::default_two_day();
    let spec = ServerClass::LowPower1U.spec();
    let chars = ServerWaxCharacteristics::extract(
        &spec,
        &PcmMaterial::commercial_paraffin(Celsius::new(45.0)),
    );
    let config = ClusterConfig::paper_cluster(spec, chars);
    let fixed = run_cooling_load(
        &ClusterConfig {
            chars: config.chars.with_melting_point(Celsius::new(39.0)),
            spec: config.spec.clone(),
            servers: config.servers,
        },
        trace.total(),
    );
    let (_, best) = select_melting_point(&config, trace.total(), (30..=68).map(f64::from));
    eprintln!(
        "[ablation] melting point: fixed 39C => {:.2}% peak reduction, optimized ({:.0}C) => {:.2}%",
        fixed.peak_reduction.percent(),
        best.melting_point.value(),
        best.peak_reduction.percent()
    );

    // Balancer service quality under the same jobs.
    let jobs = {
        let trace = TimeSeries::new(Seconds::new(60.0), vec![0.85; 30]);
        JobStream::new(trace, JobType::MapReduce, 32, 7).collect_all()
    };
    let rr = discrete_32x4(RoundRobin::new())
        .run(&jobs, Seconds::new(1800.0))
        .mean_response_s;
    let ll = discrete_32x4(LeastLoaded::new())
        .run(&jobs, Seconds::new(1800.0))
        .mean_response_s;
    eprintln!("[ablation] balancer mean response: round-robin {rr:.2}s, least-loaded {ll:.2}s");

    // Utilization consistency under different load fractions (Figure 12's
    // claim that arms agree off-peak) — handled in tests; note the check.
    let _ = Fraction::new(0.5);
}

fn bench_steady_state(c: &mut Criterion) {
    // Direct linear solve vs. transient settling for the same equilibrium —
    // the ablation behind using the direct solver in sweep-heavy paths.
    let mut group = c.benchmark_group("ablation_steady_state");
    group.bench_function("direct_solve", |b| {
        b.iter_batched(
            || rig(Integrator::ExponentialEuler),
            |net| black_box(tts_thermal::solve_steady_state(&net)),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("transient_settling", |b| {
        b.iter_batched(
            || rig(Integrator::ExponentialEuler),
            |mut net| {
                black_box(net.run_to_steady_state(Seconds::new(20.0), 1e-6, Seconds::new(1e7)))
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_integrators,
    bench_balancers,
    bench_melting_selection,
    bench_steady_state
);
criterion_main!(benches);
