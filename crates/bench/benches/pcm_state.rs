//! Performance of the PCM enthalpy model and melt/freeze stepping.

use std::hint::black_box;
use tts_bench::harness::{criterion_group, criterion_main, Criterion};
use tts_pcm::{EnthalpyCurve, PcmMaterial, PcmState};
use tts_units::{Celsius, Grams, Seconds, WattsPerKelvin};

fn bench_enthalpy_curve(c: &mut Criterion) {
    let wax = PcmMaterial::validation_wax();
    let curve = EnthalpyCurve::for_material(&wax);
    c.bench_function("enthalpy_round_trip", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..1000 {
                let t = Celsius::new(20.0 + (i as f64) * 0.04);
                let h = curve.enthalpy_at(black_box(t));
                acc += curve.temperature_at(h).value();
            }
            black_box(acc)
        })
    });
}

fn bench_pcm_step(c: &mut Criterion) {
    let wax = PcmMaterial::validation_wax();
    c.bench_function("pcm_state_step_10k", |b| {
        b.iter(|| {
            let mut s = PcmState::new(&wax, Grams::new(960.0), Celsius::new(25.0));
            let g = WattsPerKelvin::new(5.0);
            let mut q = 0.0;
            for i in 0..10_000 {
                let t = Celsius::new(25.0 + 25.0 * ((i as f64) * 0.001).sin().abs());
                q += s.step(black_box(t), g, Seconds::new(60.0)).value();
            }
            black_box(q)
        })
    });
}

criterion_group!(benches, bench_enthalpy_curve, bench_pcm_step);
criterion_main!(benches);
