//! Figure 12 regeneration: constrained-throughput runs per server class.

use std::hint::black_box;
use tts_bench::harness::{criterion_group, criterion_main, Criterion};
use tts_dcsim::throttle::{run_constrained, ConstrainedConfig};
use tts_pcm::PcmMaterial;
use tts_server::{ServerClass, ServerWaxCharacteristics};
use tts_units::{Celsius, Fraction};
use tts_workload::GoogleTrace;

fn bench_fig12(c: &mut Criterion) {
    let trace = GoogleTrace::default_two_day();
    let mut group = c.benchmark_group("fig12_constrained_throughput");
    group.sample_size(10);
    for class in ServerClass::ALL {
        let spec = class.spec();
        let chars = ServerWaxCharacteristics::extract(
            &spec,
            &PcmMaterial::commercial_paraffin(Celsius::new(45.0)),
        );
        let config = ConstrainedConfig::oversubscribed(spec, 1008, chars, Fraction::new(0.71));
        group.bench_function(format!("single_run_{class}"), |b| {
            b.iter(|| black_box(run_constrained(&config, trace.total())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
