//! Event throughput of the discrete cluster simulator.

use std::hint::black_box;
use tts_bench::harness::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use tts_dcsim::balancer::RoundRobin;
use tts_dcsim::discrete::ClusterConfig;
use tts_units::Seconds;
use tts_workload::series::TimeSeries;
use tts_workload::{Job, JobStream, JobType};

fn jobs_for(servers: usize, minutes: usize) -> Vec<Job> {
    let trace = TimeSeries::new(Seconds::new(60.0), vec![0.7; minutes]);
    JobStream::new(trace, JobType::SocialNetworking, servers, 42).collect_all()
}

fn bench_discrete(c: &mut Criterion) {
    let mut group = c.benchmark_group("dcsim_discrete");
    group.sample_size(10);
    for servers in [16usize, 64] {
        let jobs = jobs_for(servers, 30);
        group.throughput(Throughput::Elements(jobs.len() as u64));
        group.bench_function(format!("round_robin_{servers}_servers"), |b| {
            b.iter_batched(
                || {
                    ClusterConfig::new(servers)
                        .cores_per_server(4)
                        .rack_size(8)
                        .build(RoundRobin::new())
                },
                |mut sim| black_box(sim.run(&jobs, Seconds::new(3600.0))),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_discrete);
criterion_main!(benches);
