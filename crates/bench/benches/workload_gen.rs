//! Workload-generation throughput: trace synthesis and Poisson job
//! streams (the front of every experiment pipeline).

use std::hint::black_box;
use tts_bench::harness::{criterion_group, criterion_main, Criterion, Throughput};
use tts_workload::{weekly_trace, GoogleTrace, JobStream, JobType, WeeklyTraceConfig};

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation");
    group.bench_function("google_two_day", |b| {
        b.iter(|| black_box(GoogleTrace::default_two_day()))
    });
    group.bench_function("weekly_seven_day", |b| {
        b.iter(|| black_box(weekly_trace(&WeeklyTraceConfig::default())))
    });
    group.finish();
}

fn bench_job_stream(c: &mut Criterion) {
    let trace = GoogleTrace::default_two_day();
    let mut group = c.benchmark_group("job_stream");
    group.sample_size(10);
    // MapReduce on 50 servers over two days: ~10^5 jobs.
    let count = JobStream::new(trace.total().clone(), JobType::MapReduce, 50, 1)
        .collect_all()
        .len() as u64;
    group.throughput(Throughput::Elements(count));
    group.bench_function("mapreduce_50_servers_two_days", |b| {
        b.iter(|| {
            black_box(
                JobStream::new(trace.total().clone(), JobType::MapReduce, 50, 1).collect_all(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_trace_generation, bench_job_stream);
criterion_main!(benches);
