//! Figure 7 regeneration: the blockage sweeps for all three servers.
//!
//! The bench times one full 0–90 % sweep per server class (ten steady
//! states each) — the workload behind each Figure 7 panel.

use std::hint::black_box;
use tts_bench::harness::{criterion_group, criterion_main, Criterion};
use tts_server::blockage::default_sweep;
use tts_server::ServerClass;

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_blockage_sweep");
    group.sample_size(10);
    for class in ServerClass::ALL {
        let spec = class.spec();
        group.bench_function(format!("{class}"), |b| {
            b.iter(|| black_box(default_sweep(&spec)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
