//! Figure 11 regeneration: two-day cooling-load runs per server class.
//!
//! Times (a) a single cluster run over the two-day trace and (b) the full
//! melting-point optimization behind each Figure 11 panel. Characteristics
//! extraction is hoisted out (it is a Figure-7-class workload, measured in
//! `fig7_blockage`).

use std::hint::black_box;
use tts_bench::harness::{criterion_group, criterion_main, Criterion};
use tts_dcsim::cluster::{
    default_melting_candidates, run_cooling_load, select_melting_point, ClusterConfig,
};
use tts_pcm::PcmMaterial;
use tts_server::{ServerClass, ServerWaxCharacteristics};
use tts_units::Celsius;
use tts_workload::GoogleTrace;

fn bench_fig11(c: &mut Criterion) {
    let trace = GoogleTrace::default_two_day();
    let mut group = c.benchmark_group("fig11_cooling_load");
    group.sample_size(10);
    for class in ServerClass::ALL {
        let spec = class.spec();
        let chars = ServerWaxCharacteristics::extract(
            &spec,
            &PcmMaterial::commercial_paraffin(Celsius::new(45.0)),
        );
        let config = ClusterConfig::paper_cluster(spec, chars);
        group.bench_function(format!("single_run_{class}"), |b| {
            b.iter(|| black_box(run_cooling_load(&config, trace.total())))
        });
        group.bench_function(format!("melting_point_search_{class}"), |b| {
            b.iter(|| {
                black_box(select_melting_point(
                    &config,
                    trace.total(),
                    default_melting_candidates(),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
