//! Throughput of the epoch-sharded fleet engine, in simulated
//! server-steps (servers × epochs) per second, against the legacy
//! job-level heap engine at the paper's 1008-server cluster scale.
//!
//! Every benchmark sets `Throughput::Elements` to servers × 60-second
//! epochs (for the legacy engine: the equivalent epoch count of its
//! horizon), so the per-element rates in `BENCH_fleet.json` are directly
//! comparable across engines.

use std::hint::black_box;
use tts_bench::harness::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use tts_dcsim::fleet::{DatacenterSpec, FleetConfig, FleetSim};
use tts_units::Seconds;
use tts_workload::series::TimeSeries;
use tts_workload::{JobStream, JobType};

fn diurnal() -> TimeSeries {
    TimeSeries::from_fn(Seconds::new(300.0), 288, |t| {
        0.5 + 0.3 * (core::f64::consts::TAU * (t / 86_400.0 - 0.25)).sin()
    })
}

fn fleet(servers: usize, horizon_h: f64) -> FleetSim {
    FleetConfig::new(diurnal())
        .datacenter(DatacenterSpec::new("east", servers / 2))
        .datacenter(
            DatacenterSpec::new("west", servers - servers / 2)
                .ambient_c(26.0)
                .utc_offset_h(-8.0),
        )
        .cores_per_server(16)
        .rack_size(48)
        .shards(64)
        .horizon(Seconds::new(horizon_h * 3600.0))
        .build()
}

fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_engine");
    group.sample_size(10);

    // The headline scale point: 100k servers, six diurnal hours.
    let (servers, horizon_h) = (100_000usize, 6.0);
    group.throughput(Throughput::Elements(
        servers as u64 * (horizon_h * 60.0) as u64,
    ));
    group.bench_function("100k_servers_6h", |b| {
        b.iter_batched(
            || fleet(servers, horizon_h),
            |mut sim| black_box(sim.run()),
            BatchSize::SmallInput,
        )
    });

    // The paper's cluster scale, for the head-to-head ratio below.
    let (servers, horizon_h) = (1008usize, 0.5);
    group.throughput(Throughput::Elements(
        servers as u64 * (horizon_h * 60.0) as u64,
    ));
    group.bench_function("1008_servers_30min", |b| {
        b.iter_batched(
            || fleet(servers, horizon_h),
            |mut sim| black_box(sim.run()),
            BatchSize::SmallInput,
        )
    });

    // The old engine at the same scale: 1008 servers replaying 30 minutes
    // of job-level events through the binary-heap simulator. Same
    // element accounting (servers × equivalent 60 s epochs).
    let jobs = {
        let trace = TimeSeries::new(Seconds::new(60.0), vec![0.7; 30]);
        JobStream::new(trace, JobType::SocialNetworking, 1008, 42).collect_all()
    };
    group.throughput(Throughput::Elements(1008 * 30));
    group.bench_function("legacy_1008_servers_30min", |b| {
        b.iter_batched(
            || {
                tts_dcsim::legacy::LegacySim::new(
                    1008,
                    16,
                    48,
                    tts_dcsim::balancer::RoundRobin::new(),
                )
            },
            |mut sim| black_box(sim.run(&jobs, Seconds::new(1800.0))),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
