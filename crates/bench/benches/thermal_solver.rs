//! Performance of the RC thermal-network solver (the Icepak substitute).

use std::hint::black_box;
use tts_bench::harness::{criterion_group, criterion_main, BatchSize, Criterion};
use tts_server::{ServerClass, ServerThermalModel};
use tts_thermal::network::ThermalNetwork;
use tts_units::{Celsius, Fraction, JoulesPerKelvin, Seconds, Watts, WattsPerKelvin};

/// A synthetic chain network with `n` air nodes and `n` solids.
fn chain_network(n: usize) -> ThermalNetwork {
    let mut net = ThermalNetwork::new();
    let inlet = net.add_boundary("inlet", Celsius::new(25.0));
    let outlet = net.add_boundary("outlet", Celsius::new(25.0));
    let mcp = WattsPerKelvin::new(10.0);
    let mut prev = inlet;
    for i in 0..n {
        let air = net.add_air(format!("air{i}"), Celsius::new(25.0));
        net.advect(prev, air, mcp);
        let solid = net.add_capacitive(
            format!("solid{i}"),
            JoulesPerKelvin::new(500.0),
            Celsius::new(25.0),
        );
        net.connect(solid, air, WattsPerKelvin::new(2.0));
        net.set_power(solid, Watts::new(20.0));
        prev = air;
    }
    net.advect(prev, outlet, mcp);
    net
}

fn bench_network_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("thermal_network_step");
    for n in [4usize, 16, 64] {
        group.bench_function(format!("chain_{n}_nodes"), |b| {
            b.iter_batched(
                || chain_network(n),
                |mut net| {
                    for _ in 0..100 {
                        net.step(Seconds::new(10.0));
                    }
                    black_box(net.time())
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_server_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_model");
    group.sample_size(10);
    for class in ServerClass::ALL {
        group.bench_function(format!("steady_state_{class}"), |b| {
            b.iter_batched(
                || {
                    let mut m = ServerThermalModel::new(class.spec());
                    m.set_load(Fraction::ONE, Fraction::ONE);
                    m
                },
                |mut m| {
                    m.run_to_steady_state(Seconds::new(30.0), 1e-5, Seconds::new(1e6));
                    black_box(m.outlet_temp())
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_network_step, bench_server_model);
criterion_main!(benches);
