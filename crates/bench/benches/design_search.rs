//! Latency of the `tts-design` search stack: the optimizer overhead alone
//! (CMA-ES + surrogate screening on an analytic objective, no simulator),
//! and the paper-space melting-point search end to end against the real
//! dcsim cooling-load oracle. Throughput is counted in paid simulator
//! evaluations, so the per-element rate in `BENCH_design.json` reads as
//! "time per design-point evaluation including all optimizer overhead".

use std::hint::black_box;
use thermal_time_shifting::design::{self, SearchConfig};
use tts_bench::harness::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use tts_dcsim::ClusterConfig;
use tts_design::{minimize, DesignSpace, Dim, Objective};
use tts_obs::MetricsSink;
use tts_pcm::PcmMaterial;
use tts_server::{ServerClass, ServerWaxCharacteristics};
use tts_units::Celsius;
use tts_workload::GoogleTrace;

/// The analytic stand-in: a 3-D sphere, so the measurement is pure
/// optimizer overhead (ask/tell, RBF fits, EI ranking, memo bookkeeping).
struct Sphere;

impl Objective for Sphere {
    type Out = f64;
    fn evaluate(&self, x: &[f64]) -> f64 {
        x.iter().map(|v| (v - 0.4) * (v - 0.4)).sum()
    }
    fn value(&self, out: &f64) -> f64 {
        *out
    }
}

fn bench_design(c: &mut Criterion) {
    let mut group = c.benchmark_group("design_search");
    group.sample_size(10);

    // Optimizer overhead: 120 evaluations of a free objective.
    let space = DesignSpace::new(
        (0..3)
            .map(|_| Dim::Continuous {
                name: "x",
                lo: 0.0,
                hi: 1.0,
                step: 0.0,
            })
            .collect(),
    );
    let cfg = SearchConfig {
        budget: 120,
        max_generations: 80,
        screen: 2,
        ..SearchConfig::default()
    };
    group.throughput(Throughput::Elements(cfg.budget as u64));
    group.bench_function("overhead_sphere_3d_120_evals", |b| {
        b.iter_batched(
            || (),
            |()| black_box(minimize(&space, &Sphere, &cfg, &MetricsSink::disabled())),
            BatchSize::SmallInput,
        )
    });

    // End to end: the paper's melting-point space against the real dcsim
    // cooling-load oracle at the `design` experiment's default budget.
    let spec = ServerClass::LowPower1U.spec();
    let chars = ServerWaxCharacteristics::extract(
        &spec,
        &PcmMaterial::commercial_paraffin(Celsius::new(45.0)),
    );
    let config = ClusterConfig::paper_cluster(spec, chars);
    let trace = GoogleTrace::default_two_day().total().clone();
    let paper_cfg = SearchConfig {
        budget: 7,
        max_generations: 40,
        ..SearchConfig::default()
    };
    group.throughput(Throughput::Elements(paper_cfg.budget as u64));
    group.bench_function("paper_space_budget_7", |b| {
        b.iter_batched(
            design::EvalCache::new,
            |mut cache| {
                black_box(design::search_melting_point(
                    &config,
                    &trace,
                    &paper_cfg,
                    &MetricsSink::disabled(),
                    &mut cache,
                ))
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_design);
criterion_main!(benches);
