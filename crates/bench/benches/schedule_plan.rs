//! Latency of the receding-horizon planner (`tts-opt`): one LP solve at
//! the `schedule` experiment's default shape (24 h + 3 h extension of
//! 15-minute slots, 4 delay classes), plus a short end-to-end
//! controller run. Throughput is counted in planning slots so the
//! per-element rate in `BENCH_schedule.json` reads as "time to plan one
//! slot".

use std::hint::black_box;
use tts_bench::harness::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use tts_obs::MetricsSink;
use tts_opt::{run_schedule_on, HorizonModel, ScheduleConfig, SlotForecast};
use tts_units::Seconds;
use tts_workload::series::TimeSeries;

/// A default-shaped planning problem: diurnal firm load, peak/off-peak
/// tariff, melt-dynamics envelope mid-melt — representative of what the
/// controller solves every re-plan on the paper's 1008-server cluster.
fn default_model() -> HorizonModel {
    let slots = 108; // (24 h + 3 h) × 4 slots/h
    let tranches = 4;
    let dt_h = 0.25;
    let forecasts: Vec<SlotForecast> = (0..slots)
        .map(|k| {
            let hour = (k as f64 * dt_h) % 24.0;
            let util = 0.5 + 0.3 * (core::f64::consts::TAU * (hour / 24.0 - 0.25)).sin();
            let it_kw = 161.3 * util;
            SlotForecast {
                firm_kw: 0.75 * it_kw,
                arrivals_kw: vec![0.25 * it_kw / tranches as f64; tranches],
                rate_usd_per_kwh: if (7.0..19.0).contains(&hour) {
                    0.13
                } else {
                    0.08
                },
                charge_ub_kw: 12.0,
                discharge_ub_kw: 8.0,
                cooling_cap_kw: 170.0,
            }
        })
        .collect();
    HorizonModel {
        slots: forecasts,
        tranches,
        dt_h,
        deadline_slots: vec![2, 4, 8, 12],
        stored_kwh: 22.0,
        capacity_kwh: 44.0,
        cop: 4.0,
        backlog: vec![Vec::new(); tranches],
    }
}

fn bench_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_plan");
    group.sample_size(10);

    // One LP solve at the default horizon shape: the unit of work the
    // controller pays every `replan_every` slots.
    let model = default_model();
    group.throughput(Throughput::Elements(model.slots.len() as u64));
    group.bench_function("solve_108_slots_4_tranches", |b| {
        b.iter_batched(
            || model.clone(),
            |m| black_box(m.solve().expect("default-shaped plan is feasible")),
            BatchSize::SmallInput,
        )
    });

    // End-to-end controller: plan + execute + baseline over six diurnal
    // hours of 15-minute slots on a small cluster — the shape the chaos
    // schedule phase and the e2e tests exercise.
    let trace = TimeSeries::from_fn(Seconds::new(900.0), 24, |t| {
        0.5 + 0.3 * (core::f64::consts::TAU * (t / 86_400.0 - 0.25)).sin()
    });
    let cfg = ScheduleConfig {
        servers: 64,
        horizon_h: 6.0,
        extension_h: 1.0,
        ..ScheduleConfig::default()
    };
    group.throughput(Throughput::Elements(24));
    group.bench_function("controller_64_servers_6h", |b| {
        b.iter_batched(
            || (cfg.clone(), trace.clone()),
            |(cfg, trace)| {
                black_box(run_schedule_on(
                    &cfg,
                    &trace,
                    &tts_opt::Disturbances::default(),
                    &MetricsSink::disabled(),
                ))
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_schedule);
criterion_main!(benches);
