//! Schema ↔ EXPERIMENTS.md round-trip: the checked-in parameter tables
//! must be byte-for-byte what the live `ParamSpec` schemas render, for
//! every experiment in the registry. Regenerating the file
//! (`repro all --write`) and editing a schema are therefore forced to
//! travel together — the doc can never drift from the wire contract.

use thermal_time_shifting::experiment;
use thermal_time_shifting::params;

fn experiments_md() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../EXPERIMENTS.md");
    std::fs::read_to_string(path).expect("EXPERIMENTS.md exists at the repo root")
}

#[test]
fn every_registered_schema_is_in_experiments_md() {
    let md = experiments_md();
    for exp in experiment::registry() {
        let header = format!("#### `{}`\n", exp.name());
        assert!(
            md.contains(&header),
            "EXPERIMENTS.md lacks a parameter section for {:?}; regenerate with \
             `cargo run --release -p tts-bench --bin repro -- all --write`",
            exp.name()
        );
        let table = params::schema_markdown(exp.schema());
        assert!(
            md.contains(&table),
            "EXPERIMENTS.md parameter table for {:?} is stale; regenerate with \
             `cargo run --release -p tts-bench --bin repro -- all --write`",
            exp.name()
        );
    }
}

#[test]
fn experiments_md_has_no_orphan_schema_sections() {
    let md = experiments_md();
    let known: Vec<String> = experiment::registry()
        .iter()
        .map(|e| format!("#### `{}`", e.name()))
        .collect();
    for line in md.lines().filter(|l| l.starts_with("#### `")) {
        assert!(
            known.iter().any(|k| line.trim() == *k),
            "EXPERIMENTS.md documents {line:?} but the registry has no such experiment"
        );
    }
}

#[test]
fn wire_schema_and_markdown_agree_on_every_field() {
    // The markdown table and the JSON schema are two renderings of the
    // same ParamSpec; check the names, defaults and ranges line up.
    for exp in experiment::registry() {
        let tts_units::json::Json::Arr(entries) = params::schema_json(exp.schema()) else {
            panic!("schema_json must be an array");
        };
        let md = params::schema_markdown(exp.schema());
        assert_eq!(
            entries.len(),
            exp.schema().len(),
            "wire schema drops a parameter for {:?}",
            exp.name()
        );
        for spec in exp.schema() {
            assert!(
                md.contains(&format!("`{}`", spec.name)),
                "markdown for {:?} lacks parameter {:?}",
                exp.name(),
                spec.name
            );
        }
    }
}
