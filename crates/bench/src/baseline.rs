//! Loading and parsing of bench-harness JSON reports for the
//! `repro bench-check` gate.
//!
//! A report is `{"benchmarks": [{"name": …, "mean_ns": …}, …]}` (what
//! [`crate::harness`] writes via `TTS_BENCH_OUT`). The parser is strict
//! about the envelope — a file that is unreadable, not JSON, or missing
//! the `benchmarks` array is an `Err` with a message naming the path —
//! so the CI gate can *degrade gracefully*: a missing or malformed
//! baseline is reported and mapped to a distinct exit code instead of a
//! panic that looks like a crashed harness.

use tts_units::json::{parse, Json};

/// One benchmark entry: name and mean nanoseconds per iteration.
pub type BenchEntry = (String, f64);

/// Parses a bench report document. Entries missing `name` or `mean_ns`
/// are skipped (forward compatibility with richer reports); the envelope
/// itself is mandatory.
pub fn parse_report(origin: &str, text: &str) -> Result<Vec<BenchEntry>, String> {
    let doc = parse(text).map_err(|e| format!("{origin} is not valid JSON: {e:?}"))?;
    let Some(Json::Arr(benches)) = doc.get("benchmarks") else {
        return Err(format!("{origin} has no \"benchmarks\" array"));
    };
    Ok(benches
        .iter()
        .filter_map(|b| {
            let name = match b.get("name") {
                Some(Json::Str(s)) => s.clone(),
                _ => return None,
            };
            let mean = b.get("mean_ns").and_then(|v| v.as_f64())?;
            Some((name, mean))
        })
        .collect())
}

/// Reads and parses a bench report file.
pub fn load_report(path: &str) -> Result<Vec<BenchEntry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_report(path, &text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_names_and_means_and_skips_partial_entries() {
        let text = r#"{
            "benchmarks": [
                {"name": "solver", "mean_ns": 1250.5, "samples": 3},
                {"name": "no-mean"},
                {"mean_ns": 7.0},
                {"name": "sweep", "mean_ns": 9000}
            ]
        }"#;
        let entries = parse_report("report.json", text).expect("valid report");
        assert_eq!(
            entries,
            vec![
                ("solver".to_string(), 1250.5),
                ("sweep".to_string(), 9000.0)
            ]
        );
    }

    #[test]
    fn malformed_inputs_are_errors_that_name_the_origin() {
        let not_json = parse_report("b.json", "{truncated").unwrap_err();
        assert!(not_json.contains("b.json"), "{not_json}");
        assert!(not_json.contains("not valid JSON"), "{not_json}");

        for envelope in ["{}", "[]", r#"{"benchmarks": 3}"#, "null"] {
            let err = parse_report("b.json", envelope).unwrap_err();
            assert!(
                err.contains("no \"benchmarks\" array"),
                "{envelope} -> {err}"
            );
        }
    }

    #[test]
    fn an_empty_benchmark_list_is_valid_and_empty() {
        assert_eq!(
            parse_report("b.json", r#"{"benchmarks": []}"#).unwrap(),
            Vec::<BenchEntry>::new()
        );
    }

    #[test]
    fn a_missing_file_is_an_error_not_a_panic() {
        let err = load_report("/nonexistent/definitely-missing.json").unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
        assert!(err.contains("definitely-missing.json"), "{err}");
    }
}
