//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [table1|fig1|fig4|fig7|fig10|fig11|fig12|table2|tco|dcsim|fleet|schedule|design|scenarios|extensions|all]
//!       [--write] [--threads N] [--metrics PATH] [--wall-unix SECS]
//! repro fleet [--servers N] [--shards N] [--datacenters N] [--horizon-h H]
//!             [--seed N] [--write] [--threads N]
//! repro schedule [--seed N] [--servers N] [--horizon-h H] [--slot-min M]
//!                [--tranches T] [--write] [--threads N]
//! repro design [--seed N] [--servers N] [--budget N] [--generations N]
//!              [--write] [--threads N]
//! repro scenarios [--sites N] [--backends N] [--traces N] [--seed N]
//!                 [--write] [--threads N]
//! repro bench-check <report.json> <baseline.json> <max-regress-pct>
//! repro chaos [--seeds N] [--seed 0xHEX] [--plan FILE] [--summary PATH]
//!             [--no-storm] [--threads N]
//! ```
//!
//! `fleet` runs the epoch-sharded fleet engine (default: 1,000,000
//! servers across 4 datacenters for the two-day trace); the scale flags
//! map onto the experiment's [`Params`] and the summary bytes are
//! identical at any `--threads` or `--shards` value.
//!
//! `schedule` runs the receding-horizon PCM/job co-optimizer (`tts-opt`):
//! an LP re-planned every slot decides what deferrable work to run, how
//! hard to charge or discharge the wax, and what to draw from the grid
//! under the time-of-use tariff, then reports cost against the passive
//! run-on-arrival baseline over the same diurnal trace.
//!
//! `design` runs the `tts-design` surrogate-driven search on the paper's
//! melting-point space with `--budget` simulator evaluations (default 7),
//! cross-checks it against the exhaustive grid through a shared evaluation
//! memo, then searches the joint class × melt × mass × tariff × ambient
//! space. Deterministic and byte-identical at any thread count.
//!
//! `scenarios` sweeps the cooling backend × climate site × demand trace
//! matrix: the paper's chiller, an airside economizer, and the hot-water
//! loop with energy reuse, each billed over seeded weather years and the
//! demand-variation traces. `--sites/--backends/--traces` select prefixes
//! of the catalogues; `--seed` moves the weather.
//!
//! With `--write`, the harness also rewrites `EXPERIMENTS.md` (the
//! paper-vs-measured record) and dumps raw results as JSON under
//! `results/`.
//!
//! `--threads N` pins the `tts_exec` worker count for every sweep in the
//! run (overriding `TTS_THREADS` and the machine default). Results are
//! byte-identical at any thread count — see the determinism tests.
//!
//! `--metrics PATH` collects observability data (counters, gauges,
//! histograms, span timers — see `tts_obs`) across every experiment in the
//! run and writes a JSON sidecar `{"snapshot": …, "flushes": […]}` to
//! PATH. The snapshot body contains only deterministic metrics, so the
//! sidecar is byte-identical at any thread count; `--wall-unix SECS`
//! stamps it with a caller-supplied wall clock (omitted by default to keep
//! the bytes reproducible). Flushes come from the discrete simulator's
//! periodic flush hook, stamped with simulated time.
//!
//! `bench-check` compares a bench harness JSON report against a baseline
//! (e.g. `BENCH_baseline.json`) and fails if any benchmark present in both
//! regressed by more than the given percentage — the CI gate that keeps
//! the disabled-metrics hot paths at full speed.
//!
//! The per-figure rendering lives in the experiment implementations
//! (`thermal_time_shifting::experiment`); this binary dispatches by name,
//! prints what each [`Figure`] rendered, and files its artifacts.

use std::fmt::Write as _;
use std::time::Instant;
use thermal_time_shifting::chart::ascii_chart;
use thermal_time_shifting::experiment::{self, ExecCtx, Figure, Params};
use thermal_time_shifting::experiments::{self, Comparison};
use thermal_time_shifting::params;
use tts_bench::{comparison_row, format_quantity, text_table};
use tts_server::ServerClass;
use tts_units::Fraction;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("bench-check") {
        std::process::exit(bench_check(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("chaos") {
        std::process::exit(chaos(&args[1..]));
    }
    let write = args.iter().any(|a| a == "--write");
    // Value flags consume their argument, which must not be mistaken for
    // the experiment selector below.
    let mut value_indices: Vec<usize> = Vec::new();
    let mut flag_value = |name: &str| -> Option<String> {
        let at = args.iter().position(|a| a == name)?;
        value_indices.push(at + 1);
        args.get(at + 1).cloned()
    };
    if let Some(raw) = flag_value("--threads") {
        let n = raw
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                eprintln!("--threads requires a positive integer");
                std::process::exit(2);
            });
        tts_exec::set_thread_override(Some(n));
    }
    let metrics_path = flag_value("--metrics").inspect(|p| {
        if p.is_empty() || p.starts_with("--") {
            eprintln!("--metrics requires an output path");
            std::process::exit(2);
        }
    });
    let wall_unix = flag_value("--wall-unix").map(|raw| {
        raw.parse::<f64>().unwrap_or_else(|_| {
            eprintln!("--wall-unix requires a number (seconds since the epoch)");
            std::process::exit(2);
        })
    });
    // Scale/tuning flags shared by `fleet` and `schedule`, routed through
    // the experiments' Params surface (each experiment's schema rejects
    // flags it does not understand).
    let mut cli_params = Params::default();
    let mut scale_flag = |name: &'static str, f: &mut dyn FnMut(&mut Params, u64)| {
        if let Some(raw) = flag_value(name) {
            let n = raw
                .parse::<u64>()
                .ok()
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| {
                    eprintln!("{name} requires a positive integer");
                    std::process::exit(2);
                });
            f(&mut cli_params, n);
        }
    };
    scale_flag("--servers", &mut |p, n| p.servers = Some(n as usize));
    scale_flag("--shards", &mut |p, n| p.shards = Some(n as usize));
    scale_flag("--datacenters", &mut |p, n| {
        p.datacenters = Some(n as usize)
    });
    scale_flag("--seed", &mut |p, n| p.seed = Some(n));
    scale_flag("--slot-min", &mut |p, n| p.slot_min = Some(n as usize));
    scale_flag("--tranches", &mut |p, n| p.tranches = Some(n as usize));
    scale_flag("--budget", &mut |p, n| p.budget = Some(n as usize));
    scale_flag("--generations", &mut |p, n| {
        p.generations = Some(n as usize)
    });
    scale_flag("--sites", &mut |p, n| p.sites = Some(n as usize));
    scale_flag("--backends", &mut |p, n| p.backends = Some(n as usize));
    scale_flag("--traces", &mut |p, n| p.traces = Some(n as usize));
    if let Some(raw) = flag_value("--horizon-h") {
        let h = raw
            .parse::<f64>()
            .ok()
            .filter(|h| h.is_finite() && *h > 0.0)
            .unwrap_or_else(|| {
                eprintln!("--horizon-h requires a positive number of hours");
                std::process::exit(2);
            });
        cli_params.horizon_h = Some(h);
    }
    let which = args
        .iter()
        .enumerate()
        .find(|&(i, a)| !a.starts_with("--") && !value_indices.contains(&i))
        .map(|(_, a)| a.as_str())
        .unwrap_or("all");

    let ctx = if metrics_path.is_some() {
        ExecCtx::with_metrics()
    } else {
        ExecCtx::disabled()
    };
    if ctx.is_enabled() {
        // Route the worker pool's (best-effort) telemetry to the same
        // registry.
        tts_exec::set_metrics_sink(ctx.sink().clone());
    }

    let started = Instant::now();
    let mut comparisons: Vec<(String, Comparison)> = Vec::new();
    let mut md = String::new();
    md.push_str(
        "# EXPERIMENTS — paper vs. measured\n\n\
         Generated by `cargo run --release -p tts-bench --bin repro -- all --write`.\n\n\
         Absolute agreement with the authors' testbed is not expected (our substrate\n\
         is a from-scratch simulator, theirs was ANSYS Icepak + a physical RD330 +\n\
         an unreleased DCSim); the reproduction criteria are the *shapes*: who wins,\n\
         by roughly what factor, and where the crossovers fall. See DESIGN.md for\n\
         the substitutions.\n\n",
    );
    md.push_str(&serving_endpoints_md());

    let all = which == "all";
    if all || which == "table1" {
        run_table1(&mut md);
    }
    if all || which == "fig1" {
        run_fig1(&mut md);
    }
    if all || which == "fig4" {
        run_fig4(&mut md, &mut comparisons);
    }
    if all || which == "fig7" {
        run_experiment("fig7", &ctx, &mut md, &mut comparisons, write);
    }
    if all || which == "fig10" {
        run_fig10(&mut md);
    }
    let mut fig11_fig: Option<Figure> = None;
    let mut fig12_fig: Option<Figure> = None;
    if all || which == "fig11" || which == "tco" {
        fig11_fig = Some(run_experiment(
            "fig11",
            &ctx,
            &mut md,
            &mut comparisons,
            write,
        ));
    }
    if all || which == "fig12" || which == "tco" {
        fig12_fig = Some(run_experiment(
            "fig12",
            &ctx,
            &mut md,
            &mut comparisons,
            write,
        ));
    }
    if all || which == "table2" {
        run_table2(&mut md);
    }
    if let (Some(f11), Some(f12)) = (&fig11_fig, &fig12_fig) {
        if all || which == "tco" {
            run_tco(&mut md, &mut comparisons, f11, f12);
        }
    }
    if all || which == "dcsim" {
        run_experiment("dcsim", &ctx, &mut md, &mut comparisons, write);
    }
    if all || which == "fleet" {
        // In `all` mode the shared CLI params are scoped to what each
        // experiment understands; with an explicit selector, a foreign
        // flag is a usage error (the experiment's schema rejects it).
        let mut p = cli_params;
        if all {
            p.slot_min = None;
            p.tranches = None;
            p.budget = None;
            p.generations = None;
            p.sites = None;
            p.backends = None;
            p.traces = None;
        }
        run_experiment_with("fleet", &p, &ctx, &mut md, &mut comparisons, write);
    }
    if all || which == "schedule" {
        let mut p = cli_params;
        if all {
            p.shards = None;
            p.datacenters = None;
            p.budget = None;
            p.generations = None;
            p.sites = None;
            p.backends = None;
            p.traces = None;
        }
        run_experiment_with("schedule", &p, &ctx, &mut md, &mut comparisons, write);
    }
    if all || which == "design" {
        let mut p = cli_params;
        if all {
            p.shards = None;
            p.datacenters = None;
            p.slot_min = None;
            p.tranches = None;
            p.horizon_h = None;
            p.sites = None;
            p.backends = None;
            p.traces = None;
        }
        run_experiment_with("design", &p, &ctx, &mut md, &mut comparisons, write);
    }
    if all || which == "scenarios" {
        let mut p = cli_params;
        if all {
            p.servers = None;
            p.shards = None;
            p.datacenters = None;
            p.horizon_h = None;
            p.slot_min = None;
            p.tranches = None;
            p.budget = None;
            p.generations = None;
        }
        run_experiment_with("scenarios", &p, &ctx, &mut md, &mut comparisons, write);
    }
    if all || which == "extensions" {
        run_extensions(&mut md);
    }

    // Summary.
    let mut rows = Vec::new();
    for (ctx_label, c) in &comparisons {
        rows.push(vec![
            ctx_label.clone(),
            c.metric.clone(),
            format_quantity(c.paper, &c.unit),
            format_quantity(c.measured, &c.unit),
            format!("{:+.0}%", c.relative_error() * 100.0),
        ]);
    }
    if !rows.is_empty() {
        let summary = text_table(
            &["experiment", "metric", "paper", "measured", "deviation"],
            &rows,
        );
        println!("\n=== paper vs. measured summary ===\n{summary}");
        md.push_str("\n## Summary\n\n| experiment | metric | paper | measured | deviation |\n|---|---|---|---|---|\n");
        for (ctx_label, c) in &comparisons {
            md.push_str(&format!("| {} {}\n", ctx_label, comparison_row(c)));
        }
    }

    let _ = writeln!(
        md,
        "\n*Total regeneration time: {:.1} s.*",
        started.elapsed().as_secs_f64()
    );

    if write {
        std::fs::write("EXPERIMENTS.md", &md).expect("write EXPERIMENTS.md");
        println!("wrote EXPERIMENTS.md");
    }
    if let Some(path) = metrics_path {
        let sidecar = ctx.sidecar(None, wall_unix).expect("metrics enabled");
        let text = sidecar.to_string_pretty();
        // Parse-back validation: the sidecar must round-trip through the
        // in-repo JSON layer before it is worth writing.
        let parsed = tts_units::json::parse(&text).expect("metrics sidecar parses back");
        assert_eq!(parsed, sidecar, "metrics sidecar round-trips losslessly");
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(&path, &text).expect("write metrics sidecar");
        println!("wrote metrics sidecar to {path}");
    }
    eprintln!("done in {:.1} s", started.elapsed().as_secs_f64());
}

/// The `EXPERIMENTS.md` preamble section documenting the `ttsd` HTTP
/// endpoints, with the experiment rows generated from the live registry
/// so regeneration can never drift from the code.
fn serving_endpoints_md() -> String {
    let mut md = String::from(
        "## Serving endpoints (`ttsd`)\n\n\
         Every experiment below is also served over HTTP by `ttsd`\n\
         (`cargo run --release -p tts-svc --bin ttsd`). `POST\n\
         /v1/experiments/{name}` answers exactly the bytes `--write` files as\n\
         `results/{name}.summary.json`, computed or cached, at any thread\n\
         count; see DESIGN.md (\"Serving layer\") for the architecture.\n\n\
         | endpoint | method | description |\n|---|---|---|\n\
         | `/healthz` | GET | liveness probe |\n\
         | `/metrics` | GET | metrics snapshot (deterministic; `?full=1` adds best-effort) |\n\
         | `/v1/experiments` | GET | the registry: names and supported parameters |\n\
         | `/v1/jobs` | GET | list known jobs (active and retained terminal) |\n\
         | `/v1/jobs` | POST | submit `{\\\"experiment\\\", \\\"params\\\"}` async; `202` + job id |\n\
         | `/v1/jobs/{id}` | GET | job status document |\n\
         | `/v1/jobs/{id}/events` | GET | chunked NDJSON progress stream until terminal |\n\
         | `/v1/jobs/{id}/result` | GET | result bytes (`409` until done) |\n\
         | `/v1/jobs/{id}` | DELETE | cooperative cancellation |\n\
         | `/admin/shutdown` | POST | graceful drain and final metrics flush |\n",
    );
    for exp in experiment::registry() {
        let _ = writeln!(
            md,
            "| `/v1/experiments/{}` | POST | run `{}` (params: {}) |",
            exp.name(),
            exp.name(),
            exp.schema()
                .iter()
                .map(|p| format!("`{}`", p.name))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    md.push('\n');
    // The declarative parameter schemas, rendered from the same
    // `ParamSpec` tables `GET /v1/experiments` serves — EXPERIMENTS.md
    // can never drift from the wire contract.
    md.push_str(
        "### Experiment parameters\n\n\
         Each experiment accepts only the parameters below (anything else is a\n\
         `400 unknown parameter`); ranges are inclusive and validated server-side.\n\n",
    );
    for exp in experiment::registry() {
        let _ = writeln!(md, "#### `{}`\n", exp.name());
        md.push_str(&params::schema_markdown(exp.schema()));
        md.push('\n');
    }
    md
}

/// Runs one registered experiment: prints its rendered text, collects its
/// markdown and comparisons, and (with `--write`) files its JSON artifacts
/// plus the machine-readable summary from `emit_json`.
fn run_experiment(
    name: &str,
    ctx: &ExecCtx,
    md: &mut String,
    comparisons: &mut Vec<(String, Comparison)>,
    write: bool,
) -> Figure {
    run_experiment_with(name, &Params::default(), ctx, md, comparisons, write)
}

/// [`run_experiment`] with caller-supplied parameter overrides (the fleet
/// scale flags); an unsupported override is a usage error.
fn run_experiment_with(
    name: &str,
    params: &Params,
    ctx: &ExecCtx,
    md: &mut String,
    comparisons: &mut Vec<(String, Comparison)>,
    write: bool,
) -> Figure {
    let exp = experiment::find(name).expect("experiment is registered");
    let fig = exp.run_with(ctx, params).unwrap_or_else(|msg| {
        eprintln!("{name}: {msg}");
        std::process::exit(2);
    });
    println!("=== {} ===", fig.title);
    println!("{}", fig.text);
    md.push_str(&fig.markdown);
    comparisons.extend(fig.comparisons.iter().cloned());
    if write {
        for (path, doc) in &fig.artifacts {
            if let Some(dir) = std::path::Path::new(path).parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            let _ = std::fs::write(path, doc.to_string_pretty());
        }
        let _ = std::fs::create_dir_all("results");
        let _ = std::fs::write(
            format!("results/{}.summary.json", fig.name),
            exp.emit_json(&fig).to_string_pretty(),
        );
    }
    fig
}

/// `bench-check <report.json> <baseline.json> <max-regress-pct>`: fails
/// (exit 1) if any benchmark present in both reports has a mean more than
/// `max-regress-pct` percent slower than the baseline.
///
/// Exit codes: `0` all within bounds, `1` regression, `2` usage error or
/// no overlapping benchmarks, `3` a report/baseline file is absent or
/// malformed (the gate degrades gracefully — CI treats `3` as "nothing
/// to compare against", not as a crashed harness).
fn bench_check(args: &[String]) -> i32 {
    let (report_path, baseline_path, pct) = match args {
        [r, b, p] => match p.parse::<f64>() {
            Ok(pct) if pct >= 0.0 => (r, b, pct),
            _ => {
                eprintln!("bench-check: max-regress-pct must be a non-negative number");
                return 2;
            }
        },
        _ => {
            eprintln!("usage: repro bench-check <report.json> <baseline.json> <max-regress-pct>");
            return 2;
        }
    };
    let load = |path: &str| match tts_bench::baseline::load_report(path) {
        Ok(entries) => Some(entries),
        Err(msg) => {
            eprintln!("bench-check: {msg}");
            eprintln!("bench-check: skipping comparison (exit 3): record a fresh baseline to re-arm the gate");
            None
        }
    };
    let (Some(report), Some(baseline)) = (load(report_path), load(baseline_path)) else {
        return 3;
    };
    let mut checked = 0;
    let mut failures = 0;
    for (name, mean) in &report {
        let Some((_, base)) = baseline.iter().find(|(n, _)| n == name) else {
            continue;
        };
        checked += 1;
        let limit = base * (1.0 + pct / 100.0);
        let delta = (mean / base - 1.0) * 100.0;
        let ok = *mean <= limit;
        println!(
            "bench-check {:<48} {:>12.0} ns vs baseline {:>12.0} ns ({:+.1} %) {}",
            name,
            mean,
            base,
            delta,
            if ok { "ok" } else { "REGRESSED" }
        );
        if !ok {
            failures += 1;
        }
    }
    if checked == 0 {
        eprintln!(
            "bench-check: no overlapping benchmarks between {report_path} and {baseline_path}"
        );
        return 2;
    }
    if failures > 0 {
        eprintln!("bench-check: {failures} of {checked} benchmarks regressed more than {pct} %");
        return 1;
    }
    println!("bench-check: all {checked} overlapping benchmarks within {pct} % of baseline");
    0
}

/// `chaos [--seeds N] [--seed 0xHEX] [--plan FILE] [--summary PATH]
/// [--no-storm] [--threads N]`: the fault-injection gate.
///
/// Without `--seed`, runs a batch of `--seeds` scenarios (default 16)
/// from the fixed base seed, then — unless `--no-storm` — drives the
/// connection-level storm against an embedded `ttsd` server, and writes
/// a byte-deterministic summary JSON (default
/// `results/chaos.summary.json`; only plan-determined storm fields are
/// included, so the file is `cmp`-identical at any `TTS_THREADS`).
///
/// With `--seed 0x…` (the one-liner printed for a failing seed), replays
/// exactly that scenario and prints its full report. `--plan FILE` runs
/// an explicit fault plan instead of sampling one.
///
/// Exit codes: `0` all invariants held, `1` violations (each with its
/// replay line), `2` usage error.
fn chaos(args: &[String]) -> i32 {
    use tts_chaos::{run_batch, run_plan, run_scenario, BatchConfig, FaultPlan, ScenarioConfig};
    use tts_units::json::{FromJson, Json, ToJson};

    let mut seeds: usize = 16;
    let mut seed: Option<u64> = None;
    let mut plan_path: Option<String> = None;
    let mut summary_path = "results/chaos.summary.json".to_string();
    let mut storm = true;
    let parse_u64 = |raw: &str| -> Option<u64> {
        match raw.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16).ok(),
            None => raw.parse().ok(),
        }
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => seeds = n,
                _ => {
                    eprintln!("chaos: --seeds requires a positive integer");
                    return 2;
                }
            },
            "--seed" => match it.next().and_then(|v| parse_u64(v)) {
                Some(s) => seed = Some(s),
                None => {
                    eprintln!("chaos: --seed requires a decimal or 0x-hex integer");
                    return 2;
                }
            },
            "--plan" => match it.next() {
                Some(p) => plan_path = Some(p.clone()),
                None => {
                    eprintln!("chaos: --plan requires a file path");
                    return 2;
                }
            },
            "--summary" => match it.next() {
                Some(p) => summary_path = p.clone(),
                None => {
                    eprintln!("chaos: --summary requires an output path");
                    return 2;
                }
            },
            "--no-storm" => storm = false,
            "--threads" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => tts_exec::set_thread_override(Some(n)),
                _ => {
                    eprintln!("chaos: --threads requires a positive integer");
                    return 2;
                }
            },
            other => {
                eprintln!(
                    "chaos: unknown argument {other:?}\nusage: repro chaos [--seeds N] \
                     [--seed 0xHEX] [--plan FILE] [--summary PATH] [--no-storm] [--threads N]"
                );
                return 2;
            }
        }
    }

    let scenario_cfg = ScenarioConfig::default();
    let plan = match &plan_path {
        Some(path) => {
            let doc = std::fs::read_to_string(path)
                .map_err(|e| format!("{e}"))
                .and_then(|text| {
                    tts_units::json::parse(&text).map_err(|e| format!("invalid JSON: {e:?}"))
                })
                .and_then(|json| FaultPlan::from_json(&json).map_err(|e| format!("{e:?}")));
            match doc {
                Ok(plan) => Some(plan),
                Err(msg) => {
                    eprintln!("chaos: cannot load plan {path}: {msg}");
                    return 2;
                }
            }
        }
        None => None,
    };

    // Single-scenario replay: the target of the printed one-liner.
    if seed.is_some() || plan.is_some() {
        let seed = seed.unwrap_or(0);
        let report = match &plan {
            Some(plan) => run_plan(seed, &scenario_cfg, plan),
            None => run_scenario(seed, &scenario_cfg),
        };
        println!("{}", report.to_json().to_string_pretty());
        if report.all_green() {
            println!(
                "chaos: seed {seed:#x} green ({} checks, {} faults)",
                report.checks,
                report.fault_counts.iter().map(|(_, c)| *c).sum::<u64>()
            );
            return 0;
        }
        eprintln!(
            "chaos: seed {seed:#x} violated {} invariant(s); replay with: {}",
            report.violations.len(),
            report.replay_command()
        );
        return 1;
    }

    // Batch mode: the CI gate.
    let cfg = BatchConfig {
        seeds,
        ..BatchConfig::default()
    };
    let summary = run_batch(&cfg);
    println!(
        "chaos: {} scenarios from base seed {:#x}: {} checks, {} violation(s)",
        summary.scenarios,
        summary.base_seed,
        summary.checks,
        summary.violations().len()
    );
    for (kind, count) in &summary.fault_counts {
        println!("chaos:   {kind:<22} {count}");
    }
    let storm_report = storm.then(|| {
        let report =
            tts_svc::run_storm(&tts_svc::default_storm(), &tts_svc::StormConfig::default());
        println!(
            "chaos: storm: {} clients answered, {} timed out, {} violation(s)",
            report.answered,
            report.timed_out,
            report.violations.len()
        );
        report
    });

    let mut doc = vec![("batch".to_string(), summary.to_json())];
    if let Some(report) = &storm_report {
        doc.push(("storm".to_string(), report.deterministic_json()));
    }
    let json = Json::Obj(doc).to_string_pretty();
    if let Some(dir) = std::path::Path::new(&summary_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&summary_path, &json) {
        eprintln!("chaos: cannot write {summary_path}: {e}");
        return 2;
    }
    println!("chaos: summary written to {summary_path}");

    let storm_failed = storm_report.as_ref().is_some_and(|r| !r.all_green());
    if summary.all_green() && !storm_failed {
        println!("chaos: all green");
        return 0;
    }
    if !summary.all_green() {
        eprintln!("chaos: failing seeds — replay each with:");
        for line in summary.replay_lines() {
            eprintln!("  {line}");
        }
    }
    if storm_failed {
        eprintln!("chaos: the connection storm found violations (see summary JSON)");
    }
    1
}

fn run_table1(md: &mut String) {
    println!("=== Table 1: properties of common solid-liquid PCMs ===");
    let rows = experiments::table1();
    let table = text_table(
        &[
            "PCM",
            "Melting Temp (°C)",
            "Heat of Fusion (J/g)",
            "Density (g/mL)",
            "Stability",
            "E. Conductive",
            "Corrosive",
            "DC-suitable",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    format!("{:.1}", r.melting_temp_c),
                    format!("{:.0}", r.heat_of_fusion_j_g),
                    format!("{:.2}", r.density_g_ml),
                    r.stability.clone(),
                    yesno(r.electrically_conductive),
                    yesno(r.corrosive),
                    yesno(r.datacenter_suitable),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    md.push_str("## Table 1 — PCM comparison\n\nReproduced as a data table (paper values embedded); only the paraffins pass the datacenter screen, as in §2.1.\n\n```text\n");
    md.push_str(&table);
    md.push_str("```\n\n");
}

fn run_fig1(md: &mut String) {
    println!("=== Figure 1: thermal time shifting (concept, from a real run) ===");
    let (t, no_wax, with_wax) = experiments::concept_figure();
    let chart = ascii_chart(
        &[("heat output", &no_wax), ("cooling load w/ PCM", &with_wax)],
        72,
        14,
    );
    println!(
        "one day, 1U cluster; x = 0..{:.0} h\n{chart}",
        t.last().unwrap_or(&24.0)
    );
    md.push_str("## Figure 1 — concept\n\nRendered from a real 1U cluster run (first day): the wax flattens the daytime peak and returns the heat overnight.\n\n```text\n");
    md.push_str(&chart);
    md.push_str("```\n\n");
}

fn run_fig4(md: &mut String, comparisons: &mut Vec<(String, Comparison)>) {
    println!("=== Figure 4: model validation (1 h idle + 12 h load + 12 h idle) ===");
    let r = experiments::fig4();
    let chart = ascii_chart(
        &[
            ("real wax", &r.real_wax),
            ("real placebo", &r.real_placebo),
            ("model wax", &r.icepak_wax),
            ("model placebo", &r.icepak_placebo),
        ],
        72,
        16,
    );
    println!("{chart}");
    println!(
        "steady-state mean difference (model vs real, loaded):  wax {:+.2} K, placebo {:+.2} K",
        r.steady_wax.mean_difference, r.steady_placebo.mean_difference
    );
    println!(
        "transient correlation (wax): r = {:.3}\n",
        r.transient_wax.correlation
    );
    // Figure 4 (c): per-sensor steady-state bars.
    let sensor_table = text_table(
        &["sensor", "Real °C", "Icepak °C", "Difference K"],
        &r.sensors
            .iter()
            .map(|s| {
                vec![
                    s.name.clone(),
                    format!("{:.2}", s.real_c),
                    format!("{:.2}", s.icepak_c),
                    format!("{:+.2}", s.difference()),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("Figure 4 (c) — steady state while hot:\n{sensor_table}");
    comparisons.push((
        "Fig 4".into(),
        Comparison::new(
            "steady-state mean difference (abs)",
            0.22,
            r.steady_wax.mean_difference.abs(),
            "K",
        ),
    ));
    md.push_str("## Figure 4 — model validation\n\nOur \"real server\" is a perturbed high-resolution reference model with noisy sensors (see DESIGN.md). Four traces (temperatures near the wax box):\n\n```text\n");
    md.push_str(&chart);
    md.push_str("```\n\n");
    let _ = writeln!(
        md,
        "Steady-state mean difference: wax {:+.2} K, placebo {:+.2} K (paper: 0.22 °C). Transient correlation r = {:.3}.\n",
        r.steady_wax.mean_difference, r.steady_placebo.mean_difference, r.transient_wax.correlation
    );
    md.push_str("Figure 4 (c) — per-sensor steady state while hot:\n\n```text\n");
    md.push_str(&text_table(
        &["sensor", "Real °C", "Icepak °C", "Difference K"],
        &r.sensors
            .iter()
            .map(|s| {
                vec![
                    s.name.clone(),
                    format!("{:.2}", s.real_c),
                    format!("{:.2}", s.icepak_c),
                    format!("{:+.2}", s.difference()),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    md.push_str("```\n\n");
}

fn run_fig10(md: &mut String) {
    println!("=== Figure 10: two-day datacenter workload trace ===");
    let trace = experiments::fig10();
    let total = trace.total();
    let pct: Vec<f64> = total.values().iter().map(|v| v * 100.0).collect();
    let chart = ascii_chart(&[("total load %", &pct)], 72, 12);
    println!("{chart}");
    println!(
        "mean {:.1} %, peak {:.1} % (paper: normalized to 50 % / 95 %)\n",
        total.mean() * 100.0,
        total.peak() * 100.0
    );
    md.push_str("## Figure 10 — workload trace\n\nSynthetic two-day Google-like trace (three job types), normalized to exactly 50 % mean / 95 % peak:\n\n```text\n");
    md.push_str(&chart);
    md.push_str("```\n\n");
}

fn run_table2(md: &mut String) {
    println!("=== Table 2: TCO parameters ===");
    let t = experiments::table2();
    let rows = vec![
        (
            "FacilitySpaceCapEx",
            t.facility_space_capex_per_sqft,
            "$/sq. ft.",
        ),
        ("UPSCapEx", t.ups_capex_per_server, "$/server"),
        ("PowerInfraCapEx", t.power_infra_capex_per_kw, "$/kWatt"),
        ("CoolingInfraCapEx", t.cooling_infra_capex_per_kw, "$/kWatt"),
        ("RestCapEx", t.rest_capex_per_kw, "$/kWatt"),
        ("DCInterest", t.dc_interest_per_kw, "$/kWatt"),
        ("ServerCapEx", t.server_capex_per_server, "$/server"),
        ("WaxCapEx", t.wax_capex_per_server, "$/server"),
        ("ServerInterest", t.server_interest_per_server, "$/server"),
        ("DatacenterOpEx", t.datacenter_opex_per_kw, "$/kWatt"),
        ("ServerEnergyOpEx", t.server_energy_opex_per_kw, "$/kWatt"),
        ("ServerPowerOpEx", t.server_power_opex_per_kw, "$/KWatt"),
        ("CoolingEnergyOpEx", t.cooling_energy_opex_per_kw, "$/kWatt"),
        ("RestOpEx", t.rest_opex_per_kw, "$/kWatt"),
    ];
    let table = text_table(
        &["Description", "TCO/month", "Unit"],
        &rows
            .iter()
            .map(|(n, r, u)| vec![n.to_string(), r.to_string(), u.to_string()])
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    md.push_str("## Table 2 — TCO parameters\n\nEmbedded verbatim; the per-server rows are derived from server price (price/48 months, price × 0.0055 interest) and reproduce the printed bands.\n\n```text\n");
    md.push_str(&table);
    md.push_str("```\n\n");
}

fn run_tco(
    md: &mut String,
    comparisons: &mut Vec<(String, Comparison)>,
    fig11: &Figure,
    fig12: &Figure,
) {
    println!("=== TCO analyses (§5.1/§5.2) ===");
    md.push_str("## TCO analyses\n\n");
    for class in ServerClass::ALL {
        // The §5 analyses consume only the headline scalars, handed over
        // through the figures' key/value surface.
        let reduction = fig11
            .key_value(&format!("peak_reduction_frac.{class}"))
            .expect("fig11 reports a peak reduction per class");
        let gain = fig12
            .key_value(&format!("peak_gain_frac.{class}"))
            .expect("fig12 reports a peak gain per class");
        let s = experiments::tco_summary_from(class, Fraction::new(reduction), Fraction::new(gain));
        println!(
            "--- {class} (measured reduction {:.1} %, gain {:.1} %) ---",
            s.peak_reduction_pct,
            gain * 100.0
        );
        for c in [
            &s.downsize_savings_per_year,
            &s.added_servers,
            &s.retrofit_savings_per_year,
            &s.tco_efficiency_pct,
        ] {
            println!(
                "  {:<34} paper {:>12}  measured {:>12}",
                c.metric,
                format_quantity(c.paper, &c.unit),
                format_quantity(c.measured, &c.unit)
            );
            comparisons.push((format!("TCO {class}"), c.clone()));
        }
        let _ = writeln!(
            md,
            "### {class}\n\n| metric | paper | measured | deviation |\n|---|---|---|---|"
        );
        for c in [
            &s.downsize_savings_per_year,
            &s.added_servers,
            &s.retrofit_savings_per_year,
            &s.tco_efficiency_pct,
        ] {
            let _ = writeln!(
                md,
                "| {} | {} | {} | {:+.0}% |",
                c.metric,
                format_quantity(c.paper, &c.unit),
                format_quantity(c.measured, &c.unit),
                c.relative_error() * 100.0
            );
        }
        md.push('\n');
    }
}

fn run_extensions(md: &mut String) {
    use thermal_time_shifting::extensions::*;
    println!("=== Extension studies (beyond the paper) ===");
    md.push_str("## Extension studies (beyond the paper)\n\n");
    let class = ServerClass::LowPower1U;

    let opex = cooling_opex_study(class);
    println!(
        "cooling electricity (tariff + economizer): ${:.0}/yr -> ${:.0}/yr with PCM ({:.2} % saved)",
        opex.without_pcm_per_year.value(),
        opex.with_pcm_per_year.value(),
        opex.saving.percent()
    );
    let _ = writeln!(
        md,
        "* **Cooling electricity** (tariff + temperate-climate economizer, 1U cluster): ${:.0}/yr → ${:.0}/yr with PCM ({:.2} % saved by shifting cooling work into cheap, cold nights — Figure 1's \"additional advantages\").",
        opex.without_pcm_per_year.value(),
        opex.with_pcm_per_year.value(),
        opex.saving.percent()
    );

    let reloc = relocation_study(class);
    println!(
        "relocation bill: ${:.0}/yr -> ${:.0}/yr with PCM per cluster",
        reloc.without_pcm_per_year.value(),
        reloc.with_pcm_per_year.value()
    );
    let _ = writeln!(
        md,
        "* **Job relocation vs. wax** (§5.2's other lever, $0.12/server-hour WAN+SLA): ${:.0}/yr → ${:.0}/yr per oversubscribed cluster.",
        reloc.without_pcm_per_year.value(),
        reloc.with_pcm_per_year.value()
    );

    println!("partial deployment curve:");
    let _ = writeln!(
        md,
        "* **Rack-by-rack deployment** (fraction equipped → peak reduction):"
    );
    for p in partial_deployment_study(class, 5) {
        println!(
            "  {:>4.0} % equipped -> {:>5.2} % reduction",
            p.equipped.percent(),
            p.peak_reduction.percent()
        );
        let _ = writeln!(
            md,
            "  * {:.0} % equipped → {:.2} % peak reduction",
            p.equipped.percent(),
            p.peak_reduction.percent()
        );
    }

    let crowd = flash_crowd_study(class);
    println!(
        "flash crowd (+20 % for 1 h at peak): calm {:.2} % vs surge {:.2} % reduction",
        crowd.calm_reduction.percent(),
        crowd.surge_reduction.percent()
    );
    let _ = writeln!(
        md,
        "* **Flash crowd** (+20 % for 1 h on the daily peak): peak reduction {:.2} % calm → {:.2} % with the surge (re-optimized wax still absorbs most of it).",
        crowd.calm_reduction.percent(),
        crowd.surge_reduction.percent()
    );

    let life = lifetime_study(class);
    println!(
        "wax endurance: {:.1} % capacity after 4 y, {:.1} % after 10 y of daily cycles",
        life.capacity_after_server_life.percent(),
        life.capacity_after_plant_life.percent()
    );
    let _ = writeln!(
        md,
        "* **Cycling endurance** (Table 1 stability made quantitative): the selected commercial paraffin keeps {:.1} % of its latent capacity after the 4-year server life and {:.1} % after the 10-year plant life; 80 % end-of-life is reached only after {} daily cycles.\n",
        life.capacity_after_server_life.percent(),
        life.capacity_after_plant_life.percent(),
        life.cycles_to_80pct
    );
}

fn yesno(b: bool) -> String {
    if b {
        "Yes".into()
    } else {
        "No".into()
    }
}
