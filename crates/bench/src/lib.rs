//! Shared helpers for the benchmark/repro harness.
//!
//! The table/row renderers now live in
//! [`thermal_time_shifting::report`] so the experiment implementations can
//! render themselves; this crate re-exports them for the bench targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod harness;

pub use thermal_time_shifting::report::{comparison_row, format_quantity, text_table};
