//! A minimal wall-clock benchmark harness (the `criterion` replacement).
//!
//! Exposes the slice of the criterion API the `benches/*.rs` targets use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`]/[`iter_batched`],
//! [`BatchSize`], [`Throughput`] and the [`criterion_group!`]/
//! [`criterion_main!`] macros — so every pre-existing bench target compiles
//! and runs unchanged, hermetically.
//!
//! Each benchmark is measured as `sample_size` wall-clock samples (default
//! 10, `TTS_BENCH_SAMPLES` overrides); fast routines are auto-batched so a
//! sample is never shorter than ~1 ms. Results print as one line per bench
//! and are written as a JSON report (via the in-repo `tts_units::json`
//! layer) to `TTS_BENCH_OUT`, defaulting to
//! `target/tts-bench/<binary>.json`.
//!
//! [`criterion_group!`]: crate::criterion_group
//! [`criterion_main!`]: crate::criterion_main

use std::time::{Duration, Instant};
use tts_units::json::{Json, ToJson};

pub use crate::{criterion_group, criterion_main};

/// Smallest target duration for one timed sample; fast routines are run in
/// batches of iterations until a sample reaches this.
const MIN_SAMPLE: Duration = Duration::from_millis(1);

/// Hard cap on auto-batched iterations per sample.
const MAX_ITERS: u64 = 100_000;

/// How a benchmark's reported quantity scales, for throughput lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many logical elements per call.
    Elements(u64),
    /// The routine processes this many bytes per call.
    Bytes(u64),
}

/// Batch-size hint for [`Bencher::iter_batched`]; accepted for criterion
/// compatibility. This harness re-runs the setup closure for every timed
/// call regardless, excluding it from the measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is cheap to hold many of.
    SmallInput,
    /// Setup output is expensive to hold many of.
    LargeInput,
    /// One setup output per iteration.
    PerIteration,
}

/// One benchmark's measured statistics, in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// `group/id` (or bare id for ungrouped benches).
    pub name: String,
    /// Samples actually taken.
    pub samples: u64,
    /// Iterations per sample (auto-batched).
    pub iters_per_sample: u64,
    /// Mean time per iteration, ns.
    pub mean_ns: f64,
    /// Fastest sample, ns per iteration.
    pub min_ns: f64,
    /// Slowest sample, ns per iteration.
    pub max_ns: f64,
    /// Median sample, ns per iteration.
    pub median_ns: f64,
    /// Elements (or bytes) per iteration when a throughput was declared.
    pub throughput_per_iter: Option<f64>,
}

tts_units::derive_json! { struct BenchResult {
    name, samples, iters_per_sample, mean_ns, min_ns, max_ns, median_ns, throughput_per_iter
} }

/// The harness entry point handed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// An empty harness.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: default_samples(),
            throughput: None,
        }
    }

    /// Measures one ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let r = measure(id.into(), default_samples(), None, f);
        self.push(r);
        self
    }

    fn push(&mut self, r: BenchResult) {
        println!(
            "bench {:<48} mean {:>12}  (min {}, max {}, {}x{} iters){}",
            r.name,
            fmt_ns(r.mean_ns),
            fmt_ns(r.min_ns),
            fmt_ns(r.max_ns),
            r.samples,
            r.iters_per_sample,
            r.throughput_per_iter
                .map(|t| format!("  {:.0} elem/s", t * 1e9 / r.mean_ns))
                .unwrap_or_default(),
        );
        self.results.push(r);
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Writes the JSON report. Called by [`criterion_main!`](crate::criterion_main).
    pub fn write_report(&self) {
        let path = report_path();
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let doc = Json::Obj(vec![(
            "benchmarks".to_string(),
            self.results.to_vec().to_json(),
        )]);
        match std::fs::write(&path, doc.to_string_pretty()) {
            Ok(()) => println!("bench report written to {path}"),
            Err(e) => eprintln!("could not write bench report to {path}: {e}"),
        }
    }
}

fn default_samples() -> u64 {
    std::env::var("TTS_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10)
        .max(1)
}

fn report_path() -> String {
    if let Ok(p) = std::env::var("TTS_BENCH_OUT") {
        return p;
    }
    let argv0 = std::env::args().next().unwrap_or_default();
    let exe = std::path::Path::new(&argv0);
    let stem = exe
        .file_stem()
        .map(|s| strip_cargo_hash(&s.to_string_lossy()))
        .unwrap_or_else(|| "bench".to_string());
    // Anchor the report dir at the build's `target/` directory rather than
    // the process cwd (cargo runs benches from the package dir, which would
    // scatter reports across crates/*/target).
    let target_dir = std::env::var("CARGO_TARGET_DIR").ok().or_else(|| {
        exe.ancestors()
            .find(|a| a.file_name().is_some_and(|n| n == "target"))
            .map(|a| a.to_string_lossy().into_owned())
    });
    match target_dir {
        Some(t) => format!("{t}/tts-bench/{stem}.json"),
        None => format!("target/tts-bench/{stem}.json"),
    }
}

/// Drops cargo's `-<16 hex digit>` disambiguation suffix from a bench
/// executable's stem, so reports get stable names across rebuilds.
fn strip_cargo_hash(stem: &str) -> String {
    match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() == 16 && hash.chars().all(|c| c.is_ascii_hexdigit()) => {
            base.to_string()
        }
        _ => stem.to_string(),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A named collection of benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measures one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into());
        let r = measure(name, self.sample_size, self.throughput, f);
        self.criterion.push(r);
        self
    }

    /// Ends the group (accepted for criterion compatibility).
    pub fn finish(self) {}
}

/// Passed to the bench closure; runs and times the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Durations of timed samples, filled by `iter`/`iter_batched`.
    samples: Vec<Duration>,
    /// Samples requested.
    sample_size: u64,
    /// Iterations folded into each sample (decided during warm-up).
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        self.run(|| (), |()| routine());
    }

    /// Times `routine` on fresh input from `setup`; the setup cost is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        self.run(&mut setup, &mut routine);
    }

    fn run<I, O>(&mut self, mut setup: impl FnMut() -> I, mut routine: impl FnMut(I) -> O) {
        // Warm-up: one untimed call, also the auto-batching probe.
        let input = setup();
        let t0 = Instant::now();
        std::hint::black_box(routine(input));
        let probe = t0.elapsed();
        let iters = if probe >= MIN_SAMPLE {
            1
        } else {
            let est = probe.as_nanos().max(1) as u64;
            (MIN_SAMPLE.as_nanos() as u64 / est).clamp(1, MAX_ITERS)
        };
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let mut elapsed = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t0 = Instant::now();
                std::hint::black_box(routine(input));
                elapsed += t0.elapsed();
            }
            self.samples.push(elapsed);
        }
    }
}

fn measure(
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) -> BenchResult {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        iters_per_sample: 1,
    };
    f(&mut b);
    let iters = b.iters_per_sample.max(1);
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / iters as f64)
        .collect();
    if per_iter.is_empty() {
        // The closure never called iter/iter_batched; record a zero result
        // rather than panicking so a stub bench still reports.
        per_iter.push(0.0);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let n = per_iter.len();
    let mean = per_iter.iter().sum::<f64>() / n as f64;
    let median = if n % 2 == 1 {
        per_iter[n / 2]
    } else {
        (per_iter[n / 2 - 1] + per_iter[n / 2]) / 2.0
    };
    BenchResult {
        name,
        samples: n as u64,
        iters_per_sample: iters,
        mean_ns: mean,
        min_ns: per_iter[0],
        max_ns: per_iter[n - 1],
        median_ns: median,
        throughput_per_iter: throughput.map(|t| match t {
            Throughput::Elements(e) => e as f64,
            Throughput::Bytes(b) => b as f64,
        }),
    }
}

/// Declares a bench group runner: `criterion_group!(benches, fn_a, fn_b)`
/// defines `fn benches(c: &mut Criterion)` calling each bench function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::harness::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench binary's `main`, running every group and writing the
/// JSON report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::new();
            $($group(&mut c);)+
            c.write_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let r = measure("t/spin".to_string(), 3, None, |b| {
            b.iter(|| (0..1000u64).sum::<u64>())
        });
        assert_eq!(r.samples, 3);
        assert!(r.iters_per_sample >= 1);
        assert!(r.mean_ns > 0.0);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
    }

    #[test]
    fn iter_batched_excludes_setup_from_iters() {
        let r = measure(
            "t/batched".to_string(),
            2,
            Some(Throughput::Elements(10)),
            |b| {
                b.iter_batched(
                    || vec![1.0f64; 64],
                    |v| v.iter().sum::<f64>(),
                    BatchSize::SmallInput,
                )
            },
        );
        assert_eq!(r.samples, 2);
        assert_eq!(r.throughput_per_iter, Some(10.0));
    }

    #[test]
    fn results_serialize_to_json() {
        let r = BenchResult {
            name: "g/x".into(),
            samples: 5,
            iters_per_sample: 2,
            mean_ns: 1.5,
            min_ns: 1.0,
            max_ns: 2.0,
            median_ns: 1.4,
            throughput_per_iter: None,
        };
        let text = r.to_json_string();
        assert!(text.contains("\"name\":\"g/x\""));
        assert!(text.contains("\"samples\":5"));
    }
}
