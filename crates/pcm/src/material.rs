//! The PCM materials library (Table 1 of the paper, plus §2.1 specifics).

use tts_units::{Celsius, DollarsPerTon, GramsPerMilliliter, JoulesPerGram, JoulesPerGramKelvin};

/// The solid–liquid PCM families compared in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PcmClass {
    /// Salt hydrates: high energy density, poor cycle stability, corrosive.
    SaltHydrate,
    /// Metal alloys: melt far above datacenter temperatures.
    MetalAlloy,
    /// Fatty acids: moderate heat of fusion, corrosive.
    FattyAcid,
    /// Molecularly pure n-paraffins (eicosane, tridecane, ...).
    NParaffin,
    /// Commercial-grade paraffin blends (the material the paper deploys).
    CommercialParaffin,
}

tts_units::derive_json! { enum PcmClass { SaltHydrate, MetalAlloy, FattyAcid, NParaffin, CommercialParaffin } }

impl core::fmt::Display for PcmClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            PcmClass::SaltHydrate => "Salt Hydrates",
            PcmClass::MetalAlloy => "Metal Alloys",
            PcmClass::FattyAcid => "Fatty Acids",
            PcmClass::NParaffin => "n-Paraffins",
            PcmClass::CommercialParaffin => "Commercial Paraffins",
        };
        f.write_str(s)
    }
}

/// Cycle stability over repeated melt/freeze cycles (Table 1 column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stability {
    /// Degrades in as few as 100 cycles.
    Poor,
    /// Not characterized in the literature.
    Unknown,
    /// Usable but with measurable degradation.
    Good,
    /// Negligible degradation over ~1,000 cycles.
    VeryGood,
    /// Negligible deviation after more than 1,000 cycles.
    Excellent,
}

tts_units::derive_json! { enum Stability { Poor, Unknown, Good, VeryGood, Excellent } }

impl core::fmt::Display for Stability {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Stability::Poor => "Poor",
            Stability::Unknown => "Unknown",
            Stability::Good => "Good",
            Stability::VeryGood => "Very Good",
            Stability::Excellent => "Excellent",
        };
        f.write_str(s)
    }
}

/// A phase change material with the properties the paper evaluates.
///
/// Construct specific materials through the named constructors
/// ([`PcmMaterial::eicosane`], [`PcmMaterial::commercial_paraffin`], …) or
/// the full [`PcmMaterial::custom`] builder entry point.
#[derive(Debug, Clone, PartialEq)]
pub struct PcmMaterial {
    name: String,
    class: PcmClass,
    melting_point: Celsius,
    /// Width of the mushy (solid↔liquid transition) region. Pure
    /// n-paraffins transition over ~1 K; commercial blends over several K.
    melting_range: f64,
    heat_of_fusion: JoulesPerGram,
    density: GramsPerMilliliter,
    specific_heat_solid: JoulesPerGramKelvin,
    specific_heat_liquid: JoulesPerGramKelvin,
    stability: Stability,
    electrically_conductive: bool,
    corrosive: bool,
    bulk_price: DollarsPerTon,
}

tts_units::derive_json! { struct PcmMaterial { name, class, melting_point, melting_range, heat_of_fusion, density, specific_heat_solid, specific_heat_liquid, stability, electrically_conductive, corrosive, bulk_price } }

impl PcmMaterial {
    /// Fully custom material definition.
    ///
    /// `melting_range_k` is the width of the transition region in kelvin;
    /// it is clamped to at least 0.1 K to keep the enthalpy curve
    /// numerically invertible.
    #[allow(clippy::too_many_arguments)]
    pub fn custom(
        name: impl Into<String>,
        class: PcmClass,
        melting_point: Celsius,
        melting_range_k: f64,
        heat_of_fusion: JoulesPerGram,
        density: GramsPerMilliliter,
        specific_heat_solid: JoulesPerGramKelvin,
        specific_heat_liquid: JoulesPerGramKelvin,
        stability: Stability,
        electrically_conductive: bool,
        corrosive: bool,
        bulk_price: DollarsPerTon,
    ) -> Self {
        Self {
            name: name.into(),
            class,
            melting_point,
            melting_range: melting_range_k.max(0.1),
            heat_of_fusion,
            density,
            specific_heat_solid,
            specific_heat_liquid,
            stability,
            electrically_conductive,
            corrosive,
            bulk_price,
        }
    }

    /// Eicosane (C20 n-paraffin), the computational-sprinting PCM: 247 J/g,
    /// melts at 36.6 °C, quoted at $75,000/ton (§2.1).
    pub fn eicosane() -> Self {
        Self::custom(
            "Eicosane",
            PcmClass::NParaffin,
            Celsius::new(36.6),
            1.0,
            JoulesPerGram::new(247.0),
            GramsPerMilliliter::new(0.78),
            JoulesPerGramKelvin::new(1.92),
            JoulesPerGramKelvin::new(2.46),
            Stability::Excellent,
            false,
            false,
            DollarsPerTon::new(75_000.0),
        )
    }

    /// Commercial-grade paraffin blend with a selectable melting point.
    ///
    /// The paper's §2.1: commercial paraffin with melting temperatures
    /// between 40 and 60 °C is available at $1,000–2,000/ton — *"50× cheaper
    /// for 20 % lower energy per gram compared to eicosane"* — i.e. 200 J/g.
    /// The §3 retail wax melted at 39 °C; melting points modestly outside
    /// the 40–60 °C catalogue band are therefore accepted.
    pub fn commercial_paraffin(melting_point: Celsius) -> Self {
        Self::custom(
            format!("Commercial Paraffin ({:.0} °C)", melting_point.value()),
            PcmClass::CommercialParaffin,
            melting_point,
            4.0,
            JoulesPerGram::new(200.0),
            GramsPerMilliliter::new(0.80),
            JoulesPerGramKelvin::new(2.0),
            JoulesPerGramKelvin::new(2.2),
            Stability::VeryGood,
            false,
            false,
            DollarsPerTon::new(1_500.0),
        )
    }

    /// The retail paraffin measured in the validation experiment (§3):
    /// melting temperature measured at 39 °C.
    pub fn validation_wax() -> Self {
        Self::commercial_paraffin(Celsius::new(39.0))
    }

    /// A representative salt hydrate (Table 1 row 1).
    pub fn salt_hydrate() -> Self {
        Self::custom(
            "Salt Hydrate (representative)",
            PcmClass::SaltHydrate,
            Celsius::new(47.5), // 25–70 °C range midpoint
            3.0,
            JoulesPerGram::new(245.0),
            GramsPerMilliliter::new(1.75),
            JoulesPerGramKelvin::new(1.7),
            JoulesPerGramKelvin::new(2.1),
            Stability::Poor,
            true,
            true,
            DollarsPerTon::new(800.0),
        )
    }

    /// A representative metal alloy PCM (Table 1 row 2). Melts far above
    /// datacenter temperatures (> 300 °C).
    pub fn metal_alloy() -> Self {
        Self::custom(
            "Metal Alloy (representative)",
            PcmClass::MetalAlloy,
            Celsius::new(320.0),
            5.0,
            JoulesPerGram::new(300.0),
            GramsPerMilliliter::new(7.5),
            JoulesPerGramKelvin::new(0.5),
            JoulesPerGramKelvin::new(0.6),
            Stability::Poor,
            true,
            false,
            DollarsPerTon::new(20_000.0),
        )
    }

    /// A representative fatty acid PCM (Table 1 row 3).
    pub fn fatty_acid() -> Self {
        Self::custom(
            "Fatty Acid (representative)",
            PcmClass::FattyAcid,
            Celsius::new(45.5), // 16–75 °C range midpoint
            3.0,
            JoulesPerGram::new(185.0),
            GramsPerMilliliter::new(0.9),
            JoulesPerGramKelvin::new(1.9),
            JoulesPerGramKelvin::new(2.2),
            Stability::Unknown,
            false,
            true,
            DollarsPerTon::new(2_500.0),
        )
    }

    /// A representative pure n-paraffin (Table 1 row 4), distinct from
    /// eicosane: the family spans 6–65 °C, 230–250 J/g.
    pub fn n_paraffin(melting_point: Celsius) -> Self {
        Self::custom(
            format!("n-Paraffin ({:.0} °C)", melting_point.value()),
            PcmClass::NParaffin,
            melting_point,
            1.0,
            JoulesPerGram::new(240.0),
            GramsPerMilliliter::new(0.75),
            JoulesPerGramKelvin::new(1.92),
            JoulesPerGramKelvin::new(2.46),
            Stability::Excellent,
            false,
            false,
            DollarsPerTon::new(75_000.0),
        )
    }

    /// The five Table 1 rows, in the paper's order.
    pub fn table1() -> Vec<PcmMaterial> {
        vec![
            Self::salt_hydrate(),
            Self::metal_alloy(),
            Self::fatty_acid(),
            Self::n_paraffin(Celsius::new(36.6)),
            Self::commercial_paraffin(Celsius::new(50.0)),
        ]
    }

    /// Material name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// PCM family.
    pub fn class(&self) -> PcmClass {
        self.class
    }

    /// Nominal melting temperature (center of the transition region).
    pub fn melting_point(&self) -> Celsius {
        self.melting_point
    }

    /// Width of the solid↔liquid transition region, in kelvin.
    pub fn melting_range_k(&self) -> f64 {
        self.melting_range
    }

    /// Temperature at which melting begins.
    pub fn solidus(&self) -> Celsius {
        Celsius::new(self.melting_point.value() - self.melting_range / 2.0)
    }

    /// Temperature at which the material is fully liquid.
    pub fn liquidus(&self) -> Celsius {
        Celsius::new(self.melting_point.value() + self.melting_range / 2.0)
    }

    /// Latent heat of fusion.
    pub fn heat_of_fusion(&self) -> JoulesPerGram {
        self.heat_of_fusion
    }

    /// Density (solid/liquid average; Table 1 quotes a single value).
    pub fn density(&self) -> GramsPerMilliliter {
        self.density
    }

    /// Specific heat of the solid phase.
    pub fn specific_heat_solid(&self) -> JoulesPerGramKelvin {
        self.specific_heat_solid
    }

    /// Specific heat of the liquid phase.
    pub fn specific_heat_liquid(&self) -> JoulesPerGramKelvin {
        self.specific_heat_liquid
    }

    /// Cycle stability rating.
    pub fn stability(&self) -> Stability {
        self.stability
    }

    /// Whether the material conducts electricity (a leak hazard).
    pub fn electrically_conductive(&self) -> bool {
        self.electrically_conductive
    }

    /// Whether the material is corrosive (a containment hazard).
    pub fn corrosive(&self) -> bool {
        self.corrosive
    }

    /// Bulk price in dollars per metric ton.
    pub fn bulk_price(&self) -> DollarsPerTon {
        self.bulk_price
    }

    /// Volumetric energy density of the phase change, in J/mL — the figure
    /// of merit for the limited space inside a server.
    pub fn volumetric_energy_density(&self) -> f64 {
        self.heat_of_fusion.value() * self.density.value()
    }

    /// Screens the material against the paper's datacenter deployment
    /// criteria (§2.1): melting temperature in the usable 30–60 °C band,
    /// at least "good" cycle stability, non-corrosive, electrically
    /// non-conductive.
    ///
    /// Returns the list of violated criteria (empty = suitable).
    pub fn datacenter_suitability(&self) -> Vec<SuitabilityIssue> {
        let mut issues = Vec::new();
        let t = self.melting_point.value();
        if !(30.0..=60.0).contains(&t) {
            issues.push(SuitabilityIssue::MeltingPointOutOfRange);
        }
        if self.stability < Stability::Good {
            issues.push(SuitabilityIssue::PoorStability);
        }
        if self.corrosive {
            issues.push(SuitabilityIssue::Corrosive);
        }
        if self.electrically_conductive {
            issues.push(SuitabilityIssue::ElectricallyConductive);
        }
        issues
    }

    /// `true` when [`Self::datacenter_suitability`] raises no issues.
    pub fn is_datacenter_suitable(&self) -> bool {
        self.datacenter_suitability().is_empty()
    }
}

/// A reason a PCM fails the datacenter deployment screen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuitabilityIssue {
    /// Melting point outside the 30–60 °C datacenter band.
    MeltingPointOutOfRange,
    /// Cycle stability below "good".
    PoorStability,
    /// Corrosive on leak.
    Corrosive,
    /// Conducts electricity on leak.
    ElectricallyConductive,
}

tts_units::derive_json! { enum SuitabilityIssue { MeltingPointOutOfRange, PoorStability, Corrosive, ElectricallyConductive } }

impl core::fmt::Display for SuitabilityIssue {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            SuitabilityIssue::MeltingPointOutOfRange => "melting point outside 30-60 °C",
            SuitabilityIssue::PoorStability => "poor cycle stability",
            SuitabilityIssue::Corrosive => "corrosive",
            SuitabilityIssue::ElectricallyConductive => "electrically conductive",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_five_rows_in_paper_order() {
        let rows = PcmMaterial::table1();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].class(), PcmClass::SaltHydrate);
        assert_eq!(rows[1].class(), PcmClass::MetalAlloy);
        assert_eq!(rows[2].class(), PcmClass::FattyAcid);
        assert_eq!(rows[3].class(), PcmClass::NParaffin);
        assert_eq!(rows[4].class(), PcmClass::CommercialParaffin);
    }

    #[test]
    fn eicosane_matches_paper_quotes() {
        let e = PcmMaterial::eicosane();
        assert_eq!(e.heat_of_fusion().value(), 247.0);
        assert_eq!(e.melting_point().value(), 36.6);
        assert_eq!(e.bulk_price().value(), 75_000.0);
        assert!(e.is_datacenter_suitable());
    }

    #[test]
    fn commercial_paraffin_is_50x_cheaper_for_20pct_less_energy() {
        let e = PcmMaterial::eicosane();
        let c = PcmMaterial::commercial_paraffin(Celsius::new(45.0));
        assert!((e.bulk_price() / c.bulk_price() - 50.0).abs() < 1e-9);
        let energy_penalty = 1.0 - c.heat_of_fusion() / e.heat_of_fusion();
        assert!((energy_penalty - 0.19).abs() < 0.02, "{energy_penalty}");
    }

    #[test]
    fn only_paraffins_pass_the_datacenter_screen() {
        for m in PcmMaterial::table1() {
            let ok = m.is_datacenter_suitable();
            match m.class() {
                PcmClass::NParaffin | PcmClass::CommercialParaffin => {
                    assert!(ok, "{} should be suitable", m.name())
                }
                _ => assert!(!ok, "{} should be unsuitable", m.name()),
            }
        }
    }

    #[test]
    fn metal_alloy_fails_on_melting_point() {
        let issues = PcmMaterial::metal_alloy().datacenter_suitability();
        assert!(issues.contains(&SuitabilityIssue::MeltingPointOutOfRange));
        assert!(issues.contains(&SuitabilityIssue::PoorStability));
    }

    #[test]
    fn salt_hydrate_fails_on_corrosion_and_conductivity() {
        let issues = PcmMaterial::salt_hydrate().datacenter_suitability();
        assert!(issues.contains(&SuitabilityIssue::Corrosive));
        assert!(issues.contains(&SuitabilityIssue::ElectricallyConductive));
    }

    #[test]
    fn solidus_liquidus_bracket_melting_point() {
        let m = PcmMaterial::commercial_paraffin(Celsius::new(42.0));
        assert!(m.solidus() < m.melting_point());
        assert!(m.melting_point() < m.liquidus());
        assert!((m.liquidus().value() - m.solidus().value() - m.melting_range_k()).abs() < 1e-12);
    }

    #[test]
    fn melting_range_is_clamped_positive() {
        let m = PcmMaterial::custom(
            "degenerate",
            PcmClass::NParaffin,
            Celsius::new(40.0),
            0.0,
            JoulesPerGram::new(200.0),
            GramsPerMilliliter::new(0.8),
            JoulesPerGramKelvin::new(2.0),
            JoulesPerGramKelvin::new(2.0),
            Stability::Excellent,
            false,
            false,
            DollarsPerTon::new(1000.0),
        );
        assert!(m.melting_range_k() >= 0.1);
    }

    #[test]
    fn volumetric_density_prefers_salt_hydrates_per_gram_of_space() {
        // Table 1's tension: salt hydrates store more heat per mL but fail
        // the suitability screen.
        let salt = PcmMaterial::salt_hydrate();
        let wax = PcmMaterial::commercial_paraffin(Celsius::new(45.0));
        assert!(salt.volumetric_energy_density() > wax.volumetric_energy_density());
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert_eq!(PcmClass::SaltHydrate.to_string(), "Salt Hydrates");
        assert_eq!(Stability::VeryGood.to_string(), "Very Good");
        assert_eq!(SuitabilityIssue::Corrosive.to_string(), "corrosive");
    }
}
