//! Blends of two paraffin grades: multi-plateau storage.
//!
//! §2.1 notes that commercial paraffin is "a mixture of paraffin
//! molecules" — vendors tune the melting point by blending chain lengths.
//! Taken further, a *coarse* blend of two distinct grades produces an
//! enthalpy curve with two latent plateaus. For thermal time shifting this
//! is interesting: a low plateau that melts at moderate load plus a high
//! plateau held in reserve for the deepest peaks, in one box.
//!
//! The blend model composes component enthalpy curves by mass fraction
//! (components exchange heat fast compared to the melt timescale, so they
//! share one temperature).

use crate::enthalpy::EnthalpyCurve;
use crate::material::PcmMaterial;
use tts_units::{Celsius, Fraction, Grams, Joules, JoulesPerGram, Seconds, Watts, WattsPerKelvin};

/// A two-component paraffin blend in thermal equilibrium.
#[derive(Debug, Clone, PartialEq)]
pub struct BlendState {
    curve_a: EnthalpyCurve,
    curve_b: EnthalpyCurve,
    /// Mass fraction of component A.
    fraction_a: Fraction,
    mass: Grams,
    /// Shared temperature (the state variable; the blend's h(T) is strictly
    /// increasing so T is equivalent to total enthalpy).
    temp: Celsius,
    temp_ref: Celsius,
}

tts_units::derive_json! { struct BlendState { curve_a, curve_b, fraction_a, mass, temp, temp_ref } }

impl BlendState {
    /// A blend of `fraction_a` of `a` and the rest `b`, equilibrated at
    /// `initial`.
    ///
    /// # Panics
    /// Panics on non-positive mass.
    pub fn new(
        a: &PcmMaterial,
        b: &PcmMaterial,
        fraction_a: Fraction,
        mass: Grams,
        initial: Celsius,
    ) -> Self {
        assert!(mass.value() > 0.0, "PCM mass must be positive");
        Self {
            curve_a: EnthalpyCurve::for_material(a),
            curve_b: EnthalpyCurve::for_material(b),
            fraction_a,
            mass,
            temp: initial,
            temp_ref: initial,
        }
    }

    /// Blend specific enthalpy at a temperature (mass-weighted).
    pub fn enthalpy_at(&self, t: Celsius) -> JoulesPerGram {
        let fa = self.fraction_a.value();
        JoulesPerGram::new(
            fa * self.curve_a.enthalpy_at(t).value()
                + (1.0 - fa) * self.curve_b.enthalpy_at(t).value(),
        )
    }

    /// Blend effective heat capacity at a temperature.
    pub fn effective_heat_capacity(&self, t: Celsius) -> f64 {
        let fa = self.fraction_a.value();
        fa * self.curve_a.effective_heat_capacity(t)
            + (1.0 - fa) * self.curve_b.effective_heat_capacity(t)
    }

    /// Advances the blend against air through a lumped coupling, returning
    /// absorbed heat (negative = released).
    pub fn step(&mut self, air_temp: Celsius, coupling: WattsPerKelvin, dt: Seconds) -> Watts {
        if dt.value() <= 0.0 || coupling.value() <= 0.0 {
            return Watts::ZERO;
        }
        let cp_eff = self.effective_heat_capacity(self.temp); // J/(g·K)
        let c_total = cp_eff * self.mass.value();
        let tau = c_total / coupling.value();
        let alpha = 1.0 - (-dt.value() / tau).exp();
        let mut dt_k = (air_temp - self.temp).value() * alpha;
        // Never overshoot the air temperature.
        if dt_k >= 0.0 {
            dt_k = dt_k.min((air_temp - self.temp).value().max(0.0));
        } else {
            dt_k = dt_k.max((air_temp - self.temp).value().min(0.0));
        }
        let before = self.enthalpy_at(self.temp);
        self.temp += tts_units::TempDelta::new(dt_k);
        let after = self.enthalpy_at(self.temp);
        Watts::new((after.value() - before.value()) * self.mass.value() / dt.value())
    }

    /// Overall melt fraction: latent energy released so far over total
    /// latent capacity (0 = both solid, 1 = both molten).
    pub fn melt_fraction(&self) -> Fraction {
        let fa = self.fraction_a.value();
        let f = fa * self.curve_a.melt_fraction_at(self.temp).value()
            + (1.0 - fa) * self.curve_b.melt_fraction_at(self.temp).value();
        Fraction::new(f)
    }

    /// Energy stored relative to the initial state.
    pub fn stored_energy(&self) -> Joules {
        Joules::new(
            (self.enthalpy_at(self.temp).value() - self.enthalpy_at(self.temp_ref).value())
                * self.mass.value(),
        )
    }

    /// Current blend temperature.
    pub fn temperature(&self) -> Celsius {
        self.temp
    }

    /// Total latent capacity across both plateaus, J.
    pub fn latent_capacity(&self) -> Joules {
        let fa = self.fraction_a.value();
        Joules::new(
            (fa * self.curve_a.transition_storage().value()
                + (1.0 - fa) * self.curve_b.transition_storage().value())
                * self.mass.value(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blend() -> BlendState {
        // 40 °C and 52 °C grades, half and half.
        BlendState::new(
            &PcmMaterial::commercial_paraffin(Celsius::new(40.0)),
            &PcmMaterial::commercial_paraffin(Celsius::new(52.0)),
            Fraction::new(0.5),
            Grams::new(1000.0),
            Celsius::new(25.0),
        )
    }

    #[test]
    fn two_plateaus_exist() {
        let b = blend();
        // Effective cp spikes near both melting points and is ordinary
        // between them.
        let at_40 = b.effective_heat_capacity(Celsius::new(40.0));
        let at_46 = b.effective_heat_capacity(Celsius::new(46.0));
        let at_52 = b.effective_heat_capacity(Celsius::new(52.0));
        assert!(at_40 > 5.0 * at_46, "{at_40} vs {at_46}");
        assert!(at_52 > 5.0 * at_46, "{at_52} vs {at_46}");
    }

    #[test]
    fn half_melted_between_the_plateaus() {
        let mut b = blend();
        let g = WattsPerKelvin::new(8.0);
        // Hold at 46 °C: the 40 °C component is molten, the 52 °C is not.
        for _ in 0..2000 {
            b.step(Celsius::new(46.0), g, Seconds::new(60.0));
        }
        let f = b.melt_fraction().value();
        assert!((f - 0.5).abs() < 0.05, "melt fraction {f}");
    }

    #[test]
    fn full_melt_uses_both_plateaus() {
        let mut b = blend();
        let g = WattsPerKelvin::new(8.0);
        let mut absorbed = 0.0;
        for _ in 0..4000 {
            absorbed += b.step(Celsius::new(60.0), g, Seconds::new(60.0)).value() * 60.0;
        }
        assert!(b.melt_fraction().value() > 0.99);
        // Absorbed ≥ total latent capacity (plus sensible heat).
        assert!(absorbed > b.latent_capacity().value());
        // And the energy account closes.
        assert!(
            (absorbed - b.stored_energy().value()).abs() < 1e-6 * absorbed,
            "{absorbed} vs {}",
            b.stored_energy().value()
        );
    }

    #[test]
    fn pure_blend_reduces_to_single_component() {
        let mut pure = BlendState::new(
            &PcmMaterial::commercial_paraffin(Celsius::new(45.0)),
            &PcmMaterial::commercial_paraffin(Celsius::new(52.0)),
            Fraction::ONE, // 100 % component A
            Grams::new(500.0),
            Celsius::new(25.0),
        );
        let mut single = crate::PcmState::new(
            &PcmMaterial::commercial_paraffin(Celsius::new(45.0)),
            Grams::new(500.0),
            Celsius::new(25.0),
        );
        let g = WattsPerKelvin::new(5.0);
        for _ in 0..1500 {
            pure.step(Celsius::new(50.0), g, Seconds::new(60.0));
            single.step(Celsius::new(50.0), g, Seconds::new(60.0));
        }
        assert!(
            (pure.melt_fraction().value() - single.melt_fraction().value()).abs() < 0.05,
            "pure-blend {} vs single {}",
            pure.melt_fraction().value(),
            single.melt_fraction().value()
        );
    }

    #[test]
    fn refreezes_in_stages() {
        let mut b = blend();
        let g = WattsPerKelvin::new(8.0);
        for _ in 0..4000 {
            b.step(Celsius::new(60.0), g, Seconds::new(60.0));
        }
        // Cool to 46 °C: only the high-melting half refreezes.
        for _ in 0..4000 {
            b.step(Celsius::new(46.0), g, Seconds::new(60.0));
        }
        let f = b.melt_fraction().value();
        assert!((f - 0.5).abs() < 0.05, "staged refreeze: {f}");
    }
}
