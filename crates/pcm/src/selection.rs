//! Melting-threshold selection: peak shaving with a finite energy budget.
//!
//! The paper (§5.1): *"the range of melting temperature available in
//! commercial grade paraffin allows us to select one with an optimal melting
//! threshold to reduce the peak cooling load of each cluster, and the best
//! melting temperature is determined on the shape and length of the load
//! trace: for the Google trace, we find that the best wax typically begins
//! to melt when a server exceeds 75 % load"*.
//!
//! This module finds the lowest achievable power cap `C` such that the wax
//! can absorb every excursion of the load trace above `C`, given its latent
//! energy budget and accounting for refreeze between excursions (refreeze is
//! limited both by the cooling headroom `C − P(t)` and by the wax's own heat
//! ejection rate). The cap then maps to a melting temperature through the
//! server's power→air-temperature characteristic.

use tts_units::{Celsius, Fraction, Joules, Seconds, TempDelta, Watts};

/// Result of the peak-cap optimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakCapResult {
    /// The lowest feasible shaved peak.
    pub cap: Watts,
    /// The unshaved peak of the input trace.
    pub raw_peak: Watts,
    /// Relative peak reduction `1 − cap/raw_peak`.
    pub reduction: Fraction,
    /// The cap expressed as a fraction of the raw peak (the "begins to melt
    /// at X % load" figure from the paper).
    pub melt_onset_load: Fraction,
}

tts_units::derive_json! { struct PeakCapResult { cap, raw_peak, reduction, melt_onset_load } }

/// Finds the lowest feasible power cap for a periodic load trace.
///
/// * `trace` — power samples at fixed spacing `dt` (one diurnal cycle or
///   more; the trace is processed in order, and the wax starts solid).
/// * `dt` — sample spacing.
/// * `energy_budget` — latent energy the wax can absorb (J).
/// * `max_refreeze_rate` — the fastest the wax can reject heat while
///   refreezing (W); physically `G · (T_melt − T_air_offpeak)`.
///
/// Returns `None` for an empty trace or a non-positive budget with a trace
/// that never varies (degenerate inputs).
///
/// # Algorithm
///
/// The feasibility of a cap is checked by simulating the wax energy level
/// over the trace: above the cap the wax absorbs `P − C`; below it, the wax
/// refreezes at `min(C − P, max_refreeze_rate)`. A cap is feasible when the
/// stored energy never exceeds the budget. `C ↦ feasible(C)` is monotone,
/// so binary search converges; 60 iterations give sub-milliwatt resolution.
pub fn optimal_peak_cap(
    trace: &[Watts],
    dt: Seconds,
    energy_budget: Joules,
    max_refreeze_rate: Watts,
) -> Option<PeakCapResult> {
    if trace.is_empty() || dt.value() <= 0.0 {
        return None;
    }
    let raw_peak = trace.iter().copied().fold(Watts::ZERO, Watts::max);
    let floor = trace.iter().copied().fold(raw_peak, Watts::min);
    if raw_peak.value() <= 0.0 {
        return None;
    }
    if energy_budget.value() <= 0.0 {
        return Some(PeakCapResult {
            cap: raw_peak,
            raw_peak,
            reduction: Fraction::ZERO,
            melt_onset_load: Fraction::ONE,
        });
    }

    let feasible = |cap: f64| -> bool {
        let mut stored = 0.0_f64;
        for p in trace {
            let p = p.value();
            if p > cap {
                stored += (p - cap) * dt.value();
                if stored > energy_budget.value() {
                    return false;
                }
            } else {
                let refreeze = (cap - p).min(max_refreeze_rate.value().max(0.0));
                stored = (stored - refreeze * dt.value()).max(0.0);
            }
        }
        true
    };

    let mut lo = floor.value();
    let mut hi = raw_peak.value();
    if !feasible(hi) {
        // Cannot even hold the raw peak (max_refreeze_rate = 0 with a
        // repeating trace, say): no shaving possible.
        return Some(PeakCapResult {
            cap: raw_peak,
            raw_peak,
            reduction: Fraction::ZERO,
            melt_onset_load: Fraction::ONE,
        });
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if feasible(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let cap = Watts::new(hi);
    Some(PeakCapResult {
        cap,
        raw_peak,
        reduction: Fraction::new(1.0 - cap.value() / raw_peak.value()),
        melt_onset_load: Fraction::new(cap.value() / raw_peak.value()),
    })
}

/// A linear power → local-air-temperature characteristic, `T = T0 + k·P`.
///
/// Extracted from the server thermal model (the Icepak-substitute sweeps):
/// at steady state the air temperature at the wax location rises linearly
/// with dissipated power for a fixed airflow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearAirTemp {
    /// Air temperature at the wax location at zero server power.
    pub t_at_zero: Celsius,
    /// Slope, kelvin per watt of server power.
    pub k_per_watt: f64,
}

tts_units::derive_json! { struct LinearAirTemp { t_at_zero, k_per_watt } }

impl LinearAirTemp {
    /// Air temperature at the wax location for a given server power.
    pub fn at(&self, power: Watts) -> Celsius {
        self.t_at_zero + TempDelta::new(self.k_per_watt * power.value())
    }

    /// The server power at which the local air reaches `t` (inverse map).
    pub fn power_for(&self, t: Celsius) -> Watts {
        Watts::new((t - self.t_at_zero).value() / self.k_per_watt)
    }

    /// The melting point to order from the wax catalogue so that melting
    /// begins exactly when server power crosses `cap`: the solidus must sit
    /// at the cap's air temperature, so the (center) melting point is half a
    /// melting range above it.
    pub fn melting_point_for_cap(&self, cap: Watts, melting_range_k: f64) -> Celsius {
        self.at(cap) + TempDelta::new(melting_range_k / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tts_rng::prop::prelude::*;

    fn rect_trace(base: f64, peak: f64, peak_samples: usize, total: usize) -> Vec<Watts> {
        (0..total)
            .map(|i| {
                if i >= total / 2 - peak_samples / 2 && i < total / 2 + peak_samples / 2 {
                    Watts::new(peak)
                } else {
                    Watts::new(base)
                }
            })
            .collect()
    }

    #[test]
    fn flat_trace_cannot_be_shaved() {
        let trace = vec![Watts::new(100.0); 100];
        let r = optimal_peak_cap(
            &trace,
            Seconds::new(60.0),
            Joules::new(1e6),
            Watts::new(50.0),
        )
        .unwrap();
        // Shaving a flat trace requires absorbing indefinitely; with a
        // finite budget the cap stays at (essentially) the peak.
        assert!(r.reduction.value() < 0.01, "{:?}", r);
    }

    #[test]
    fn rectangular_peak_is_shaved_by_budget_over_duration() {
        // 1000 s of 200 W over a 100 W base; budget 50 kJ → can shave
        // 50 kJ / 1000 s = 50 W off the peak.
        let trace = rect_trace(100.0, 200.0, 10, 100); // dt=100s → peak lasts 1000 s
        let r = optimal_peak_cap(
            &trace,
            Seconds::new(100.0),
            Joules::new(50_000.0),
            Watts::new(1000.0),
        )
        .unwrap();
        assert!((r.cap.value() - 150.0).abs() < 0.5, "cap {}", r.cap);
        assert!((r.reduction.value() - 0.25).abs() < 0.01);
    }

    #[test]
    fn infinite_budget_shaves_to_the_mean_ish_level() {
        let trace = rect_trace(100.0, 200.0, 10, 100);
        let r = optimal_peak_cap(
            &trace,
            Seconds::new(100.0),
            Joules::new(1e12),
            Watts::new(1e9),
        )
        .unwrap();
        // With unlimited energy and refreeze, the cap can reach the base.
        assert!(r.cap.value() < 101.0, "cap {}", r.cap);
    }

    #[test]
    fn zero_budget_gives_zero_reduction() {
        let trace = rect_trace(100.0, 200.0, 10, 100);
        let r =
            optimal_peak_cap(&trace, Seconds::new(100.0), Joules::ZERO, Watts::new(50.0)).unwrap();
        assert_eq!(r.reduction, Fraction::ZERO);
        assert_eq!(r.cap, r.raw_peak);
    }

    #[test]
    fn refreeze_limit_matters_for_repeated_peaks() {
        // Two peaks separated by a trough. A generous refreeze rate allows
        // reuse of the budget; a zero rate does not.
        let mut trace = rect_trace(100.0, 200.0, 10, 50);
        trace.extend(rect_trace(100.0, 200.0, 10, 50));
        let budget = Joules::new(50_000.0);
        let with_refreeze =
            optimal_peak_cap(&trace, Seconds::new(100.0), budget, Watts::new(100.0)).unwrap();
        let without_refreeze =
            optimal_peak_cap(&trace, Seconds::new(100.0), budget, Watts::ZERO).unwrap();
        assert!(with_refreeze.cap < without_refreeze.cap);
    }

    #[test]
    fn empty_trace_returns_none() {
        assert!(optimal_peak_cap(&[], Seconds::new(1.0), Joules::new(1.0), Watts::ZERO).is_none());
    }

    #[test]
    fn linear_air_temp_round_trips() {
        let m = LinearAirTemp {
            t_at_zero: Celsius::new(25.0),
            k_per_watt: 0.1,
        };
        let t = m.at(Watts::new(150.0));
        assert!((t.value() - 40.0).abs() < 1e-9);
        assert!((m.power_for(t).value() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn melting_point_sits_half_range_above_cap_temperature() {
        let m = LinearAirTemp {
            t_at_zero: Celsius::new(25.0),
            k_per_watt: 0.1,
        };
        let mp = m.melting_point_for_cap(Watts::new(150.0), 4.0);
        assert!((mp.value() - 42.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn cap_is_between_floor_and_peak(
            samples in collection::vec(50.0f64..500.0, 10..200),
            budget in 0.0f64..1e8,
        ) {
            let trace: Vec<Watts> = samples.iter().map(|&v| Watts::new(v)).collect();
            let r = optimal_peak_cap(
                &trace, Seconds::new(60.0), Joules::new(budget), Watts::new(100.0)
            ).unwrap();
            let peak = samples.iter().cloned().fold(f64::MIN, f64::max);
            let floor = samples.iter().cloned().fold(f64::MAX, f64::min);
            prop_assert!(r.cap.value() <= peak + 1e-6);
            prop_assert!(r.cap.value() >= floor - 1e-6);
        }

        #[test]
        fn bigger_budget_never_raises_the_cap(
            samples in collection::vec(50.0f64..500.0, 10..100),
            b1 in 0.0f64..1e7,
        ) {
            let trace: Vec<Watts> = samples.iter().map(|&v| Watts::new(v)).collect();
            let dt = Seconds::new(60.0);
            let small = optimal_peak_cap(&trace, dt, Joules::new(b1), Watts::new(100.0)).unwrap();
            let large = optimal_peak_cap(&trace, dt, Joules::new(b1 * 2.0), Watts::new(100.0)).unwrap();
            prop_assert!(large.cap.value() <= small.cap.value() + 1e-6);
        }
    }
}
