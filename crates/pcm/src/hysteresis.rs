//! Melt/freeze hysteresis (supercooling).
//!
//! Real paraffins do not freeze where they melt: nucleation needs a few
//! kelvin of supercooling, so the freezing transition sits below the
//! melting one. The paper's first-order model ignores this; this extension
//! module quantifies how much the asymmetry erodes thermal time shifting —
//! a supercooled wax refreezes later and slower overnight, shrinking the
//! energy available for the next day's peak.

use crate::enthalpy::EnthalpyCurve;
use crate::material::PcmMaterial;
use tts_units::{Celsius, Fraction, Grams, Joules, JoulesPerGram, Seconds, Watts, WattsPerKelvin};

/// A PCM state with distinct melting and freezing curves.
///
/// While *absorbing* (air hotter than the wax) the wax follows the melting
/// curve; while *releasing* it follows a freezing curve shifted
/// `supercooling_k` lower. The enthalpy state is shared, so energy is
/// conserved across direction changes; only the temperature at which the
/// latent plateau sits differs.
///
/// ```
/// use tts_pcm::hysteresis::HystereticPcmState;
/// use tts_pcm::PcmMaterial;
/// use tts_units::{Celsius, Grams, Seconds, WattsPerKelvin};
///
/// let wax = PcmMaterial::validation_wax(); // melts at 39 °C
/// let mut s = HystereticPcmState::new(&wax, Grams::new(500.0), Celsius::new(25.0), 4.0);
///
/// // 42 °C air melts it (above the 39 °C melting point) ...
/// for _ in 0..2000 {
///     s.step(Celsius::new(42.0), WattsPerKelvin::new(5.0), Seconds::new(60.0));
/// }
/// assert!(s.melt_fraction().value() > 0.9);
///
/// // ... but 37.5 °C air cannot refreeze it: the freezing branch is fully
/// // below 37 °C (35 °C center, ±2 °C mushy band).
/// for _ in 0..2000 {
///     s.step(Celsius::new(37.5), WattsPerKelvin::new(5.0), Seconds::new(60.0));
/// }
/// assert!(s.melt_fraction().value() > 0.9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HystereticPcmState {
    melt_curve: EnthalpyCurve,
    freeze_curve: EnthalpyCurve,
    /// Shared specific enthalpy, J/g, referenced to the *melting* curve's
    /// scale.
    enthalpy: JoulesPerGram,
    enthalpy_ref: JoulesPerGram,
    mass: Grams,
    supercooling_k: f64,
}

tts_units::derive_json! { struct HystereticPcmState { melt_curve, freeze_curve, enthalpy, enthalpy_ref, mass, supercooling_k } }

impl HystereticPcmState {
    /// A mass of `material` at `initial` with `supercooling_k` kelvin of
    /// melt/freeze asymmetry (typical paraffins: 2–5 K).
    ///
    /// # Panics
    /// Panics on non-positive mass or negative supercooling.
    pub fn new(material: &PcmMaterial, mass: Grams, initial: Celsius, supercooling_k: f64) -> Self {
        assert!(mass.value() > 0.0, "PCM mass must be positive");
        assert!(supercooling_k >= 0.0, "supercooling cannot be negative");
        let melt_curve = EnthalpyCurve::for_material(material);
        let freeze_material = PcmMaterial::custom(
            format!("{} (freezing branch)", material.name()),
            material.class(),
            Celsius::new(material.melting_point().value() - supercooling_k),
            material.melting_range_k(),
            material.heat_of_fusion(),
            material.density(),
            material.specific_heat_solid(),
            material.specific_heat_liquid(),
            material.stability(),
            material.electrically_conductive(),
            material.corrosive(),
            material.bulk_price(),
        );
        let freeze_curve = EnthalpyCurve::for_material(&freeze_material);
        let h0 = melt_curve.enthalpy_at(initial);
        Self {
            melt_curve,
            freeze_curve,
            enthalpy: h0,
            enthalpy_ref: h0,
            mass,
            supercooling_k,
        }
    }

    /// The curve governing the current exchange direction against air at
    /// `air_temp`.
    fn active_curve(&self, air_temp: Celsius) -> &EnthalpyCurve {
        // Direction is set by where the state sits relative to the air:
        // hotter air → absorbing → melting branch; cooler air → releasing
        // → freezing branch.
        let t_melt_branch = self.melt_curve.temperature_at(self.enthalpy);
        if air_temp >= t_melt_branch {
            &self.melt_curve
        } else {
            &self.freeze_curve
        }
    }

    /// Advances the wax against air at `air_temp` through `coupling`,
    /// returning heat absorbed (positive) or released (negative).
    pub fn step(&mut self, air_temp: Celsius, coupling: WattsPerKelvin, dt: Seconds) -> Watts {
        if dt.value() <= 0.0 || coupling.value() <= 0.0 {
            return Watts::ZERO;
        }
        let curve = self.active_curve(air_temp).clone();
        let t_wax = curve.temperature_at(self.enthalpy);
        let cp_eff = curve.effective_heat_capacity(t_wax);
        let c_total = cp_eff * self.mass.value();
        let tau = c_total / coupling.value();
        let alpha = 1.0 - (-dt.value() / tau).exp();
        let mut delta_h = cp_eff * (air_temp - t_wax).value() * alpha;
        // Clamp at equilibrium with the air on the active branch.
        let h_eq = curve.enthalpy_at(air_temp).value();
        let h_new = self.enthalpy.value() + delta_h;
        let h_clamped = if delta_h >= 0.0 {
            h_new.min(h_eq.max(self.enthalpy.value()))
        } else {
            h_new.max(h_eq.min(self.enthalpy.value()))
        };
        delta_h = h_clamped - self.enthalpy.value();
        self.enthalpy = JoulesPerGram::new(h_clamped);
        Watts::new(delta_h * self.mass.value() / dt.value())
    }

    /// Melt fraction (on the melting curve's scale).
    pub fn melt_fraction(&self) -> Fraction {
        self.melt_curve.melt_fraction_at_enthalpy(self.enthalpy)
    }

    /// Energy stored relative to the initial state.
    pub fn stored_energy(&self) -> Joules {
        Joules::new((self.enthalpy.value() - self.enthalpy_ref.value()) * self.mass.value())
    }

    /// The supercooling offset, K.
    pub fn supercooling_k(&self) -> f64 {
        self.supercooling_k
    }

    /// Wax temperature on the currently governing branch for the given
    /// air temperature.
    pub fn temperature_against(&self, air_temp: Celsius) -> Celsius {
        self.active_curve(air_temp).temperature_at(self.enthalpy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tts_rng::prop::prelude::*;

    fn state(supercooling: f64) -> HystereticPcmState {
        HystereticPcmState::new(
            &PcmMaterial::validation_wax(),
            Grams::new(960.0),
            Celsius::new(25.0),
            supercooling,
        )
    }

    fn run(s: &mut HystereticPcmState, air: f64, minutes: usize) -> f64 {
        let mut q = 0.0;
        for _ in 0..minutes {
            q += s
                .step(
                    Celsius::new(air),
                    WattsPerKelvin::new(5.0),
                    Seconds::new(60.0),
                )
                .value()
                * 60.0;
        }
        q
    }

    #[test]
    fn zero_supercooling_matches_plain_state() {
        let mut hyst = state(0.0);
        let mut plain = crate::PcmState::new(
            &PcmMaterial::validation_wax(),
            Grams::new(960.0),
            Celsius::new(25.0),
        );
        for air in [45.0, 50.0, 30.0, 25.0, 55.0] {
            for _ in 0..200 {
                hyst.step(
                    Celsius::new(air),
                    WattsPerKelvin::new(5.0),
                    Seconds::new(60.0),
                );
                plain.step(
                    Celsius::new(air),
                    WattsPerKelvin::new(5.0),
                    Seconds::new(60.0),
                );
            }
            assert!(
                (hyst.melt_fraction().value() - plain.melt_fraction().value()).abs() < 1e-6,
                "at air {air}: {} vs {}",
                hyst.melt_fraction().value(),
                plain.melt_fraction().value()
            );
        }
    }

    #[test]
    fn supercooled_wax_refreezes_later() {
        // Melt both fully, then expose to 37.5 °C air — above the
        // supercooled wax's entire freezing band (33–37 °C at 4 K of
        // supercooling) but inside the sharp wax's (37–41 °C).
        let mut sharp = state(0.0);
        let mut super4 = state(4.0);
        run(&mut sharp, 55.0, 2000);
        run(&mut super4, 55.0, 2000);
        assert!(sharp.melt_fraction().value() > 0.99);
        assert!(super4.melt_fraction().value() > 0.99);

        run(&mut sharp, 37.5, 2000);
        run(&mut super4, 37.5, 2000);
        assert!(
            sharp.melt_fraction().value() < 0.2,
            "sharp wax mostly refreezes at 37.5 °C: {}",
            sharp.melt_fraction().value()
        );
        assert!(
            super4.melt_fraction().value() > 0.9,
            "supercooled wax must stay molten at 37.5 °C: {}",
            super4.melt_fraction().value()
        );
    }

    #[test]
    fn deep_cold_refreezes_even_supercooled_wax() {
        let mut s = state(4.0);
        run(&mut s, 55.0, 2000);
        run(&mut s, 25.0, 4000);
        assert!(s.melt_fraction().value() < 0.05);
    }

    #[test]
    fn melting_behaviour_is_unchanged_by_supercooling() {
        let mut a = state(0.0);
        let mut b = state(5.0);
        let qa = run(&mut a, 50.0, 500);
        let qb = run(&mut b, 50.0, 500);
        assert!((qa - qb).abs() < 1e-6 * qa.abs().max(1.0));
    }

    proptest! {
        #[test]
        fn energy_balance_holds_across_direction_changes(
            temps in collection::vec(20.0f64..60.0, 2..40),
            supercooling in 0.0f64..6.0,
        ) {
            let mut s = state(supercooling);
            let mut net = 0.0;
            for t in &temps {
                let q = s.step(Celsius::new(*t), WattsPerKelvin::new(4.0), Seconds::new(300.0));
                net += q.value() * 300.0;
            }
            let stored = s.stored_energy().value();
            prop_assert!(
                (net - stored).abs() < 1e-6 * (1.0 + net.abs()),
                "net {net} vs stored {stored}"
            );
        }

        #[test]
        fn melt_fraction_in_unit_interval(
            temps in collection::vec(0.0f64..90.0, 1..30),
        ) {
            let mut s = state(3.0);
            for t in &temps {
                s.step(Celsius::new(*t), WattsPerKelvin::new(8.0), Seconds::new(600.0));
                let f = s.melt_fraction().value();
                prop_assert!((0.0..=1.0).contains(&f));
            }
        }
    }
}
