//! Invertible enthalpy–temperature curves (effective heat capacity method).
//!
//! The transient behaviour of a PCM is captured by its specific enthalpy
//! h(T): sensible heat below the solidus, latent + sensible heat across the
//! mushy region, sensible heat above the liquidus. Storing *enthalpy* as the
//! state variable (rather than temperature) makes melt/freeze integration
//! unconditionally energy-conserving; temperature and melt fraction are
//! recovered through the inverse map.

use crate::material::PcmMaterial;
use tts_units::{Celsius, Fraction, JoulesPerGram};

/// A piecewise-linear specific enthalpy curve for one PCM.
///
/// Enthalpy is measured in J/g relative to a reference temperature well
/// below any operating point (0 °C), so all values in the operating range
/// are positive.
///
/// ```
/// use tts_pcm::{EnthalpyCurve, PcmMaterial};
/// use tts_units::Celsius;
///
/// let wax = PcmMaterial::commercial_paraffin(Celsius::new(39.0));
/// let curve = EnthalpyCurve::for_material(&wax);
///
/// // Fully solid below the solidus, fully molten above the liquidus.
/// assert_eq!(curve.melt_fraction_at(Celsius::new(30.0)).value(), 0.0);
/// assert_eq!(curve.melt_fraction_at(Celsius::new(45.0)).value(), 1.0);
///
/// // The inverse map recovers the temperature.
/// let h = curve.enthalpy_at(Celsius::new(36.0));
/// assert!((curve.temperature_at(h).value() - 36.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnthalpyCurve {
    /// Reference temperature for h = 0 (°C).
    t_ref: f64,
    /// Solidus temperature (°C).
    t_sol: f64,
    /// Liquidus temperature (°C).
    t_liq: f64,
    /// Solid specific heat (J/(g·K)).
    cp_s: f64,
    /// Liquid specific heat (J/(g·K)).
    cp_l: f64,
    /// Latent heat of fusion (J/g).
    latent: f64,
    /// Enthalpy at the solidus (J/g).
    h_sol: f64,
    /// Enthalpy at the liquidus (J/g).
    h_liq: f64,
}

tts_units::derive_json! { struct EnthalpyCurve { t_ref, t_sol, t_liq, cp_s, cp_l, latent, h_sol, h_liq } }

impl EnthalpyCurve {
    /// Reference temperature used for `h = 0`.
    pub const REFERENCE_C: f64 = 0.0;

    /// Builds the curve for a material.
    pub fn for_material(material: &PcmMaterial) -> Self {
        let t_sol = material.solidus().value();
        let t_liq = material.liquidus().value();
        let cp_s = material.specific_heat_solid().value();
        let cp_l = material.specific_heat_liquid().value();
        let latent = material.heat_of_fusion().value();
        let h_sol = cp_s * (t_sol - Self::REFERENCE_C);
        // Across the mushy region the material absorbs latent heat plus the
        // sensible heat of the average phase mixture.
        let cp_avg = 0.5 * (cp_s + cp_l);
        let h_liq = h_sol + latent + cp_avg * (t_liq - t_sol);
        Self {
            t_ref: Self::REFERENCE_C,
            t_sol,
            t_liq,
            cp_s,
            cp_l,
            latent,
            h_sol,
            h_liq,
        }
    }

    /// Specific enthalpy at a temperature, J/g relative to 0 °C.
    pub fn enthalpy_at(&self, t: Celsius) -> JoulesPerGram {
        let t = t.value();
        let h = if t <= self.t_sol {
            self.cp_s * (t - self.t_ref)
        } else if t >= self.t_liq {
            self.h_liq + self.cp_l * (t - self.t_liq)
        } else {
            let frac = (t - self.t_sol) / (self.t_liq - self.t_sol);
            self.h_sol + frac * (self.h_liq - self.h_sol)
        };
        JoulesPerGram::new(h)
    }

    /// Temperature at a specific enthalpy — the inverse of
    /// [`Self::enthalpy_at`].
    pub fn temperature_at(&self, h: JoulesPerGram) -> Celsius {
        let h = h.value();
        let t = if h <= self.h_sol {
            self.t_ref + h / self.cp_s
        } else if h >= self.h_liq {
            self.t_liq + (h - self.h_liq) / self.cp_l
        } else {
            let frac = (h - self.h_sol) / (self.h_liq - self.h_sol);
            self.t_sol + frac * (self.t_liq - self.t_sol)
        };
        Celsius::new(t)
    }

    /// Melt fraction at a temperature (0 = solid, 1 = liquid).
    pub fn melt_fraction_at(&self, t: Celsius) -> Fraction {
        self.melt_fraction_at_enthalpy(self.enthalpy_at(t))
    }

    /// Melt fraction at a specific enthalpy.
    pub fn melt_fraction_at_enthalpy(&self, h: JoulesPerGram) -> Fraction {
        Fraction::new((h.value() - self.h_sol) / (self.h_liq - self.h_sol))
    }

    /// Effective specific heat dh/dT at a temperature, J/(g·K).
    ///
    /// Inside the mushy region this is large (latent heat spread over the
    /// melting range) — the "effective heat capacity" that lets a PCM soak
    /// up heat with little temperature rise.
    pub fn effective_heat_capacity(&self, t: Celsius) -> f64 {
        let t = t.value();
        if t < self.t_sol {
            self.cp_s
        } else if t > self.t_liq {
            self.cp_l
        } else {
            (self.h_liq - self.h_sol) / (self.t_liq - self.t_sol)
        }
    }

    /// Enthalpy at the solidus (J/g).
    pub fn solidus_enthalpy(&self) -> JoulesPerGram {
        JoulesPerGram::new(self.h_sol)
    }

    /// Enthalpy at the liquidus (J/g).
    pub fn liquidus_enthalpy(&self) -> JoulesPerGram {
        JoulesPerGram::new(self.h_liq)
    }

    /// The latent storage available across the transition, J/g — latent heat
    /// plus the mushy-region sensible component.
    pub fn transition_storage(&self) -> JoulesPerGram {
        JoulesPerGram::new(self.h_liq - self.h_sol)
    }

    /// Solidus temperature.
    pub fn solidus(&self) -> Celsius {
        Celsius::new(self.t_sol)
    }

    /// Liquidus temperature.
    pub fn liquidus(&self) -> Celsius {
        Celsius::new(self.t_liq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::material::PcmMaterial;
    use tts_rng::prop::prelude::*;

    fn wax() -> EnthalpyCurve {
        EnthalpyCurve::for_material(&PcmMaterial::validation_wax())
    }

    #[test]
    fn enthalpy_is_monotone_across_regions() {
        let c = wax();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=200 {
            let t = Celsius::new(10.0 + i as f64 * 0.3);
            let h = c.enthalpy_at(t).value();
            assert!(h > prev, "h(T) must be strictly increasing at {t}");
            prev = h;
        }
    }

    #[test]
    fn transition_storage_exceeds_latent_heat() {
        let m = PcmMaterial::validation_wax();
        let c = EnthalpyCurve::for_material(&m);
        assert!(c.transition_storage().value() >= m.heat_of_fusion().value());
        // ... but not by much for a narrow melting range.
        assert!(c.transition_storage().value() < m.heat_of_fusion().value() * 1.1);
    }

    #[test]
    fn melt_fraction_boundaries() {
        let c = wax();
        assert_eq!(c.melt_fraction_at(c.solidus()).value(), 0.0);
        assert_eq!(c.melt_fraction_at(c.liquidus()).value(), 1.0);
        let mid = Celsius::new((c.solidus().value() + c.liquidus().value()) / 2.0);
        assert!((c.melt_fraction_at(mid).value() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn effective_heat_capacity_spikes_in_mushy_region() {
        let c = wax();
        let m = PcmMaterial::validation_wax();
        let inside = c.effective_heat_capacity(m.melting_point());
        let below = c.effective_heat_capacity(Celsius::new(20.0));
        let above = c.effective_heat_capacity(Celsius::new(60.0));
        assert!(inside > 10.0 * below);
        assert!(inside > 10.0 * above);
    }

    #[test]
    fn eicosane_narrow_range_has_higher_effective_cp_than_blend() {
        let pure = EnthalpyCurve::for_material(&PcmMaterial::eicosane());
        let blend =
            EnthalpyCurve::for_material(&PcmMaterial::commercial_paraffin(Celsius::new(39.0)));
        let cp_pure = pure.effective_heat_capacity(PcmMaterial::eicosane().melting_point());
        let cp_blend = blend.effective_heat_capacity(Celsius::new(39.0));
        assert!(cp_pure > cp_blend);
    }

    proptest! {
        #[test]
        fn temperature_enthalpy_round_trip(t in -10.0f64..120.0) {
            let c = wax();
            let t0 = Celsius::new(t);
            let h = c.enthalpy_at(t0);
            let t1 = c.temperature_at(h);
            prop_assert!((t1.value() - t).abs() < 1e-9);
        }

        #[test]
        fn enthalpy_temperature_round_trip(h in 0.0f64..600.0) {
            let c = wax();
            let h0 = JoulesPerGram::new(h);
            let t = c.temperature_at(h0);
            let h1 = c.enthalpy_at(t);
            prop_assert!((h1.value() - h).abs() < 1e-9);
        }

        #[test]
        fn melt_fraction_is_monotone(a in 0.0f64..90.0, b in 0.0f64..90.0) {
            let c = wax();
            let fa = c.melt_fraction_at(Celsius::new(a)).value();
            let fb = c.melt_fraction_at(Celsius::new(b)).value();
            if a <= b {
                prop_assert!(fa <= fb + 1e-12);
            }
        }

        #[test]
        fn curve_is_consistent_for_all_library_materials(idx in 0usize..5) {
            let m = &PcmMaterial::table1()[idx];
            let c = EnthalpyCurve::for_material(m);
            let h_mid = c.enthalpy_at(m.melting_point());
            prop_assert!((c.melt_fraction_at_enthalpy(h_mid).value() - 0.5).abs() < 1e-9);
        }
    }
}
