//! Transient melt/freeze state of a deployed quantity of PCM.
//!
//! The state variable is the wax's *specific enthalpy* — not its temperature
//! — so the latent plateau is handled without special cases and the
//! integration conserves energy exactly: every joule the state absorbs from
//! (or releases to) the air is accounted for in `stored_energy`.

use crate::enthalpy::EnthalpyCurve;
use crate::material::PcmMaterial;
use tts_units::{Celsius, Fraction, Grams, Joules, JoulesPerGram, Seconds, Watts, WattsPerKelvin};

/// The transient thermal state of a mass of PCM.
///
/// Coupled to an air temperature through a lumped conductance (film + wall +
/// wax bulk, see [`crate::container::WaxContainer::air_to_wax_conductance`]),
/// the wax exchanges heat `q = G · (T_air − T_wax)` and integrates it into
/// its enthalpy.
///
/// ```
/// use tts_pcm::{PcmMaterial, PcmState};
/// use tts_units::{Celsius, Grams, Seconds, WattsPerKelvin};
///
/// let wax = PcmMaterial::validation_wax();
/// let mut s = PcmState::new(&wax, Grams::new(960.0), Celsius::new(25.0));
/// let g = WattsPerKelvin::new(4.0);
///
/// // A hot afternoon melts the wax ...
/// for _ in 0..240 {
///     s.step(Celsius::new(55.0), g, Seconds::new(60.0));
/// }
/// assert!(s.melt_fraction().value() > 0.5);
///
/// // ... and the cool night refreezes it, releasing the stored heat.
/// for _ in 0..480 {
///     s.step(Celsius::new(25.0), g, Seconds::new(60.0));
/// }
/// assert!(s.melt_fraction().value() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PcmState {
    curve: EnthalpyCurve,
    mass: Grams,
    /// Specific enthalpy, J/g (the state variable).
    enthalpy: JoulesPerGram,
    /// Enthalpy corresponding to the initial temperature, used as the zero
    /// point for `stored_energy`.
    enthalpy_ref: JoulesPerGram,
}

tts_units::derive_json! { struct PcmState { curve, mass, enthalpy, enthalpy_ref } }

impl PcmState {
    /// A mass of `material` equilibrated at `initial_temperature`.
    ///
    /// # Panics
    /// Panics if `mass` is not positive.
    pub fn new(material: &PcmMaterial, mass: Grams, initial_temperature: Celsius) -> Self {
        assert!(mass.value() > 0.0, "PCM mass must be positive");
        let curve = EnthalpyCurve::for_material(material);
        let h0 = curve.enthalpy_at(initial_temperature);
        Self {
            curve,
            mass,
            enthalpy: h0,
            enthalpy_ref: h0,
        }
    }

    /// Advances the wax by `dt` against air at `air_temp` through the lumped
    /// conductance `coupling`, returning the heat flow *absorbed by the wax*
    /// (positive while melting, negative while freezing/releasing).
    ///
    /// Uses an analytic exponential update within the step: over a step the
    /// wax temperature is approximately constant in the mushy region (large
    /// effective heat capacity) and relaxes exponentially outside it, so we
    /// integrate `dh/dt = G (T_air − T(h)) / m` with a semi-implicit
    /// exponential integrator that cannot overshoot the air temperature
    /// regardless of step size.
    pub fn step(&mut self, air_temp: Celsius, coupling: WattsPerKelvin, dt: Seconds) -> Watts {
        if dt.value() <= 0.0 || coupling.value() <= 0.0 {
            return Watts::ZERO;
        }
        let t_wax = self.curve.temperature_at(self.enthalpy);
        let cp_eff = self.curve.effective_heat_capacity(t_wax); // J/(g·K)
        let c_total = cp_eff * self.mass.value(); // J/K
        let tau = c_total / coupling.value(); // s
                                              // Exponential relaxation toward the air temperature over this step.
        let alpha = 1.0 - (-dt.value() / tau).exp();
        let dt_k = (air_temp - t_wax).value() * alpha;
        let mut delta_h = cp_eff * dt_k; // J/g absorbed this step
                                         // The relaxation's fixed point is thermal equilibrium with the air;
                                         // when a step crosses a phase boundary the start-of-step effective
                                         // heat capacity no longer applies, so clamp at the equilibrium
                                         // enthalpy to keep the update monotone and overshoot-free.
        let h_eq = self.curve.enthalpy_at(air_temp).value();
        let h_new = self.enthalpy.value() + delta_h;
        let h_clamped = if delta_h >= 0.0 {
            h_new.min(h_eq.max(self.enthalpy.value()))
        } else {
            h_new.max(h_eq.min(self.enthalpy.value()))
        };
        delta_h = h_clamped - self.enthalpy.value();
        self.enthalpy = JoulesPerGram::new(h_clamped);
        Watts::new(delta_h * self.mass.value() / dt.value())
    }

    /// Like [`Self::step`], but limits the *release* rate (heat flowing
    /// from wax to air) to `max_release`.
    ///
    /// Physically: a refreezing wax bank dumps its heat into the air
    /// stream, and the cooling plant must remove it. When the plant has
    /// only `max_release` of headroom, the wax-facing air warms until the
    /// release throttles to match — which this method models by clamping
    /// the step's released energy. Absorption (positive heat into the wax)
    /// is never limited.
    pub fn step_with_release_cap(
        &mut self,
        air_temp: Celsius,
        coupling: WattsPerKelvin,
        dt: Seconds,
        max_release: Watts,
    ) -> Watts {
        let before = self.enthalpy;
        let q = self.step(air_temp, coupling, dt);
        let max_release = max_release.max(Watts::ZERO);
        if q.value() >= -max_release.value() {
            return q;
        }
        // Clamp: roll back to the bounded release.
        let allowed_delta_h = -max_release.value() * dt.value() / self.mass.value();
        self.enthalpy = JoulesPerGram::new(before.value() + allowed_delta_h);
        -max_release
    }

    /// Advances the wax by `dt` under an *active* heat-rate command, as
    /// issued by a scheduler that modulates a bypass valve in front of
    /// the wax bank.
    ///
    /// The valve can only throttle the passive exchange, never reverse
    /// or amplify it: the realized rate is `rate` clamped to the closed
    /// interval between zero (valve shut) and whatever [`Self::step`]
    /// would transfer passively (valve fully open). Returns the heat
    /// actually absorbed by the wax (positive charging, negative
    /// discharging), exactly consistent with the enthalpy update.
    pub fn command_rate(
        &mut self,
        rate: Watts,
        air_temp: Celsius,
        coupling: WattsPerKelvin,
        dt: Seconds,
    ) -> Watts {
        let before = self.enthalpy;
        let passive = self.step(air_temp, coupling, dt).value();
        let actual = rate.value().clamp(passive.min(0.0), passive.max(0.0));
        if dt.value() > 0.0 {
            let delta_h = actual * dt.value() / self.mass.value();
            self.enthalpy = JoulesPerGram::new(before.value() + delta_h);
        }
        Watts::new(actual)
    }

    /// Current wax temperature.
    pub fn temperature(&self) -> Celsius {
        self.curve.temperature_at(self.enthalpy)
    }

    /// Current melt fraction.
    pub fn melt_fraction(&self) -> Fraction {
        self.curve.melt_fraction_at_enthalpy(self.enthalpy)
    }

    /// Energy stored relative to the initial state (J); grows while the wax
    /// heats/melts, returns toward zero as it refreezes.
    pub fn stored_energy(&self) -> Joules {
        Joules::new((self.enthalpy.value() - self.enthalpy_ref.value()) * self.mass.value())
    }

    /// Latent storage still available before the wax is fully molten, J.
    pub fn remaining_latent_capacity(&self) -> Joules {
        let remaining = (self.curve.liquidus_enthalpy().value() - self.enthalpy.value()).max(0.0);
        Joules::new(remaining * self.mass.value())
    }

    /// Total latent capacity between solidus and liquidus, J.
    pub fn latent_capacity(&self) -> Joules {
        Joules::new(self.curve.transition_storage().value() * self.mass.value())
    }

    /// The wax mass.
    pub fn mass(&self) -> Grams {
        self.mass
    }

    /// The underlying enthalpy curve.
    pub fn curve(&self) -> &EnthalpyCurve {
        &self.curve
    }

    /// `true` when the wax can currently absorb latent heat (not yet fully
    /// molten).
    pub fn can_absorb(&self) -> bool {
        self.enthalpy < self.curve.liquidus_enthalpy()
    }

    /// Maximum instantaneous heat the wax can absorb from air at `air_temp`
    /// through `coupling` — zero once fully molten and at air temperature.
    pub fn max_absorption_rate(&self, air_temp: Celsius, coupling: WattsPerKelvin) -> Watts {
        let dt = (air_temp - self.temperature()).value().max(0.0);
        Watts::new(coupling.value() * dt)
    }

    /// Resets the wax to thermal equilibrium at `temperature`.
    pub fn reset_to(&mut self, temperature: Celsius) {
        self.enthalpy = self.curve.enthalpy_at(temperature);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tts_rng::prop::prelude::*;

    fn state(t0: f64) -> PcmState {
        PcmState::new(
            &PcmMaterial::validation_wax(),
            Grams::new(960.0),
            Celsius::new(t0),
        )
    }

    #[test]
    fn melts_under_hot_air_and_absorbs_heat() {
        let mut s = state(25.0);
        let g = WattsPerKelvin::new(5.0);
        let mut absorbed = 0.0;
        for _ in 0..1000 {
            let q = s.step(Celsius::new(55.0), g, Seconds::new(60.0));
            absorbed += q.value() * 60.0;
            assert!(q.value() >= -1e-9, "heating air cannot extract heat");
        }
        assert!(s.melt_fraction().value() > 0.99, "{}", s.melt_fraction());
        // Energy audit: absorbed heat equals stored energy.
        assert!(
            (absorbed - s.stored_energy().value()).abs() < 1e-6 * absorbed.abs().max(1.0),
            "energy balance violated: {absorbed} vs {}",
            s.stored_energy().value()
        );
    }

    #[test]
    fn refreezes_under_cool_air_and_releases_heat() {
        let mut s = state(55.0); // start molten
        assert_eq!(s.melt_fraction(), Fraction::ONE);
        let g = WattsPerKelvin::new(5.0);
        let mut released = 0.0;
        for _ in 0..2000 {
            let q = s.step(Celsius::new(25.0), g, Seconds::new(60.0));
            released -= q.value() * 60.0;
            assert!(q.value() <= 1e-9, "cooling air cannot add heat");
        }
        assert!(s.melt_fraction().value() < 0.01);
        assert!(released > 0.0);
    }

    #[test]
    fn temperature_plateaus_at_melting_point_while_melting() {
        let mut s = state(25.0);
        let g = WattsPerKelvin::new(5.0);
        // Step until mid-melt.
        while s.melt_fraction().value() < 0.5 {
            s.step(Celsius::new(55.0), g, Seconds::new(30.0));
        }
        let m = PcmMaterial::validation_wax();
        let t = s.temperature().value();
        assert!(
            t >= m.solidus().value() && t <= m.liquidus().value(),
            "mid-melt temperature {t} outside the mushy band"
        );
    }

    #[test]
    fn step_never_overshoots_air_temperature() {
        // Huge steps against a fixed air temp: the exponential integrator
        // must converge to the air temperature without oscillating past it.
        let mut s = state(25.0);
        let g = WattsPerKelvin::new(50.0);
        for _ in 0..100 {
            s.step(Celsius::new(48.0), g, Seconds::new(7200.0));
            assert!(s.temperature().value() <= 48.0 + 1e-9);
        }
        assert!((s.temperature().value() - 48.0).abs() < 0.1);
    }

    #[test]
    fn latent_capacity_matches_hand_computation() {
        // 960 g × ~206 J/g (200 latent + mushy sensible) ≈ 198 kJ.
        let s = state(25.0);
        let expected = s.curve().transition_storage().value() * 960.0;
        assert!((s.latent_capacity().value() - expected).abs() < 1e-9);
        assert!(s.latent_capacity().value() > 960.0 * 200.0);
    }

    #[test]
    fn remaining_capacity_decreases_monotonically_while_melting() {
        let mut s = state(25.0);
        let g = WattsPerKelvin::new(5.0);
        let mut prev = s.remaining_latent_capacity().value();
        for _ in 0..500 {
            s.step(Celsius::new(55.0), g, Seconds::new(60.0));
            let now = s.remaining_latent_capacity().value();
            assert!(now <= prev + 1e-9);
            prev = now;
        }
        assert_eq!(prev, 0.0);
        assert!(!s.can_absorb());
    }

    #[test]
    fn zero_dt_and_zero_coupling_are_noops() {
        let mut s = state(30.0);
        let before = s.clone();
        assert_eq!(
            s.step(Celsius::new(60.0), WattsPerKelvin::new(5.0), Seconds::ZERO),
            Watts::ZERO
        );
        assert_eq!(
            s.step(Celsius::new(60.0), WattsPerKelvin::ZERO, Seconds::new(60.0)),
            Watts::ZERO
        );
        assert_eq!(s, before);
    }

    #[test]
    fn max_absorption_rate_is_zero_when_air_is_cooler() {
        let s = state(45.0);
        let r = s.max_absorption_rate(Celsius::new(30.0), WattsPerKelvin::new(5.0));
        assert_eq!(r, Watts::ZERO);
    }

    #[test]
    fn release_cap_bounds_the_heat_dumped() {
        let mut s = state(55.0); // molten
        let q = s.step_with_release_cap(
            Celsius::new(25.0),
            WattsPerKelvin::new(50.0),
            Seconds::new(600.0),
            Watts::new(10.0),
        );
        assert!(
            (q.value() + 10.0).abs() < 1e-9,
            "release clamped to 10 W, got {q}"
        );
        // Energy accounting holds under the clamp.
        assert!((s.stored_energy().value() + 10.0 * 600.0).abs() < 1e-6);
    }

    #[test]
    fn release_cap_does_not_limit_absorption() {
        let mut s = state(25.0);
        let q = s.step_with_release_cap(
            Celsius::new(55.0),
            WattsPerKelvin::new(5.0),
            Seconds::new(60.0),
            Watts::ZERO,
        );
        assert!(q.value() > 0.0, "absorption must pass through the cap");
    }

    #[test]
    fn gentle_release_is_unaffected_by_a_loose_cap() {
        let mut a = state(55.0);
        let mut b = state(55.0);
        let qa = a.step(
            Celsius::new(50.0),
            WattsPerKelvin::new(1.0),
            Seconds::new(60.0),
        );
        let qb = b.step_with_release_cap(
            Celsius::new(50.0),
            WattsPerKelvin::new(1.0),
            Seconds::new(60.0),
            Watts::new(1e6),
        );
        assert_eq!(qa, qb);
        assert_eq!(a, b);
    }

    #[test]
    fn reset_restores_equilibrium() {
        let mut s = state(25.0);
        s.step(
            Celsius::new(60.0),
            WattsPerKelvin::new(5.0),
            Seconds::new(3600.0),
        );
        s.reset_to(Celsius::new(25.0));
        assert!((s.temperature().value() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn command_rate_throttles_but_never_exceeds_passive_exchange() {
        let g = WattsPerKelvin::new(5.0);
        let dt = Seconds::new(900.0);
        // Hot air: the valve can realize any charge rate up to passive.
        let mut passive = state(30.0);
        let q_open = passive.step(Celsius::new(50.0), g, dt);
        let mut s = state(30.0);
        let q = s.command_rate(Watts::new(10.0), Celsius::new(50.0), g, dt);
        assert!(
            (q.value() - 10.0).abs() < 1e-9,
            "throttled to 10 W, got {q:?}"
        );
        let stored = s.stored_energy().value();
        assert!(
            (stored - 10.0 * 900.0).abs() < 1e-6,
            "enthalpy consistent with realized rate, stored {stored}"
        );
        // Asking for more than passive clamps at passive.
        let mut s = state(30.0);
        let q = s.command_rate(Watts::new(1e9), Celsius::new(50.0), g, dt);
        assert!((q.value() - q_open.value()).abs() < 1e-9);
        // Asking to charge from cold air does nothing (valve cannot
        // reverse the gradient), and the wax is untouched.
        let mut s = state(40.0);
        let q = s.command_rate(Watts::new(50.0), Celsius::new(20.0), g, dt);
        assert_eq!(q.value(), 0.0);
        assert_eq!(s.stored_energy().value(), 0.0);
    }

    #[test]
    fn command_rate_discharge_is_bounded_by_passive_release() {
        let g = WattsPerKelvin::new(5.0);
        let dt = Seconds::new(900.0);
        let mut molten = state(25.0);
        for _ in 0..200 {
            molten.step(Celsius::new(60.0), g, Seconds::new(600.0));
        }
        let mut passive = molten.clone();
        let q_open = passive.step(Celsius::new(20.0), g, dt);
        assert!(q_open.value() < 0.0, "cold air must pull heat out");
        // A gentle discharge command is realized exactly.
        let want = q_open.value() / 2.0;
        let mut s = molten.clone();
        let q = s.command_rate(Watts::new(want), Celsius::new(20.0), g, dt);
        assert!((q.value() - want).abs() < 1e-9);
        // An aggressive one clamps at the passive rate.
        let mut s = molten.clone();
        let q = s.command_rate(Watts::new(-1e9), Celsius::new(20.0), g, dt);
        assert!((q.value() - q_open.value()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "mass must be positive")]
    fn zero_mass_panics() {
        PcmState::new(
            &PcmMaterial::validation_wax(),
            Grams::ZERO,
            Celsius::new(25.0),
        );
    }

    proptest! {
        #[test]
        fn energy_balance_holds_for_arbitrary_air_traces(
            temps in collection::vec(15.0f64..70.0, 1..60),
            dt in 10.0f64..600.0,
        ) {
            let mut s = state(25.0);
            let g = WattsPerKelvin::new(4.0);
            let mut net = 0.0;
            for t in &temps {
                let q = s.step(Celsius::new(*t), g, Seconds::new(dt));
                net += q.value() * dt;
            }
            let stored = s.stored_energy().value();
            prop_assert!(
                (net - stored).abs() < 1e-6 * (1.0 + net.abs()),
                "net absorbed {net} != stored {stored}"
            );
        }

        #[test]
        fn melt_fraction_stays_in_unit_interval(
            temps in collection::vec(-10.0f64..100.0, 1..40),
        ) {
            let mut s = state(25.0);
            let g = WattsPerKelvin::new(10.0);
            for t in &temps {
                s.step(Celsius::new(*t), g, Seconds::new(300.0));
                let f = s.melt_fraction().value();
                prop_assert!((0.0..=1.0).contains(&f));
            }
        }
    }
}
