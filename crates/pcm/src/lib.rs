//! Phase change material (PCM) models for thermal time shifting.
//!
//! This crate implements everything the paper needs to know about the wax:
//!
//! * [`material`] — a library of candidate PCMs reproducing **Table 1** of
//!   the paper (salt hydrates, metal alloys, fatty acids, n-paraffins,
//!   commercial paraffins) plus the specific waxes discussed in §2.1
//!   (eicosane at $75,000/ton, commercial-grade paraffin at $1,000–2,000/ton,
//!   the 39 °C retail wax measured in §3).
//! * [`enthalpy`] — invertible enthalpy–temperature curves using the
//!   effective-heat-capacity method, with a configurable melting range so
//!   both molecularly pure n-paraffins (sharp transition) and commercial
//!   blends (broad transition) are representable.
//! * [`container`] — sealed aluminum wax enclosures: geometry, expansion
//!   headspace, surface area exposed to the air stream, wall conductance.
//! * [`state`] — the transient melt/freeze state machine used by both the
//!   server-level thermal network and the datacenter simulator.
//! * [`selection`] — the melting-threshold optimizer: given a diurnal power
//!   trace and a wax energy budget, find the peak-shaving cap (§5.1: *"the
//!   best wax typically begins to melt when a server exceeds 75 % load"*).
//! * [`cost`] — wax + container CapEx (the paper's `WaxCapEx`, < 0.1 % of
//!   `ServerCapEx`).
//!
//! # Quick example
//!
//! ```
//! use tts_pcm::material::PcmMaterial;
//! use tts_pcm::state::PcmState;
//! use tts_units::{Celsius, Grams, Seconds, WattsPerKelvin};
//!
//! // A kilogram of commercial paraffin melting at 39 °C, coupled to the
//! // server's exhaust air through a 5 W/K conductance.
//! let wax = PcmMaterial::commercial_paraffin(Celsius::new(39.0));
//! let mut state = PcmState::new(&wax, Grams::new(1000.0), Celsius::new(25.0));
//! let coupling = WattsPerKelvin::new(5.0);
//!
//! // Hot air melts the wax; the wax absorbs heat.
//! let q = state.step(Celsius::new(50.0), coupling, Seconds::new(60.0));
//! assert!(q.value() > 0.0);
//! assert!(state.melt_fraction().value() >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blend;
pub mod container;
pub mod cost;
pub mod degradation;
pub mod enthalpy;
pub mod hysteresis;
pub mod material;
pub mod selection;
pub mod state;

pub use blend::BlendState;
pub use container::{ContainerBank, WaxContainer};
pub use degradation::DegradationModel;
pub use enthalpy::EnthalpyCurve;
pub use hysteresis::HystereticPcmState;
pub use material::{PcmClass, PcmMaterial, Stability};
pub use selection::{optimal_peak_cap, PeakCapResult};
pub use state::PcmState;
