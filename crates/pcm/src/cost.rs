//! Wax capital expenditure (the paper's `WaxCapEx` Table 2 row).
//!
//! Table 2 amortizes wax CapEx at $0.06–0.10 per server per month — "almost
//! negligible, representing less than 0.1 % of the ServerCapEx".

use crate::container::ContainerBank;
use crate::material::PcmMaterial;
use tts_units::Dollars;

/// Estimated cost of one sealed aluminum container (material + fabrication),
/// at small-sheet aluminum prices.
pub const CONTAINER_COST_EACH: Dollars = Dollars::new(1.50);

/// Amortization period used in Table 2's per-month figures: the 4-year
/// server lifespan (§5.1).
pub const SERVER_LIFETIME_MONTHS: f64 = 48.0;

/// One server's wax bill of materials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaxCapEx {
    /// Bulk wax cost.
    pub wax: Dollars,
    /// Container fabrication cost.
    pub containers: Dollars,
}

tts_units::derive_json! { struct WaxCapEx { wax, containers } }

impl WaxCapEx {
    /// Prices a container bank filled with the given material.
    pub fn price(bank: &ContainerBank, material: &PcmMaterial) -> Self {
        let mass = bank.total_wax_mass(material).kilograms();
        Self {
            wax: material.bulk_price().cost_of(mass),
            containers: CONTAINER_COST_EACH * bank.count() as f64,
        }
    }

    /// Total up-front cost.
    pub fn total(&self) -> Dollars {
        self.wax + self.containers
    }

    /// Table 2 form: dollars per server per month over the server lifetime.
    pub fn per_month(&self) -> Dollars {
        self.total() / SERVER_LIFETIME_MONTHS
    }

    /// Sanity ratio against the server's own CapEx (should be < 0.1 %).
    pub fn fraction_of_server_capex(&self, server_price: Dollars) -> f64 {
        self.total() / server_price
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::ContainerBank;
    use tts_units::{Liters, Meters};

    fn one_u_bank() -> ContainerBank {
        // 1U server: 1.2 L of wax in two boxes.
        ContainerBank::subdivide(Liters::new(1.2), 2, Meters::new(0.25), Meters::new(0.15))
    }

    #[test]
    fn commercial_wax_capex_is_a_few_dollars() {
        let c = WaxCapEx::price(&one_u_bank(), &PcmMaterial::validation_wax());
        // 0.96 kg at $1,500/ton = $1.44, plus two boxes.
        assert!((c.wax.value() - 1.44).abs() < 0.01, "{:?}", c);
        assert!((c.containers.value() - 3.0).abs() < 1e-9);
        assert!(c.total().value() < 5.0);
    }

    #[test]
    fn per_month_lands_in_table2_band() {
        let c = WaxCapEx::price(&one_u_bank(), &PcmMaterial::validation_wax());
        let pm = c.per_month().value();
        assert!((0.05..=0.15).contains(&pm), "per month {pm}");
    }

    #[test]
    fn negligible_fraction_of_server_capex() {
        let c = WaxCapEx::price(&one_u_bank(), &PcmMaterial::validation_wax());
        // $2,000 1U server (§4.1).
        let frac = c.fraction_of_server_capex(Dollars::new(2000.0));
        assert!(frac < 0.0025, "wax is {:.3}% of server CapEx", frac * 100.0);
    }

    #[test]
    fn eicosane_is_cost_prohibitive() {
        // §2.1: "the cost of equipping every server with eicosane would be
        // over a million dollars in wax costs alone" for a datacenter.
        let c = WaxCapEx::price(&one_u_bank(), &PcmMaterial::eicosane());
        // ~0.94 kg at $75,000/ton ≈ $70 per server...
        assert!(c.wax.value() > 50.0);
        // ... which over a 55-cluster (55 × 1008 servers) datacenter exceeds $1M.
        let datacenter = c.wax * (55.0 * 1008.0);
        assert!(datacenter.value() > 1.0e6, "{datacenter}");
    }
}
