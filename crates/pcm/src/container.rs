//! Sealed aluminum wax enclosures.
//!
//! The paper packages wax in sealed aluminum boxes with ~10 % airspace for
//! expansion (§3: "90 ml (70 grams) of paraffin wax ... an extra 10 ml of
//! airspace"), placed downwind of the CPU heat sinks. §6 notes that melting
//! speed is "sufficiently improved by placing the paraffin in multiple
//! containers to maximize surface area" — subdividing a wax budget into more
//! boxes increases the air-contact area and hence the melt rate, which the
//! [`ContainerBank`] geometry captures.

use crate::material::PcmMaterial;
use tts_units::{Grams, Liters, Meters, SquareMeters, WattsPerKelvin, WattsPerSquareMeterKelvin};

/// Fraction of the container volume filled with wax; the rest is expansion
/// headspace (the paper leaves 10 mL of air per 90 mL of wax).
pub const DEFAULT_FILL_FRACTION: f64 = 0.9;

/// Thermal conductance per square meter of a thin aluminum wall
/// (k ≈ 205 W/(m·K), 1.5 mm wall → ~1.4e5 W/(m²·K); effectively transparent
/// compared to the air-side film, but modeled for completeness).
pub const ALUMINUM_WALL_CONDUCTANCE_W_M2K: f64 = 205.0 / 0.0015;

/// Thermal conductivity of paraffin wax, W/(m·K).
///
/// Paraffin conducts poorly; the internal (wax-side) conductance of a box
/// is `k / (thickness/2)` — the heat must diffuse from the surface to the
/// slab's mid-plane — so *thin* boxes melt much faster than thick ones.
/// This is the paper's §6 point: melting speed is "sufficiently improved by
/// placing the paraffin in multiple containers to maximize surface area"
/// instead of embedding expensive metal mesh.
pub const WAX_THERMAL_CONDUCTIVITY_W_MK: f64 = 0.21;

/// Enhancement factor for buoyancy-driven convection in the molten layer
/// (natural convection stirs the melt, raising effective conductivity).
pub const MELT_CONVECTION_ENHANCEMENT: f64 = 1.6;

/// A rectangular sealed aluminum box of wax.
#[derive(Debug, Clone, PartialEq)]
pub struct WaxContainer {
    length: Meters,
    width: Meters,
    height: Meters,
    fill_fraction: f64,
    elevated: bool,
}

tts_units::derive_json! { struct WaxContainer { length, width, height, fill_fraction, elevated } }

impl WaxContainer {
    /// A box with the given outer dimensions, filled to
    /// [`DEFAULT_FILL_FRACTION`] with wax.
    pub fn new(length: Meters, width: Meters, height: Meters) -> Self {
        Self::with_fill(length, width, height, DEFAULT_FILL_FRACTION)
    }

    /// A box with an explicit fill fraction in `(0, 1]`.
    ///
    /// # Panics
    /// Panics if `fill_fraction` is not in `(0, 1]` or a dimension is
    /// non-positive — containers are construction-time configuration, not
    /// runtime data, so invalid geometry is a programming error.
    pub fn with_fill(length: Meters, width: Meters, height: Meters, fill_fraction: f64) -> Self {
        assert!(
            fill_fraction > 0.0 && fill_fraction <= 1.0,
            "fill fraction {fill_fraction} outside (0, 1]"
        );
        assert!(
            length.value() > 0.0 && width.value() > 0.0 && height.value() > 0.0,
            "container dimensions must be positive"
        );
        Self {
            length,
            width,
            height,
            fill_fraction,
            elevated: false,
        }
    }

    /// Marks the container as *elevated*: mounted on standoffs or
    /// vertically (like the Open Compute airflow inserts), so both large
    /// faces see moving air instead of one resting on the chassis floor.
    pub fn elevated(mut self) -> Self {
        self.elevated = true;
        self
    }

    /// Whether both large faces are exposed to the air stream.
    pub fn is_elevated(&self) -> bool {
        self.elevated
    }

    /// The validation-experiment box: 100 mL holding 90 mL (70 g) of wax.
    /// Modeled as 10 cm × 10 cm × 1 cm.
    pub fn validation_box() -> Self {
        Self::with_fill(Meters::new(0.10), Meters::new(0.10), Meters::new(0.01), 0.9)
    }

    /// Constructs a box sized to hold `wax_volume` of wax in a server bay of
    /// the given footprint, solving for the height (including headspace).
    pub fn for_wax_volume(wax_volume: Liters, length: Meters, width: Meters) -> Self {
        let total_m3 = wax_volume.cubic_meters().value() / DEFAULT_FILL_FRACTION;
        let height = total_m3 / (length.value() * width.value());
        Self::new(length, width, Meters::new(height))
    }

    /// Outer volume of the box.
    pub fn outer_volume(&self) -> Liters {
        Liters::new(self.length.value() * self.width.value() * self.height.value() * 1e3)
    }

    /// Volume of wax inside.
    pub fn wax_volume(&self) -> Liters {
        self.outer_volume() * self.fill_fraction
    }

    /// Mass of wax for a given material.
    pub fn wax_mass(&self, material: &PcmMaterial) -> Grams {
        self.wax_volume().mass_at(material.density())
    }

    /// Total exterior surface area (all six faces).
    pub fn surface_area(&self) -> SquareMeters {
        let (l, w, h) = (self.length.value(), self.width.value(), self.height.value());
        SquareMeters::new(2.0 * (l * w + l * h + w * h))
    }

    /// Surface area exposed to the moving air stream.
    ///
    /// The paper leaves space "between the boxes and edges of the server
    /// ... maximizing surface area in contact with moving air"; we count
    /// the top face and the two faces parallel to the flow (air flows
    /// along `length`). The bottom face rests on the chassis floor and the
    /// upstream/downstream end faces sit in recirculation zones.
    pub fn exposed_area(&self) -> SquareMeters {
        let (l, w, h) = (self.length.value(), self.width.value(), self.height.value());
        let large_faces = if self.elevated { 2.0 } else { 1.0 };
        SquareMeters::new(large_faces * l * w + 2.0 * l * h)
    }

    /// Effective wax-side conductance per m²: conduction over the slab
    /// half-thickness, enhanced by melt convection.
    pub fn wax_internal_conductance_per_m2(&self) -> f64 {
        let half_thickness = (self.height.value() / 2.0).max(1e-4);
        WAX_THERMAL_CONDUCTIVITY_W_MK * MELT_CONVECTION_ENHANCEMENT / half_thickness
    }

    /// Series air-to-wax conductance for a given air-side film coefficient:
    /// convection film → aluminum wall → wax bulk, each over the exposed
    /// area.
    pub fn air_to_wax_conductance(&self, film: WattsPerSquareMeterKelvin) -> WattsPerKelvin {
        let area = self.exposed_area().value();
        let g_film = film.value() * area;
        let g_wall = ALUMINUM_WALL_CONDUCTANCE_W_M2K * area;
        let g_wax = self.wax_internal_conductance_per_m2() * area;
        let g = 1.0 / (1.0 / g_film + 1.0 / g_wall + 1.0 / g_wax);
        WattsPerKelvin::new(g)
    }

    /// Frontal area presented to the airflow (the face blocking the duct).
    pub fn frontal_area(&self) -> SquareMeters {
        SquareMeters::new(self.width.value() * self.height.value())
    }
}

/// A set of identical containers deployed in one server.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainerBank {
    container: WaxContainer,
    count: usize,
}

tts_units::derive_json! { struct ContainerBank { container, count } }

impl ContainerBank {
    /// `count` copies of `container`.
    ///
    /// # Panics
    /// Panics if `count` is zero.
    pub fn new(container: WaxContainer, count: usize) -> Self {
        assert!(count > 0, "a container bank needs at least one container");
        Self { container, count }
    }

    /// Splits a total wax budget into `count` equal boxes of the given
    /// footprint.
    pub fn subdivide(total_wax: Liters, count: usize, length: Meters, width: Meters) -> Self {
        assert!(count > 0, "a container bank needs at least one container");
        let per_box = total_wax / count as f64;
        Self::new(WaxContainer::for_wax_volume(per_box, length, width), count)
    }

    /// Like [`Self::subdivide`], with every box [`WaxContainer::elevated`].
    pub fn subdivide_elevated(
        total_wax: Liters,
        count: usize,
        length: Meters,
        width: Meters,
    ) -> Self {
        assert!(count > 0, "a container bank needs at least one container");
        let per_box = total_wax / count as f64;
        Self::new(
            WaxContainer::for_wax_volume(per_box, length, width).elevated(),
            count,
        )
    }

    /// The individual container.
    pub fn container(&self) -> &WaxContainer {
        &self.container
    }

    /// Number of containers.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Total wax volume across the bank.
    pub fn total_wax_volume(&self) -> Liters {
        self.container.wax_volume() * self.count as f64
    }

    /// Total wax mass across the bank.
    pub fn total_wax_mass(&self, material: &PcmMaterial) -> Grams {
        self.container.wax_mass(material) * self.count as f64
    }

    /// Total air-exposed area across the bank.
    pub fn total_exposed_area(&self) -> SquareMeters {
        self.container.exposed_area() * self.count as f64
    }

    /// Total air-to-wax conductance across the bank.
    pub fn total_conductance(&self, film: WattsPerSquareMeterKelvin) -> WattsPerKelvin {
        self.container.air_to_wax_conductance(film) * self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tts_rng::prop::prelude::*;
    use tts_units::Celsius;

    #[test]
    fn validation_box_holds_90ml() {
        let b = WaxContainer::validation_box();
        assert!((b.outer_volume().value() - 0.1).abs() < 1e-9);
        assert!((b.wax_volume().value() - 0.09).abs() < 1e-9);
    }

    #[test]
    fn validation_box_wax_mass_is_about_70g() {
        // Paper: 90 mL ≈ 70 g. Our commercial paraffin density is 0.80 g/mL
        // → 72 g; within the paper's rounding.
        let b = WaxContainer::validation_box();
        let m = b.wax_mass(&PcmMaterial::validation_wax());
        assert!((m.value() - 72.0).abs() < 3.0, "{m}");
    }

    #[test]
    fn for_wax_volume_round_trips() {
        let b =
            WaxContainer::for_wax_volume(Liters::new(1.2), Meters::new(0.30), Meters::new(0.20));
        assert!((b.wax_volume().value() - 1.2).abs() < 1e-9);
    }

    #[test]
    fn subdividing_increases_surface_area() {
        // §6: multiple containers instead of metal mesh. Same 4 L of wax in
        // 4 boxes exposes more area than 1 box of the same footprint.
        let one =
            ContainerBank::subdivide(Liters::new(4.0), 1, Meters::new(0.25), Meters::new(0.20));
        let four =
            ContainerBank::subdivide(Liters::new(4.0), 4, Meters::new(0.25), Meters::new(0.20));
        assert!((four.total_wax_volume().value() - one.total_wax_volume().value()).abs() < 1e-9);
        assert!(
            four.total_exposed_area().value() > one.total_exposed_area().value(),
            "4 boxes must expose more area"
        );
    }

    #[test]
    fn conductance_is_dominated_by_film_and_wax_not_wall() {
        let b = WaxContainer::validation_box();
        let g = b.air_to_wax_conductance(WattsPerSquareMeterKelvin::new(25.0));
        // Upper bound: film+wax in series, no wall.
        let area = b.exposed_area().value();
        let g_no_wall =
            1.0 / (1.0 / (25.0 * area) + 1.0 / (b.wax_internal_conductance_per_m2() * area));
        assert!(g.value() < g_no_wall);
        assert!(
            g.value() > 0.99 * g_no_wall,
            "aluminum wall should be nearly transparent"
        );
    }

    #[test]
    fn thinner_boxes_have_higher_internal_conductance() {
        // Same footprint, half the height → roughly double the wax-side
        // conductance per m² (the §6 multiple-containers argument).
        let thick = WaxContainer::new(Meters::new(0.3), Meters::new(0.2), Meters::new(0.04));
        let thin = WaxContainer::new(Meters::new(0.3), Meters::new(0.2), Meters::new(0.02));
        assert!(
            thin.wax_internal_conductance_per_m2() > 1.9 * thick.wax_internal_conductance_per_m2()
        );
    }

    #[test]
    #[should_panic(expected = "fill fraction")]
    fn zero_fill_fraction_panics() {
        WaxContainer::with_fill(Meters::new(0.1), Meters::new(0.1), Meters::new(0.1), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one container")]
    fn empty_bank_panics() {
        ContainerBank::new(WaxContainer::validation_box(), 0);
    }

    proptest! {
        #[test]
        fn exposed_area_is_subset_of_surface(
            l in 0.01f64..1.0, w in 0.01f64..1.0, h in 0.005f64..0.2
        ) {
            let b = WaxContainer::new(Meters::new(l), Meters::new(w), Meters::new(h));
            prop_assert!(b.exposed_area().value() <= b.surface_area().value() + 1e-12);
        }

        #[test]
        fn bank_totals_scale_linearly(count in 1usize..10) {
            let b = ContainerBank::new(WaxContainer::validation_box(), count);
            let single = WaxContainer::validation_box();
            let mat = PcmMaterial::commercial_paraffin(Celsius::new(40.0));
            prop_assert!(
                (b.total_wax_mass(&mat).value()
                    - single.wax_mass(&mat).value() * count as f64).abs() < 1e-9
            );
        }

        #[test]
        fn subdivision_conserves_wax(total in 0.5f64..8.0, n in 1usize..8) {
            let bank = ContainerBank::subdivide(
                Liters::new(total), n, Meters::new(0.25), Meters::new(0.2));
            prop_assert!((bank.total_wax_volume().value() - total).abs() < 1e-9);
        }
    }
}
