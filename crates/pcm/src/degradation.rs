//! Cycling degradation: latent capacity fade over melt/freeze cycles.
//!
//! Table 1's *stability* column is qualitative; this extension makes it
//! quantitative. §2.1 cites Pielichowska & Pielichowska: solid-solid PCMs
//! can degrade "in as few as 100 cycles" while paraffin shows "negligible
//! deviation from the initial heat of fusion after more than 1,000 melting
//! cycles". With one full cycle per day, a 4-year server deployment is
//! ~1,460 cycles — paraffin survives it, salt hydrates do not, which is
//! exactly why the paper rules them out despite their higher energy
//! density.

use crate::material::{PcmMaterial, Stability};
use tts_units::Fraction;

/// Exponential capacity-fade model: after `n` full melt/freeze cycles the
/// usable latent heat is `(1 − fade_per_cycle)^n` of the initial value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationModel {
    /// Relative latent-capacity loss per full cycle.
    pub fade_per_cycle: f64,
}

tts_units::derive_json! { struct DegradationModel { fade_per_cycle } }

impl DegradationModel {
    /// Fade rates per stability class, calibrated to the cited
    /// observations: *Poor* loses ~30 % within 100 cycles; *Excellent*
    /// loses ≲ 2 % over 1,000.
    pub fn for_stability(stability: Stability) -> Self {
        let fade_per_cycle = match stability {
            Stability::Poor => 3.5e-3,
            Stability::Unknown => 1.0e-3,
            Stability::Good => 3.0e-4,
            Stability::VeryGood => 6.0e-5,
            Stability::Excellent => 2.0e-5,
        };
        Self { fade_per_cycle }
    }

    /// Convenience: the model for a material.
    pub fn for_material(material: &PcmMaterial) -> Self {
        Self::for_stability(material.stability())
    }

    /// Remaining capacity fraction after `cycles` full cycles.
    pub fn capacity_after(&self, cycles: u32) -> Fraction {
        Fraction::new((1.0 - self.fade_per_cycle).powi(cycles as i32))
    }

    /// Cycles until capacity first falls below `threshold` (e.g. 0.8 for
    /// an 80 % end-of-life criterion). Returns `u32::MAX` if it never does
    /// within ~100k cycles.
    pub fn cycles_to_threshold(&self, threshold: Fraction) -> u32 {
        if self.fade_per_cycle <= 0.0 {
            return u32::MAX;
        }
        let n = threshold.value().ln() / (1.0 - self.fade_per_cycle).ln();
        if !n.is_finite() || n > 1e5 {
            u32::MAX
        } else {
            n.ceil() as u32
        }
    }

    /// Remaining capacity after `years` of one-cycle-per-day operation —
    /// the datacenter duty cycle.
    pub fn capacity_after_years_daily(&self, years: f64) -> Fraction {
        self.capacity_after((years * 365.25).round() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tts_rng::prop::prelude::*;

    #[test]
    fn paraffin_survives_a_server_generation() {
        // "negligible deviation ... after more than 1,000 melting cycles":
        // the Excellent class keeps ≥ 97 % through 1,460 daily cycles
        // (4 years).
        let m = DegradationModel::for_stability(Stability::Excellent);
        let remaining = m.capacity_after_years_daily(4.0);
        assert!(remaining.value() > 0.97, "{remaining}");
    }

    #[test]
    fn salt_hydrates_die_young() {
        // The Poor class degrades "in as few as 100 cycles": under 75 %
        // capacity within 100 cycles.
        let m = DegradationModel::for_stability(Stability::Poor);
        assert!(m.capacity_after(100).value() < 0.75);
        // It cannot survive a 4-year deployment usefully.
        assert!(m.capacity_after_years_daily(4.0).value() < 0.05);
    }

    #[test]
    fn commercial_paraffin_outlives_the_cooling_plant() {
        // VeryGood (commercial blends): still ≥ 80 % after 10 years of
        // daily cycles — the cooling plant's lifetime.
        let wax = PcmMaterial::validation_wax();
        let m = DegradationModel::for_material(&wax);
        assert!(m.capacity_after_years_daily(10.0).value() > 0.80);
    }

    #[test]
    fn threshold_crossing_is_consistent() {
        let m = DegradationModel::for_stability(Stability::Poor);
        let n = m.cycles_to_threshold(Fraction::new(0.8));
        assert!(m.capacity_after(n).value() <= 0.8);
        assert!(m.capacity_after(n.saturating_sub(1)).value() > 0.8);
    }

    #[test]
    fn zero_fade_never_crosses() {
        let m = DegradationModel {
            fade_per_cycle: 0.0,
        };
        assert_eq!(m.cycles_to_threshold(Fraction::new(0.8)), u32::MAX);
        assert_eq!(m.capacity_after(10_000), Fraction::ONE);
    }

    #[test]
    fn stability_ordering_maps_to_lifetime_ordering() {
        let classes = [
            Stability::Poor,
            Stability::Unknown,
            Stability::Good,
            Stability::VeryGood,
            Stability::Excellent,
        ];
        let mut prev = 0u64;
        for s in classes {
            let n = DegradationModel::for_stability(s).cycles_to_threshold(Fraction::new(0.8));
            assert!((n as u64) > prev, "{s:?} should outlast the previous class");
            prev = n as u64;
        }
    }

    proptest! {
        #[test]
        fn capacity_is_monotone_in_cycles(a in 0u32..5000, b in 0u32..5000) {
            let m = DegradationModel::for_stability(Stability::Good);
            if a <= b {
                prop_assert!(m.capacity_after(a).value() >= m.capacity_after(b).value());
            }
        }
    }
}
