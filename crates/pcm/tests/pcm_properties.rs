//! Integration tests for the PCM extension models: hysteresis loop
//! closure, degradation monotonicity, and blend enthalpy bounds.

use tts_pcm::{BlendState, DegradationModel, EnthalpyCurve, HystereticPcmState, PcmMaterial};
use tts_units::{Celsius, Fraction, Grams, Seconds, WattsPerKelvin};

const STEP: Seconds = Seconds::new(60.0);
const G: WattsPerKelvin = WattsPerKelvin::new(5.0);

/// Steps the wax against constant air until its state stops moving.
fn soak(s: &mut HystereticPcmState, air: Celsius) {
    for _ in 0..5_000 {
        if s.step(air, G, STEP).value().abs() < 1e-9 {
            break;
        }
    }
}

#[test]
fn hysteresis_loop_closes_and_conserves_energy() {
    let wax = PcmMaterial::validation_wax(); // melts at 39 °C
    let start = Celsius::new(25.0);
    let mut s = HystereticPcmState::new(&wax, Grams::new(500.0), start, 4.0);
    let e0 = s.stored_energy().value();
    assert!(s.melt_fraction().value() < 1e-9);

    // Leg 1: melt completely against hot air.
    soak(&mut s, Celsius::new(50.0));
    assert!(
        s.melt_fraction().value() > 0.999,
        "hot soak must fully melt"
    );
    let e_melted = s.stored_energy().value();
    assert!(e_melted > e0);

    // Hysteresis: air between the freezing branch and the melting point
    // cannot refreeze the wax (nucleation needs supercooling).
    soak(&mut s, Celsius::new(37.5));
    assert!(
        s.melt_fraction().value() > 0.9,
        "37.5 °C air refroze a wax whose freezing branch tops out at 37 °C"
    );

    // Leg 2: cold air closes the loop back to the starting temperature.
    soak(&mut s, start);
    assert!(
        s.melt_fraction().value() < 1e-6,
        "cold soak must fully refreeze"
    );
    // Loop closure: back at the start temperature, the stored energy
    // returns to its initial value — the hysteresis shifts *where* the
    // latent plateau sits, never how much energy it holds.
    let e_closed = s.stored_energy().value();
    assert!(
        (e_closed - e0).abs() < 1e-6 * (e_melted - e0).abs().max(1.0),
        "loop did not close: {e0} -> {e_closed} (peak {e_melted})"
    );
}

#[test]
fn wider_supercooling_delays_the_refreeze() {
    let wax = PcmMaterial::validation_wax();
    let mut narrow = HystereticPcmState::new(&wax, Grams::new(500.0), Celsius::new(25.0), 1.0);
    let mut wide = HystereticPcmState::new(&wax, Grams::new(500.0), Celsius::new(25.0), 6.0);
    soak(&mut narrow, Celsius::new(50.0));
    soak(&mut wide, Celsius::new(50.0));
    // Air at 36 °C: 2 K below the melting point. The 1 K-supercooled wax
    // can refreeze against it; the 6 K-supercooled one barely starts.
    soak(&mut narrow, Celsius::new(36.0));
    soak(&mut wide, Celsius::new(36.0));
    assert!(
        narrow.melt_fraction().value() < wide.melt_fraction().value(),
        "more supercooling must leave more of the wax molten: narrow {} vs wide {}",
        narrow.melt_fraction().value(),
        wide.melt_fraction().value()
    );
}

#[test]
fn degradation_is_monotone_and_bounded() {
    for material in [
        PcmMaterial::validation_wax(),
        PcmMaterial::eicosane(),
        PcmMaterial::commercial_paraffin(Celsius::new(34.0)),
    ] {
        let model = DegradationModel::for_material(&material);
        assert!((model.capacity_after(0).value() - 1.0).abs() < 1e-12);
        let mut prev = 1.0;
        for cycles in (0..=5_000).step_by(100) {
            let cap = model.capacity_after(cycles).value();
            assert!(
                cap <= prev + 1e-12,
                "{}: capacity rose with cycling at {cycles}",
                material.name()
            );
            assert!(
                (0.0..=1.0).contains(&cap),
                "{}: capacity {cap} out of [0,1]",
                material.name()
            );
            prev = cap;
        }
        // cycles_to_threshold inverts capacity_after (within a cycle).
        let cycles = model.cycles_to_threshold(Fraction::new(0.8));
        assert!(model.capacity_after(cycles).value() <= 0.8 + 1e-9);
        if cycles > 0 {
            assert!(model.capacity_after(cycles - 1).value() > 0.8);
        }
    }
}

#[test]
fn blend_enthalpy_stays_between_its_components() {
    let a = PcmMaterial::eicosane(); // 36.4 °C
    let b = PcmMaterial::commercial_paraffin(Celsius::new(28.0));
    let curve_a = EnthalpyCurve::for_material(&a);
    let curve_b = EnthalpyCurve::for_material(&b);
    for tenth in [0.25, 0.5, 0.75] {
        let blend = BlendState::new(
            &a,
            &b,
            Fraction::new(tenth),
            Grams::new(500.0),
            Celsius::new(20.0),
        );
        let mut prev = f64::NEG_INFINITY;
        for deg in 0..60 {
            let t = Celsius::new(deg as f64);
            let h = blend.enthalpy_at(t).value();
            let ha = curve_a.enthalpy_at(t).value();
            let hb = curve_b.enthalpy_at(t).value();
            assert!(
                h >= ha.min(hb) - 1e-9 && h <= ha.max(hb) + 1e-9,
                "fraction {tenth}, {deg} °C: blend enthalpy {h} outside [{}, {}]",
                ha.min(hb),
                ha.max(hb)
            );
            assert!(h > prev, "blend enthalpy must be strictly increasing");
            prev = h;
        }
        // The mass-weighted identity holds exactly.
        let t = Celsius::new(31.0);
        let expect =
            tenth * curve_a.enthalpy_at(t).value() + (1.0 - tenth) * curve_b.enthalpy_at(t).value();
        assert!((blend.enthalpy_at(t).value() - expect).abs() < 1e-9);
    }
}

#[test]
fn blend_melt_fraction_and_energy_stay_bounded_under_stepping() {
    let a = PcmMaterial::eicosane();
    let b = PcmMaterial::commercial_paraffin(Celsius::new(28.0));
    let mut blend = BlendState::new(
        &a,
        &b,
        Fraction::new(0.5),
        Grams::new(500.0),
        Celsius::new(20.0),
    );
    let latent = blend.latent_capacity().value();
    let mut prev_energy = blend.stored_energy().value();
    for i in 0..2_000 {
        // A warm/cool square wave sweeps the blend through both plateaus.
        let air = if (i / 500) % 2 == 0 { 45.0 } else { 15.0 };
        let q = blend.step(Celsius::new(air), G, STEP).value();
        let f = blend.melt_fraction().value();
        let e = blend.stored_energy().value();
        assert!((-1e-9..=1.0 + 1e-9).contains(&f), "melt fraction {f}");
        assert!(
            (e - prev_energy - q * STEP.value()).abs() <= 1e-6 + 1e-12 * e.abs(),
            "energy bookkeeping broke at step {i}"
        );
        prev_energy = e;
    }
    assert!(latent > 0.0);
}
