//! Seedable, zero-dependency pseudo-random number generation.
//!
//! The whole simulation stack must be hermetic (no external crates) and
//! deterministic (every random draw reproducible from a `u64` seed), so this
//! crate owns the randomness substrate that `rand` used to provide:
//!
//! * [`SplitMix64`] — a tiny 64-bit-state generator, used to expand seeds
//!   and as the stream-splitting workhorse.
//! * [`Xoshiro256pp`] — xoshiro256++ (Blackman & Vigna), the general-purpose
//!   generator used everywhere a `StdRng` used to be. 256-bit state, 1-cycle
//!   output mixing, passes BigCrush.
//! * The [`Rng`] extension trait — `gen`, `gen_range`, `gen_bool` over any
//!   [`RngCore`], mirroring the subset of the `rand` API the simulator uses.
//! * Distribution helpers — [`Normal`] (Box–Muller) and [`Exp`].
//!
//! Determinism contract: for a fixed seed the byte stream of every generator
//! here is stable across platforms and releases; golden-value tests pin it.
//!
//! ```
//! use tts_rng::{Rng, RngCore, SeedableRng, Xoshiro256pp};
//!
//! let mut a = Xoshiro256pp::seed_from_u64(42);
//! let mut b = Xoshiro256pp::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x: f64 = a.gen_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&x));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod prop;

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface: every generator is fully determined by a `u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 (Steele, Lea & Flood). 64-bit state; used to expand seeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A SplitMix64 stream starting from `seed`.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed)
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 (Blackman & Vigna, 2019). The default generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl SeedableRng for Xoshiro256pp {
    /// Expands `seed` through SplitMix64 into the 256-bit state, per the
    /// reference implementation's seeding recommendation.
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }
}

impl RngCore for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types that can be drawn uniformly from a generator via [`Rng::gen`].
pub trait Sample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can draw from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty f64 range");
        // Uses the closed-open draw; the missing endpoint has measure zero.
        let u = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

/// Unbiased-enough bounded integer draw via 128-bit widening multiply
/// (Lemire's method without the rejection step; bias is < 2⁻⁶⁴·span).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),+) => {
        $(
            impl SampleRange for std::ops::Range<$t> {
                type Output = $t;
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty integer range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + bounded_u64(rng, span) as i128) as $t
                }
            }
        )+
    };
}

int_range!(usize, u64, u32, i64, i32);

/// The user-facing extension trait: every [`RngCore`] is an [`Rng`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (see [`Sample`]).
    fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive, ints or floats).
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped into `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Normal distribution sampled by Box–Muller (both variates used).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Mean.
    pub mean: f64,
    /// Standard deviation (must be finite and ≥ 0).
    pub sd: f64,
}

impl Normal {
    /// A normal distribution with the given mean and standard deviation.
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(sd >= 0.0 && sd.is_finite(), "sd must be finite and >= 0");
        Self { mean, sd }
    }

    /// Draws one variate (the second Box–Muller variate is discarded so the
    /// draw count per sample is fixed — important for stream stability).
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1 = f64::sample(rng).max(1e-300);
        let u2 = f64::sample(rng);
        let r = (-2.0 * u1.ln()).sqrt();
        self.mean + self.sd * r * (std::f64::consts::TAU * u2).cos()
    }
}

/// Exponential distribution with rate `lambda` (inverse-CDF sampling).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    /// Rate parameter λ (> 0).
    pub lambda: f64,
}

impl Exp {
    /// An exponential distribution with rate `lambda`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0, "lambda must be > 0");
        Self { lambda }
    }

    /// Draws one variate.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = f64::sample(rng).max(1e-300);
        -u.ln() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First three outputs for seed 1234567, from the public-domain
        // reference implementation.
        let mut sm = SplitMix64::new(1234567);
        let got = [sm.next_u64(), sm.next_u64(), sm.next_u64()];
        assert_eq!(
            got,
            [
                6457827717110365317,
                3203168211198807973,
                9817491932198370423
            ]
        );
    }

    #[test]
    fn xoshiro_is_seed_deterministic() {
        let mut a = Xoshiro256pp::seed_from_u64(0xDEADBEEF);
        let mut b = Xoshiro256pp::seed_from_u64(0xDEADBEEF);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256pp::seed_from_u64(0xDEADBEF0);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_f64_stays_in_range_and_covers() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            lo |= x < 0.1;
            hi |= x > 0.9;
        }
        assert!(lo && hi, "10k draws should cover both tails");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&f));
            let g = rng.gen_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&g));
        }
    }

    #[test]
    fn gen_range_hits_every_bucket() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn normal_moments_are_roughly_right() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let n = Normal::new(5.0, 2.0);
        let m = 20_000;
        let xs: Vec<f64> = (0..m).map(|_| n.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / m as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / m as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn exp_mean_is_inverse_lambda() {
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let e = Exp::new(0.5);
        let m = 20_000;
        let mean = (0..m).map(|_| e.sample(&mut rng)).sum::<f64>() / m as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Xoshiro256pp::seed_from_u64(17);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2300..2700).contains(&hits), "hits {hits}");
    }
}
