//! A small in-repo property-testing harness (the `proptest` replacement).
//!
//! Deterministic by construction: every case is generated from a seed chain
//! rooted at a fixed base seed (override with `TTS_PROP_SEED`), so a failure
//! reported on one machine reproduces everywhere. On failure the harness
//! runs a bounded "shrinking-lite" pass — values move toward the low end of
//! their ranges, vectors shorten — and reports both the minimal failing
//! input and the seed that regenerates the original case.
//!
//! Environment knobs:
//!
//! * `TTS_PROP_CASES` — cases per property (default 64).
//! * `TTS_PROP_SEED` — base seed, decimal or `0x…` hex (default
//!   `0x7575_5eed`). A failure report prints the per-case seed; rerunning
//!   with that value as `TTS_PROP_SEED` replays the failing case first.
//!
//! ```
//! use tts_rng::prop::prelude::*;
//!
//! proptest! {
//!     fn addition_commutes(a in -1.0e6f64..1.0e6, b in -1.0e6f64..1.0e6) {
//!         prop_assert!((a + b - (b + a)).abs() == 0.0);
//!     }
//! }
//! # addition_commutes();
//! ```

use crate::{RngCore, SeedableRng, SplitMix64, Xoshiro256pp};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Default base seed for the case chain (overridden by `TTS_PROP_SEED`).
pub const DEFAULT_BASE_SEED: u64 = 0x7575_5eed;

/// Maximum shrink candidates evaluated after a failure.
const MAX_SHRINK_STEPS: usize = 1024;

/// A generator of random test inputs with optional shrinking.
pub trait Strategy {
    /// The generated input type.
    type Value: Clone + std::fmt::Debug;

    /// Draws one input from the generator.
    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value;

    /// Proposes strictly "smaller" variants of a failing input. The harness
    /// keeps any candidate that still fails and iterates; returning an empty
    /// vector opts out of shrinking.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        crate::SampleRange::sample_from(self.clone(), rng)
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let mut out = Vec::new();
        if *value != self.start {
            out.push(self.start);
            let mid = self.start + (value - self.start) / 2.0;
            if mid != *value && mid != self.start {
                out.push(mid);
            }
        }
        out
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        crate::SampleRange::sample_from(self.clone(), rng)
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let lo = *self.start();
        let mut out = Vec::new();
        if *value != lo {
            out.push(lo);
            let mid = lo + (value - lo) / 2.0;
            if mid != *value && mid != lo {
                out.push(mid);
            }
        }
        out
    }
}

macro_rules! int_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    crate::SampleRange::sample_from(self.clone(), rng)
                }

                fn shrink(&self, value: &$t) -> Vec<$t> {
                    let mut out = Vec::new();
                    if *value != self.start {
                        out.push(self.start);
                        let mid = self.start + (*value - self.start) / 2;
                        if mid != *value && mid != self.start {
                            out.push(mid);
                        }
                    }
                    out
                }
            }
        )+
    };
}

int_strategy!(usize, u64, u32, i64, i32);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+),)+) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }

                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&value.$idx) {
                            let mut v = value.clone();
                            v.$idx = cand;
                            out.push(v);
                        }
                    )+
                    out
                }
            }
        )+
    };
}

tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7),
);

/// Collection strategies (`collection::vec`, mirroring proptest's module).
pub mod collection {
    use super::Strategy;
    use crate::{Rng, RngCore};

    /// A vector length specification: an exact length or a half-open range.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (exclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            Self {
                min: r.start,
                max: r.end,
            }
        }
    }

    /// Strategy producing `Vec<S::Value>` with length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    /// A vector strategy: each element drawn from `elem`, length from `len`
    /// (a `usize` for an exact length, or a `Range<usize>`).
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value {
            let n = if self.len.min + 1 >= self.len.max {
                self.len.min
            } else {
                rng.gen_range(self.len.min..self.len.max)
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }

        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let mut out = Vec::new();
            // Structural shrinks first: halve, then drop the tail element.
            if value.len() > self.len.min {
                let half = (value.len() / 2).max(self.len.min);
                if half < value.len() {
                    out.push(value[..half].to_vec());
                }
                out.push(value[..value.len() - 1].to_vec());
            }
            // Then elementwise shrinks (bounded to keep candidate counts sane).
            for i in 0..value.len().min(16) {
                for cand in self.elem.shrink(&value[i]) {
                    let mut v = value.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
            out
        }
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(s) => {
            let s = s.trim();
            let parsed = if let Some(hex) = s.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                s.parse()
            };
            parsed.unwrap_or_else(|_| panic!("{name} must be a u64 (got {s:?})"))
        }
        Err(_) => default,
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `test` against `cases` inputs drawn from `strategy`; panics with a
/// reproduction report on the first failure. This is the engine behind the
/// [`proptest!`](crate::proptest) macro — call it directly for programmatic
/// use.
pub fn run<S: Strategy>(name: &str, strategy: S, test: impl Fn(S::Value)) {
    run_with_cases(name, None, strategy, test)
}

/// [`run`] with an explicit case count (`TTS_PROP_CASES` still wins when
/// set, so a failing property can always be retried with more cases).
pub fn run_with_cases<S: Strategy>(
    name: &str,
    default_cases: Option<u64>,
    strategy: S,
    test: impl Fn(S::Value),
) {
    let cases = env_u64("TTS_PROP_CASES", default_cases.unwrap_or(64)).max(1);
    let base_seed = env_u64("TTS_PROP_SEED", DEFAULT_BASE_SEED);

    let fails = |value: &S::Value| -> Option<String> {
        let v = value.clone();
        catch_unwind(AssertUnwindSafe(|| test(v)))
            .err()
            .map(panic_message)
    };

    let mut seed_seq = SplitMix64::new(base_seed);
    let mut case_seed = base_seed;
    for case in 0..cases {
        let mut rng = Xoshiro256pp::seed_from_u64(case_seed);
        let value = strategy.generate(&mut rng);
        if let Some(first_msg) = fails(&value) {
            // Shrinking-lite: greedily accept any still-failing candidate.
            let mut minimal = value.clone();
            let mut msg = first_msg.clone();
            let mut steps = 0;
            'shrinking: while steps < MAX_SHRINK_STEPS {
                let candidates = strategy.shrink(&minimal);
                if candidates.is_empty() {
                    break;
                }
                for cand in candidates {
                    steps += 1;
                    if let Some(m) = fails(&cand) {
                        minimal = cand;
                        msg = m;
                        continue 'shrinking;
                    }
                    if steps >= MAX_SHRINK_STEPS {
                        break 'shrinking;
                    }
                }
                break;
            }
            panic!(
                "property `{name}` failed on case {case}/{cases}.\n\
                 \x20 assertion: {msg}\n\
                 \x20 minimal failing input (after {steps} shrink steps): {minimal:?}\n\
                 \x20 original failing input: {value:?}\n\
                 \x20 reproduce first with: TTS_PROP_SEED={case_seed:#x}"
            );
        }
        case_seed = seed_seq.next_u64();
    }
}

/// Everything a property-test module needs: the [`proptest!`](crate::proptest)
/// and `prop_assert*` macros, [`Strategy`], the [`collection`] module and the
/// PRNG types.
pub mod prelude {
    pub use super::{collection, run, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Rng, RngCore, SeedableRng, Xoshiro256pp};
}

/// Declares property tests: each `fn` runs its body against many generated
/// inputs. Mirrors the `proptest!` surface this repo uses — arguments are
/// `name in strategy` pairs, the body is ordinary Rust using `prop_assert!`.
#[macro_export]
macro_rules! proptest {
    (#![cases($cases:expr)] $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategy = ($($strat,)+);
                $crate::prop::run_with_cases(
                    stringify!($name),
                    Some($cases),
                    strategy,
                    |case| {
                        let ($($arg,)+) = case;
                        $body
                    },
                );
            }
        )+
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategy = ($($strat,)+);
                $crate::prop::run(stringify!($name), strategy, |case| {
                    let ($($arg,)+) = case;
                    $body
                });
            }
        )+
    };
}

/// Asserts a property-test condition (panic-based, shrink-friendly).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)+) => { assert!($($tt)+) };
}

/// `assert_eq!` under a property-test-friendly name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)+) => { assert_eq!($($tt)+) };
}

/// `assert_ne!` under a property-test-friendly name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)+) => { assert_ne!($($tt)+) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn generated_floats_respect_ranges(x in 0.0f64..10.0, y in -5.0f64..=5.0) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((-5.0..=5.0).contains(&y));
        }

        #[test]
        fn generated_vecs_respect_length(values in collection::vec(0.0f64..1.0, 2..50)) {
            prop_assert!((2..50).contains(&values.len()));
            prop_assert!(values.iter().all(|v| (0.0..1.0).contains(v)));
        }

        #[test]
        fn exact_length_vecs(values in collection::vec(0.0f64..1.0, 7usize)) {
            prop_assert_eq!(values.len(), 7);
        }
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let result = std::panic::catch_unwind(|| {
            super::run("demo", (0.0f64..100.0,), |(x,)| {
                assert!(x < 1.0, "x too big: {x}");
            });
        });
        let msg = super::panic_message(result.expect_err("property must fail"));
        assert!(msg.contains("property `demo` failed"), "{msg}");
        assert!(msg.contains("TTS_PROP_SEED="), "{msg}");
        // Shrinking drives x down to (near) the range floor, which still
        // satisfies the failure predicate's complement boundary... the
        // minimal input must itself fail, so it is >= 1.0.
        assert!(msg.contains("minimal failing input"), "{msg}");
    }

    #[test]
    fn seed_chain_is_deterministic() {
        let collect = || {
            let mut out = Vec::new();
            super::run("collect", (0.0f64..1.0,), |(x,)| {
                // Abuse the runner to observe the generated stream.
                let _ = x;
            });
            out.push(0u8);
            out
        };
        assert_eq!(collect(), collect());
    }
}
