//! Fan curves, system impedance and blockage: the airflow operating point.
//!
//! The paper's Figure 7 sweeps a uniform grille across each server and
//! watches outlet/CPU temperatures climb. The mechanism: server fans are
//! constant-speed devices with a falling pressure–flow (P–Q) characteristic;
//! the chassis presents a quadratic impedance `ΔP = K·Q²`; inserting a
//! grille (or wax boxes) of blockage fraction `b` adds orifice impedance
//! that scales as `1/(1−b)²`. The operating point is the intersection, so
//! flow degrades gently at first and collapses as `b → 1` — exactly the
//! "stable below 50 %, exponential above 70 %" behaviour of Figure 7 (b).

use tts_units::{
    CubicMetersPerSecond, Fraction, MetersPerSecond, Pascals, SquareMeters, AIR_DENSITY_KG_M3,
};

/// A single fan's quadratic P–Q curve: `ΔP(Q) = P_max · (1 − (Q/Q_max)²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FanCurve {
    max_pressure: Pascals,
    max_flow: CubicMetersPerSecond,
}

tts_units::derive_json! { struct FanCurve { max_pressure, max_flow } }

impl FanCurve {
    /// A fan with stall pressure `max_pressure` and free-delivery flow
    /// `max_flow`.
    ///
    /// # Panics
    /// Panics unless both parameters are positive.
    pub fn new(max_pressure: Pascals, max_flow: CubicMetersPerSecond) -> Self {
        assert!(
            max_pressure.value() > 0.0,
            "stall pressure must be positive"
        );
        assert!(
            max_flow.value() > 0.0,
            "free-delivery flow must be positive"
        );
        Self {
            max_pressure,
            max_flow,
        }
    }

    /// Stall (zero-flow) pressure.
    pub fn max_pressure(&self) -> Pascals {
        self.max_pressure
    }

    /// Free-delivery (zero-pressure) flow.
    pub fn max_flow(&self) -> CubicMetersPerSecond {
        self.max_flow
    }

    /// Pressure produced at a given flow (clamped at zero past free
    /// delivery).
    pub fn pressure_at(&self, flow: CubicMetersPerSecond) -> Pascals {
        let ratio = flow.value() / self.max_flow.value();
        Pascals::new((self.max_pressure.value() * (1.0 - ratio * ratio)).max(0.0))
    }

    /// Derates the fan to a fraction of its speed (fan-law scaling:
    /// flow ∝ speed, pressure ∝ speed²). Used for idle/loaded fan steps.
    pub fn at_speed(&self, speed: Fraction) -> FanCurve {
        let s = speed.value().max(1e-3);
        FanCurve {
            max_pressure: self.max_pressure * (s * s),
            max_flow: self.max_flow * s,
        }
    }
}

/// The solved airflow operating point for a given blockage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Total volumetric flow through the chassis.
    pub flow: CubicMetersPerSecond,
    /// Static pressure at the operating point.
    pub pressure: Pascals,
    /// Mean velocity in the open duct (upstream of the blockage).
    pub duct_velocity: MetersPerSecond,
    /// Velocity through the constricted gap at the blockage plane — the
    /// velocity that drives convection over the wax boxes.
    pub gap_velocity: MetersPerSecond,
}

tts_units::derive_json! { struct OperatingPoint { flow, pressure, duct_velocity, gap_velocity } }

/// One server's air path: parallel fans against chassis + blockage
/// impedance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowPath {
    fan: FanCurve,
    fan_count: usize,
    /// Chassis impedance coefficient `K₀` (Pa / (m³/s)²) with no blockage.
    base_impedance: f64,
    /// Duct cross-section at the blockage plane.
    duct_area: SquareMeters,
    /// Orifice loss coefficient for the blockage plane (≈ 1–2.8 for sharp
    /// grilles).
    orifice_zeta: f64,
}

tts_units::derive_json! { struct FlowPath { fan, fan_count, base_impedance, duct_area, orifice_zeta } }

impl FlowPath {
    /// A path of `fan_count` identical fans in parallel blowing through a
    /// chassis of impedance `base_impedance` with a blockage plane of
    /// cross-section `duct_area`.
    ///
    /// # Panics
    /// Panics if `fan_count` is zero, the impedance is negative, or the
    /// duct area is non-positive.
    pub fn new(
        fan: FanCurve,
        fan_count: usize,
        base_impedance: f64,
        duct_area: SquareMeters,
    ) -> Self {
        assert!(fan_count > 0, "at least one fan required");
        assert!(base_impedance >= 0.0, "impedance cannot be negative");
        assert!(duct_area.value() > 0.0, "duct area must be positive");
        Self {
            fan,
            fan_count,
            base_impedance,
            duct_area,
            orifice_zeta: 1.5,
        }
    }

    /// Overrides the orifice loss coefficient of the blockage plane.
    pub fn with_orifice_zeta(mut self, zeta: f64) -> Self {
        assert!(zeta > 0.0, "orifice coefficient must be positive");
        self.orifice_zeta = zeta;
        self
    }

    /// The fans' combined free-delivery flow (upper bound on any operating
    /// point).
    pub fn max_flow(&self) -> CubicMetersPerSecond {
        self.fan.max_flow() * self.fan_count as f64
    }

    /// Duct cross-section at the blockage plane.
    pub fn duct_area(&self) -> SquareMeters {
        self.duct_area
    }

    /// Added impedance of a blockage covering fraction `b` of the duct:
    /// `ζ·ρ/2 · [1/(A(1−b))² − 1/A²]`, zero at `b = 0`.
    fn blockage_impedance(&self, blockage: Fraction) -> f64 {
        let a = self.duct_area.value();
        let open = (1.0 - blockage.value()).max(0.02); // fully sealed is non-physical
        let k_blocked = self.orifice_zeta * AIR_DENSITY_KG_M3 / (2.0 * (a * open).powi(2));
        let k_open = self.orifice_zeta * AIR_DENSITY_KG_M3 / (2.0 * a * a);
        k_blocked - k_open
    }

    /// Solves the operating point for a blockage fraction at a fan speed.
    ///
    /// Closed form: with parallel fans `Q = n·Q_max·√(1 − p/P_max)` and
    /// system `p = K·Q²`, the intersection is
    /// `p = K·(n·Q_max)² / (1 + K·(n·Q_max)²/P_max)`.
    pub fn operating_point(&self, blockage: Fraction, speed: Fraction) -> OperatingPoint {
        let fan = self.fan.at_speed(speed);
        let nqmax = fan.max_flow().value() * self.fan_count as f64;
        let pmax = fan.max_pressure().value();
        let k = self.base_impedance + self.blockage_impedance(blockage);
        let (pressure, flow) = if k <= 0.0 {
            (0.0, nqmax)
        } else {
            let knq2 = k * nqmax * nqmax;
            let p = knq2 / (1.0 + knq2 / pmax);
            (p, (p / k).sqrt())
        };
        let q = CubicMetersPerSecond::new(flow);
        let a = self.duct_area.value();
        let open = (1.0 - blockage.value()).max(0.02);
        OperatingPoint {
            flow: q,
            pressure: Pascals::new(pressure),
            duct_velocity: q.velocity_through(a),
            gap_velocity: q.velocity_through(a * open),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tts_rng::prop::prelude::*;

    fn path() -> FlowPath {
        // Six small 1U fans: 35 CFM free delivery, 160 Pa stall each.
        let fan = FanCurve::new(Pascals::new(160.0), CubicMetersPerSecond::from_cfm(35.0));
        FlowPath::new(fan, 6, 2.0e4, SquareMeters::new(0.017))
    }

    #[test]
    fn fan_curve_endpoints() {
        let fan = FanCurve::new(Pascals::new(100.0), CubicMetersPerSecond::new(0.05));
        assert_eq!(fan.pressure_at(CubicMetersPerSecond::ZERO).value(), 100.0);
        assert_eq!(
            fan.pressure_at(CubicMetersPerSecond::new(0.05)).value(),
            0.0
        );
        // Past free delivery: clamped, not negative.
        assert_eq!(
            fan.pressure_at(CubicMetersPerSecond::new(0.08)).value(),
            0.0
        );
    }

    #[test]
    fn fan_law_scaling() {
        let fan = FanCurve::new(Pascals::new(100.0), CubicMetersPerSecond::new(0.05));
        let half = fan.at_speed(Fraction::new(0.5));
        assert!((half.max_flow().value() - 0.025).abs() < 1e-12);
        assert!((half.max_pressure().value() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn operating_point_lies_on_both_curves() {
        let p = path();
        let op = p.operating_point(Fraction::new(0.3), Fraction::ONE);
        // On the system curve: p = K q².
        let k = 2.0e4 + {
            // re-derive blockage impedance through public behaviour:
            // compare against the zero-blockage point.
            let op0 = p.operating_point(Fraction::ZERO, Fraction::ONE);
            let k0 = op0.pressure.value() / op0.flow.value().powi(2);
            let kb = op.pressure.value() / op.flow.value().powi(2);
            kb - k0 // grille component only; total recomputed below
        };
        let _ = k;
        let sys_p = op.pressure.value();
        let fan = FanCurve::new(Pascals::new(160.0), CubicMetersPerSecond::from_cfm(35.0));
        let q_per_fan = op.flow.value() / 6.0;
        let fan_p = fan
            .pressure_at(CubicMetersPerSecond::new(q_per_fan))
            .value();
        assert!((sys_p - fan_p).abs() < 1e-6, "{sys_p} vs {fan_p}");
    }

    #[test]
    fn flow_decreases_monotonically_with_blockage() {
        let p = path();
        let mut prev = f64::INFINITY;
        for b in 0..=18 {
            let frac = Fraction::new(b as f64 * 0.05);
            let op = p.operating_point(frac, Fraction::ONE);
            assert!(op.flow.value() < prev, "flow must fall with blockage");
            prev = op.flow.value();
        }
    }

    #[test]
    fn flow_degrades_gently_then_collapses() {
        // The Figure 7 (b) shape: < 10 % flow loss at 50 % blockage is too
        // strong for these fans, but the knee must exist: the loss from
        // 0→50 % must be much smaller than from 50→90 %.
        let p = path();
        let q0 = p
            .operating_point(Fraction::ZERO, Fraction::ONE)
            .flow
            .value();
        let q50 = p
            .operating_point(Fraction::new(0.5), Fraction::ONE)
            .flow
            .value();
        let q90 = p
            .operating_point(Fraction::new(0.9), Fraction::ONE)
            .flow
            .value();
        let early_loss = q0 - q50;
        let late_loss = q50 - q90;
        assert!(
            late_loss > 1.5 * early_loss,
            "early {early_loss:.4}, late {late_loss:.4}"
        );
    }

    #[test]
    fn gap_velocity_rises_as_duct_constricts() {
        let p = path();
        let op30 = p.operating_point(Fraction::new(0.3), Fraction::ONE);
        let op70 = p.operating_point(Fraction::new(0.7), Fraction::ONE);
        // Total flow falls but the gap velocity climbs (smaller opening).
        assert!(op70.flow.value() < op30.flow.value());
        assert!(op70.gap_velocity.value() > op30.gap_velocity.value());
        assert!(op30.gap_velocity.value() > op30.duct_velocity.value());
    }

    #[test]
    fn lower_fan_speed_reduces_flow() {
        let p = path();
        let full = p.operating_point(Fraction::new(0.3), Fraction::ONE);
        let idle = p.operating_point(Fraction::new(0.3), Fraction::new(0.4));
        assert!(idle.flow.value() < full.flow.value());
    }

    #[test]
    fn zero_impedance_path_runs_at_free_delivery() {
        let fan = FanCurve::new(Pascals::new(100.0), CubicMetersPerSecond::new(0.05));
        let p = FlowPath::new(fan, 2, 0.0, SquareMeters::new(0.02));
        let op = p.operating_point(Fraction::ZERO, Fraction::ONE);
        assert!((op.flow.value() - 0.1).abs() < 1e-12);
        assert_eq!(op.pressure.value(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one fan")]
    fn zero_fans_panics() {
        let fan = FanCurve::new(Pascals::new(100.0), CubicMetersPerSecond::new(0.05));
        FlowPath::new(fan, 0, 1.0, SquareMeters::new(0.02));
    }

    proptest! {
        #[test]
        fn operating_point_is_always_physical(
            b in 0.0f64..0.98,
            speed in 0.1f64..1.0,
        ) {
            let p = path();
            let op = p.operating_point(Fraction::new(b), Fraction::new(speed));
            prop_assert!(op.flow.value() > 0.0);
            prop_assert!(op.flow.value() <= p.max_flow().value() + 1e-12);
            prop_assert!(op.pressure.value() >= 0.0);
            prop_assert!(op.gap_velocity.value() >= op.duct_velocity.value() - 1e-12);
        }
    }
}
