//! Error-controlled adaptive time stepping.
//!
//! The exponential-Euler step is unconditionally stable but not exact when
//! nodes are strongly coupled: one long step can differ visibly from many
//! short ones. [`step_adaptive`] uses step doubling — compare one full
//! step against two half steps on a clone — and recursively subdivides
//! until the difference is within tolerance. Long validation runs can then
//! take hour-scale macro steps through quiescent periods and fine steps
//! through the load transitions, with a bounded error instead of a guessed
//! `dt`.

use crate::network::ThermalNetwork;
use tts_units::Seconds;

/// Statistics from an adaptive step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveReport {
    /// Number of elementary steps actually taken.
    pub steps_taken: usize,
    /// The largest per-node discrepancy (K) accepted between the coarse
    /// and fine solutions at any subdivision level.
    pub max_error_k: f64,
}

/// The deepest subdivision allowed (2^10 = 1024 sub-steps per call).
const MAX_DEPTH: u32 = 10;

/// Advances the network by `dt`, subdividing wherever one step and two
/// half steps disagree by more than `tol_k` on any node temperature.
///
/// # Panics
/// Panics if `dt` or `tol_k` is not positive.
pub fn step_adaptive(net: &mut ThermalNetwork, dt: Seconds, tol_k: f64) -> AdaptiveReport {
    assert!(dt.value() > 0.0, "dt must be positive");
    assert!(tol_k > 0.0, "tolerance must be positive");
    let mut report = AdaptiveReport {
        steps_taken: 0,
        max_error_k: 0.0,
    };
    recurse(net, dt.value(), tol_k, 0, &mut report);
    report
}

fn max_node_diff(a: &ThermalNetwork, b: &ThermalNetwork) -> f64 {
    (0..a.node_count())
        .map(|i| (a.temperature_index(i) - b.temperature_index(i)).abs())
        .fold(0.0, f64::max)
}

fn recurse(net: &mut ThermalNetwork, dt: f64, tol_k: f64, depth: u32, report: &mut AdaptiveReport) {
    // Candidate: one coarse step on a clone.
    let mut coarse = net.clone();
    coarse.step(Seconds::new(dt));
    // Reference: two half steps on a second clone.
    let mut fine = net.clone();
    fine.step(Seconds::new(dt / 2.0));
    fine.step(Seconds::new(dt / 2.0));

    let err = max_node_diff(&coarse, &fine);
    if err <= tol_k || depth >= MAX_DEPTH {
        // Accept the fine solution (it is the better of the two and we
        // already paid for it).
        *net = fine;
        report.steps_taken += 2;
        report.max_error_k = report.max_error_k.max(err);
    } else {
        recurse(net, dt / 2.0, tol_k, depth + 1, report);
        recurse(net, dt / 2.0, tol_k, depth + 1, report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tts_units::{Celsius, JoulesPerKelvin, Watts, WattsPerKelvin};

    /// Two strongly coupled solids: coarse exponential-Euler steps are
    /// visibly wrong here.
    fn stiff_rig() -> ThermalNetwork {
        let mut net = ThermalNetwork::new();
        let amb = net.add_boundary("amb", Celsius::new(20.0));
        let a = net.add_capacitive("a", JoulesPerKelvin::new(50.0), Celsius::new(90.0));
        let b = net.add_capacitive("b", JoulesPerKelvin::new(2000.0), Celsius::new(20.0));
        net.connect(a, b, WattsPerKelvin::new(5.0));
        net.connect(b, amb, WattsPerKelvin::new(0.5));
        net.set_power(a, Watts::new(5.0));
        net
    }

    #[test]
    fn adaptive_matches_a_tightly_stepped_reference() {
        let mut reference = stiff_rig();
        for _ in 0..36_000 {
            reference.step(Seconds::new(0.1));
        }

        let mut adaptive = stiff_rig();
        let mut total_steps = 0;
        for _ in 0..6 {
            let r = step_adaptive(&mut adaptive, Seconds::new(600.0), 0.05);
            total_steps += r.steps_taken;
        }
        let diff = max_node_diff(&reference, &adaptive);
        assert!(diff < 0.5, "adaptive drifted {diff} K from the reference");
        // ... with far fewer steps than the reference's 36k.
        assert!(total_steps < 4000, "took {total_steps} steps");
    }

    #[test]
    fn tight_tolerance_takes_more_steps() {
        let mut a = stiff_rig();
        let loose = step_adaptive(&mut a, Seconds::new(600.0), 1.0);
        let mut b = stiff_rig();
        let tight = step_adaptive(&mut b, Seconds::new(600.0), 0.01);
        assert!(
            tight.steps_taken > loose.steps_taken,
            "tight {} vs loose {}",
            tight.steps_taken,
            loose.steps_taken
        );
        assert!(loose.max_error_k <= 1.0 + 1e-9);
    }

    #[test]
    fn quiescent_network_takes_the_macro_step() {
        // Already at equilibrium: one coarse/fine pair suffices.
        let mut net = stiff_rig();
        net.run_to_steady_state(Seconds::new(5.0), 1e-9, Seconds::new(1e7))
            .expect("settles");
        let r = step_adaptive(&mut net, Seconds::new(3600.0), 0.1);
        assert_eq!(r.steps_taken, 2, "no subdivision needed at equilibrium");
        assert!(r.max_error_k < 0.1);
    }

    #[test]
    #[should_panic(expected = "tolerance must be positive")]
    fn zero_tolerance_panics() {
        let mut net = stiff_rig();
        step_adaptive(&mut net, Seconds::new(1.0), 0.0);
    }

    #[test]
    fn time_advances_by_exactly_dt() {
        let mut net = stiff_rig();
        let t0 = net.time().value();
        step_adaptive(&mut net, Seconds::new(600.0), 0.05);
        assert!((net.time().value() - t0 - 600.0).abs() < 1e-6);
    }
}
