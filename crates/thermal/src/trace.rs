//! Time-series recording and comparison for model validation.
//!
//! The paper's Figure 4 compares transient temperature traces (real server
//! vs. Icepak, wax vs. placebo) and reports a steady-state mean difference
//! of 0.22 °C. [`TraceRecorder`] captures named series during a simulation;
//! [`compare`] computes the agreement statistics.

use std::collections::BTreeMap;
use tts_units::Seconds;

/// A set of named time series recorded from a simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceRecorder {
    series: BTreeMap<String, Vec<(f64, f64)>>,
}

tts_units::derive_json! { struct TraceRecorder { series } }

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `(time, value)` sample to the named series.
    pub fn record(&mut self, name: &str, time: Seconds, value: f64) {
        self.series
            .entry(name.to_string())
            .or_default()
            .push((time.value(), value));
    }

    /// The samples of a series, or an empty slice if never recorded.
    pub fn series(&self, name: &str) -> &[(f64, f64)] {
        self.series.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Just the values of a series.
    pub fn values(&self, name: &str) -> Vec<f64> {
        self.series(name).iter().map(|&(_, v)| v).collect()
    }

    /// Names of all recorded series, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// Number of samples in a series.
    pub fn len(&self, name: &str) -> usize {
        self.series(name).len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Restricts a series to samples with `t0 <= time < t1` and returns
    /// the values.
    pub fn window(&self, name: &str, t0: Seconds, t1: Seconds) -> Vec<f64> {
        self.series(name)
            .iter()
            .filter(|(t, _)| *t >= t0.value() && *t < t1.value())
            .map(|&(_, v)| v)
            .collect()
    }
}

/// Agreement statistics between two equal-length sampled traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceComparison {
    /// Root-mean-square error.
    pub rmse: f64,
    /// Mean of `a − b` (the paper's "mean difference" metric).
    pub mean_difference: f64,
    /// Largest absolute pointwise difference.
    pub max_abs_difference: f64,
    /// Pearson correlation coefficient (NaN for constant traces).
    pub correlation: f64,
}

tts_units::derive_json! { struct TraceComparison { rmse, mean_difference, max_abs_difference, correlation } }

/// Compares two traces sample-by-sample.
///
/// # Panics
/// Panics if the traces differ in length or are empty — comparison of
/// mismatched validation runs is a harness bug, not a data condition.
pub fn compare(a: &[f64], b: &[f64]) -> TraceComparison {
    assert_eq!(
        a.len(),
        b.len(),
        "trace length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    assert!(!a.is_empty(), "cannot compare empty traces");
    let n = a.len() as f64;
    let mut sq = 0.0;
    let mut diff_sum = 0.0;
    let mut max_abs: f64 = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let d = x - y;
        sq += d * d;
        diff_sum += d;
        max_abs = max_abs.max(d.abs());
    }
    let mean_a = a.iter().sum::<f64>() / n;
    let mean_b = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - mean_a) * (y - mean_b);
        var_a += (x - mean_a) * (x - mean_a);
        var_b += (y - mean_b) * (y - mean_b);
    }
    TraceComparison {
        rmse: (sq / n).sqrt(),
        mean_difference: diff_sum / n,
        max_abs_difference: max_abs,
        correlation: cov / (var_a.sqrt() * var_b.sqrt()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tts_rng::prop::prelude::*;

    #[test]
    fn identical_traces_compare_perfectly() {
        let a = vec![1.0, 2.0, 3.0, 2.0];
        let c = compare(&a, &a);
        assert_eq!(c.rmse, 0.0);
        assert_eq!(c.mean_difference, 0.0);
        assert_eq!(c.max_abs_difference, 0.0);
        assert!((c.correlation - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_offset_shows_in_mean_difference() {
        let a = vec![10.0, 11.0, 12.0];
        let b = vec![10.22, 11.22, 12.22];
        let c = compare(&b, &a);
        assert!((c.mean_difference - 0.22).abs() < 1e-12);
        assert!((c.rmse - 0.22).abs() < 1e-12);
        assert!((c.correlation - 1.0).abs() < 1e-12);
    }

    #[test]
    fn anticorrelated_traces() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![3.0, 2.0, 1.0];
        let c = compare(&a, &b);
        assert!((c.correlation + 1.0).abs() < 1e-12);
    }

    #[test]
    fn recorder_round_trips_series() {
        let mut r = TraceRecorder::new();
        r.record("outlet", Seconds::new(0.0), 25.0);
        r.record("outlet", Seconds::new(60.0), 26.0);
        r.record("cpu", Seconds::new(0.0), 42.0);
        assert_eq!(r.series("outlet"), &[(0.0, 25.0), (60.0, 26.0)]);
        assert_eq!(r.values("cpu"), vec![42.0]);
        assert_eq!(r.names(), vec!["cpu", "outlet"]);
        assert_eq!(r.len("outlet"), 2);
        assert!(!r.is_empty());
        assert!(r.series("nonexistent").is_empty());
    }

    #[test]
    fn window_filters_by_time() {
        let mut r = TraceRecorder::new();
        for i in 0..10 {
            r.record("t", Seconds::new(i as f64 * 100.0), i as f64);
        }
        let w = r.window("t", Seconds::new(200.0), Seconds::new(500.0));
        assert_eq!(w, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        compare(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_traces_panic() {
        compare(&[], &[]);
    }

    proptest! {
        #[test]
        fn rmse_bounds_mean_difference(
            a in collection::vec(-100.0f64..100.0, 1..50),
            offset in -10.0f64..10.0,
        ) {
            let b: Vec<f64> = a.iter().map(|v| v + offset).collect();
            let c = compare(&a, &b);
            prop_assert!(c.mean_difference.abs() <= c.rmse + 1e-9);
            prop_assert!(c.rmse <= c.max_abs_difference + 1e-9);
        }
    }
}
