//! A lumped-parameter thermal/airflow simulator — the CFD surrogate.
//!
//! The paper models servers (and wax inside them) with ANSYS Icepak, a
//! commercial computational fluid dynamics package. This crate is the
//! open substitute: a compact-model simulator in the HotSpot tradition that
//! reproduces the aggregate quantities the paper's scale-out study actually
//! consumes:
//!
//! * steady-state air and component temperatures vs. dissipated power,
//! * transient heat-up / cool-down behaviour with and without wax,
//! * outlet/CPU temperature response to airflow blockage (fan operating
//!   points against system impedance),
//! * melt/freeze rates of wax enclosures coupled to the air stream.
//!
//! # Architecture
//!
//! * [`network`] — the RC **thermal network**: capacitive nodes (solids),
//!   quasi-steady air nodes solved algebraically each step (removing the
//!   stiffness of tiny air heat capacities), fixed-temperature boundary
//!   nodes, conductance edges, directional advection (ṁ·cp) edges along the
//!   air path, and attached PCM elements.
//! * [`linalg`] — the small dense LU solver behind the air solve.
//! * [`airflow`] — fan P–Q curves vs. system impedance: computes the
//!   operating point as blockage (wax boxes, grilles) is inserted, and the
//!   local air velocity through the constriction.
//! * [`convection`] — forced-convection film coefficients h(v).
//! * [`integrator`] — exponential-Euler (default), RK4 and explicit-Euler
//!   integrators for the capacitive nodes (the ablation bench compares
//!   them).
//! * [`trace`] — time-series recording and comparison (RMSE, mean
//!   difference) used by the model-validation experiment (Figure 4).
//! * [`reference`] — parameter perturbation and sensor-noise utilities for
//!   building the high-resolution "real server" stand-in.
//!
//! # Example: a heater in an air stream
//!
//! ```
//! use tts_thermal::network::ThermalNetwork;
//! use tts_units::{Celsius, CubicMetersPerSecond, JoulesPerKelvin, Seconds,
//!                 Watts, WattsPerKelvin, air_heat_capacity_flow};
//!
//! let mut net = ThermalNetwork::new();
//! let inlet = net.add_boundary("inlet", Celsius::new(25.0));
//! let air = net.add_air("air", Celsius::new(25.0));
//! let outlet = net.add_boundary("outlet", Celsius::new(25.0));
//! let cpu = net.add_capacitive("cpu", JoulesPerKelvin::new(500.0), Celsius::new(25.0));
//!
//! let mcp = air_heat_capacity_flow(CubicMetersPerSecond::new(0.02));
//! net.advect(inlet, air, mcp);
//! net.advect(air, outlet, mcp);
//! net.connect(cpu, air, WattsPerKelvin::new(2.0));
//! net.set_power(cpu, Watts::new(46.0));
//!
//! for _ in 0..5000 { net.step(Seconds::new(10.0)); }
//!
//! // At steady state all 46 W leave through the air stream:
//! // T_air = 25 + 46/mcp, T_cpu = T_air + 46/2.
//! let t_air = net.temperature(air).value();
//! let t_cpu = net.temperature(cpu).value();
//! assert!((t_air - (25.0 + 46.0 / mcp.value())).abs() < 0.05);
//! assert!((t_cpu - (t_air + 23.0)).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod airflow;
pub mod audit;
pub mod convection;
pub mod integrator;
pub mod linalg;
pub mod network;
pub mod reference;
pub mod steady;
pub mod trace;

pub use adaptive::{step_adaptive, AdaptiveReport};
pub use airflow::{FanCurve, FlowPath, OperatingPoint};
pub use audit::{audit, AuditFinding};
pub use integrator::Integrator;
pub use network::{
    AdvectionId, BoundaryControls, BoundaryFault, EdgeId, NodeId, PcmId, ThermalNetwork,
};
pub use steady::{solve_steady_state, SteadyState};
pub use trace::{compare, TraceComparison, TraceRecorder};
