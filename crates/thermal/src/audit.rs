//! Topology and conservation audits for thermal networks.
//!
//! A miswired network produces plausible-looking garbage (an air node with
//! no outflow silently accumulates advected enthalpy in the quasi-steady
//! solve). [`audit`] catches the structural mistakes before any physics
//! runs; server-model construction is tested against it.

use crate::network::ThermalNetwork;
use crate::steady::solve_steady_state;

/// A structural problem found in a network.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditFinding {
    /// An air node's advective inflow and outflow differ by more than 0.1 %
    /// — mass is not conserved through it.
    FlowImbalance {
        /// Node name.
        node: String,
        /// Total inflow, W/K.
        inflow: f64,
        /// Total outflow, W/K.
        outflow: f64,
    },
    /// A non-boundary node has no thermal connection to any boundary, so
    /// its steady state is undefined.
    Unanchored {
        /// Node name.
        node: String,
    },
    /// The network has no boundary node at all: injected heat has nowhere
    /// to go.
    NoBoundary,
}

impl core::fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AuditFinding::FlowImbalance {
                node,
                inflow,
                outflow,
            } => write!(
                f,
                "air node '{node}' violates flow continuity: {inflow:.3} W/K in vs {outflow:.3} W/K out"
            ),
            AuditFinding::Unanchored { node } => {
                write!(f, "node '{node}' has no path to any boundary")
            }
            AuditFinding::NoBoundary => write!(f, "network has no boundary node"),
        }
    }
}

/// Audits a network; an empty result means structurally sound.
#[allow(clippy::needless_range_loop)] // index loops mirror the math
pub fn audit(net: &ThermalNetwork) -> Vec<AuditFinding> {
    let n = net.node_count();
    let mut findings = Vec::new();

    let boundaries: Vec<usize> = (0..n).filter(|&i| net.is_boundary_index(i)).collect();
    if boundaries.is_empty() {
        findings.push(AuditFinding::NoBoundary);
    }

    // Flow continuity at interior air nodes (boundaries source/sink air).
    for i in 0..n {
        if !net.is_air_index(i) {
            continue;
        }
        let inflow: f64 = net.advection_inflows(i).iter().map(|(_, m)| m).sum();
        let outflow: f64 = net.advection_outflows(i).iter().map(|(_, m)| m).sum();
        if inflow == 0.0 && outflow == 0.0 {
            continue; // not part of an air path; conduction-only is fine
        }
        let scale = inflow.max(outflow).max(1e-12);
        if (inflow - outflow).abs() / scale > 1e-3 {
            findings.push(AuditFinding::FlowImbalance {
                node: net.node_name_index(i).to_string(),
                inflow,
                outflow,
            });
        }
    }

    // Anchoring: BFS from all boundaries over conductances + advection
    // (either direction — heat can reach a boundary downstream).
    let mut reachable = vec![false; n];
    let mut queue: Vec<usize> = boundaries.clone();
    for &b in &boundaries {
        reachable[b] = true;
    }
    while let Some(i) = queue.pop() {
        let mut neighbors: Vec<usize> = net
            .conductance_neighbors(i)
            .iter()
            .map(|&(j, _)| j)
            .collect();
        neighbors.extend(net.advection_inflows(i).iter().map(|&(j, _)| j));
        neighbors.extend(net.advection_outflows(i).iter().map(|&(j, _)| j));
        for j in neighbors {
            if !reachable[j] {
                reachable[j] = true;
                queue.push(j);
            }
        }
    }
    for i in 0..n {
        if !reachable[i] && !net.is_boundary_index(i) {
            findings.push(AuditFinding::Unanchored {
                node: net.node_name_index(i).to_string(),
            });
        }
    }

    findings
}

/// The residual of the global steady-state energy balance: total injected
/// power minus heat crossing into boundaries at the directly-solved
/// equilibrium, W. Near zero for a sound network.
pub fn steady_state_residual(net: &ThermalNetwork) -> Option<f64> {
    let steady = solve_steady_state(net)?;
    let n = net.node_count();
    let mut into_boundaries = 0.0;
    for b in (0..n).filter(|&i| net.is_boundary_index(i)) {
        let t_b = net.temperature_index(b);
        for (j, g) in net.conductance_neighbors(b) {
            into_boundaries += g * (steady.temperature(raw(j, net)).value() - t_b);
        }
        for (j, mcp) in net.advection_inflows(b) {
            // Enthalpy delivered relative to this boundary's temperature.
            into_boundaries += mcp * (steady.temperature(raw(j, net)).value() - t_b);
        }
    }
    let injected: f64 = (0..n).map(|i| net.power_index(i)).sum();
    Some(injected - into_boundaries)
}

/// Rebuilds a `NodeId` from a raw index (audit-internal).
fn raw(i: usize, _net: &ThermalNetwork) -> crate::network::NodeId {
    crate::network::NodeId::from_index(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tts_units::{Celsius, JoulesPerKelvin, Watts, WattsPerKelvin};

    #[test]
    fn sound_network_passes() {
        let mut net = ThermalNetwork::new();
        let inlet = net.add_boundary("inlet", Celsius::new(25.0));
        let air = net.add_air("air", Celsius::new(25.0));
        let outlet = net.add_boundary("outlet", Celsius::new(25.0));
        net.advect(inlet, air, WattsPerKelvin::new(10.0));
        net.advect(air, outlet, WattsPerKelvin::new(10.0));
        let cpu = net.add_capacitive("cpu", JoulesPerKelvin::new(100.0), Celsius::new(25.0));
        net.connect(cpu, air, WattsPerKelvin::new(2.0));
        net.set_power(cpu, Watts::new(50.0));
        assert!(audit(&net).is_empty());
        let residual = steady_state_residual(&net).unwrap();
        assert!(residual.abs() < 1e-6, "residual {residual}");
    }

    #[test]
    fn flow_imbalance_is_caught() {
        let mut net = ThermalNetwork::new();
        let inlet = net.add_boundary("inlet", Celsius::new(25.0));
        let air = net.add_air("leaky air", Celsius::new(25.0));
        let outlet = net.add_boundary("outlet", Celsius::new(25.0));
        net.advect(inlet, air, WattsPerKelvin::new(10.0));
        net.advect(air, outlet, WattsPerKelvin::new(6.0)); // 40 % vanishes
        let findings = audit(&net);
        assert!(findings
            .iter()
            .any(|f| matches!(f, AuditFinding::FlowImbalance { .. })));
        let msg = findings[0].to_string();
        assert!(msg.contains("leaky air"), "{msg}");
    }

    #[test]
    fn unanchored_node_is_caught() {
        let mut net = ThermalNetwork::new();
        net.add_boundary("amb", Celsius::new(25.0));
        net.add_capacitive("floating", JoulesPerKelvin::new(10.0), Celsius::new(40.0));
        let findings = audit(&net);
        assert!(findings
            .iter()
            .any(|f| matches!(f, AuditFinding::Unanchored { .. })));
    }

    #[test]
    fn boundary_free_network_is_caught() {
        let mut net = ThermalNetwork::new();
        let a = net.add_capacitive("a", JoulesPerKelvin::new(10.0), Celsius::new(40.0));
        let b = net.add_capacitive("b", JoulesPerKelvin::new(10.0), Celsius::new(30.0));
        net.connect(a, b, WattsPerKelvin::new(1.0));
        let findings = audit(&net);
        assert!(findings.contains(&AuditFinding::NoBoundary));
    }

    #[test]
    fn conduction_only_air_node_is_not_a_flow_violation() {
        let mut net = ThermalNetwork::new();
        let amb = net.add_boundary("amb", Celsius::new(25.0));
        let pocket = net.add_air("still pocket", Celsius::new(25.0));
        net.connect(pocket, amb, WattsPerKelvin::new(0.5));
        assert!(audit(&net).is_empty());
    }
}
