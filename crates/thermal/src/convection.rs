//! Forced-convection film coefficients.
//!
//! The wax boxes and heat sinks couple to the air stream through a film
//! coefficient that grows with local velocity. We use the standard
//! flat-plate forced-convection power law `h = h_nat + c·v^0.8` — the same
//! correlation family CFD packages fall back to for compact models — with
//! coefficients chosen for small-channel server airflow.

use tts_units::{MetersPerSecond, WattsPerSquareMeterKelvin};

/// Still-air (natural convection) floor, W/(m²·K).
pub const NATURAL_H: f64 = 5.0;

/// Forced-convection coefficient for `v^0.8` growth, W/(m²·K)/(m/s)^0.8.
pub const FORCED_COEFF: f64 = 13.0;

/// Film coefficient for air moving at `v` over a surface.
///
/// ```
/// use tts_thermal::convection::film_coefficient;
/// use tts_units::MetersPerSecond;
///
/// let still = film_coefficient(MetersPerSecond::ZERO);
/// let breezy = film_coefficient(MetersPerSecond::new(3.0));
/// assert!(breezy.value() > 5.0 * still.value() / 2.0);
/// ```
pub fn film_coefficient(v: MetersPerSecond) -> WattsPerSquareMeterKelvin {
    let v = v.value().max(0.0);
    WattsPerSquareMeterKelvin::new(NATURAL_H + FORCED_COEFF * v.powf(0.8))
}

/// Velocity scaling for a finned heat sink's thermal resistance: the
/// sink-to-air conductance scales with the same `v^0.8` law, normalized to
/// 1.0 at the reference velocity.
///
/// Used to degrade CPU cooling as blockage reduces flow (Figure 7's rising
/// CPU temperatures).
pub fn sink_conductance_scale(v: MetersPerSecond, v_ref: MetersPerSecond) -> f64 {
    let vr = v_ref.value().max(1e-6);
    let scale = (v.value().max(0.0) / vr).powf(0.8);
    // Even in stalled flow some conduction/natural convection remains.
    scale.max(0.05)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tts_rng::prop::prelude::*;

    #[test]
    fn still_air_gives_natural_floor() {
        assert_eq!(film_coefficient(MetersPerSecond::ZERO).value(), NATURAL_H);
    }

    #[test]
    fn typical_server_velocities_give_sane_film() {
        // 1–4 m/s duct velocities → h in the 15–60 W/(m²·K) range.
        let h1 = film_coefficient(MetersPerSecond::new(1.0)).value();
        let h4 = film_coefficient(MetersPerSecond::new(4.0)).value();
        assert!((10.0..30.0).contains(&h1), "{h1}");
        assert!((30.0..70.0).contains(&h4), "{h4}");
    }

    #[test]
    fn sink_scale_is_unity_at_reference() {
        let v = MetersPerSecond::new(2.5);
        assert!((sink_conductance_scale(v, v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sink_scale_has_a_floor() {
        let s = sink_conductance_scale(MetersPerSecond::ZERO, MetersPerSecond::new(2.5));
        assert_eq!(s, 0.05);
    }

    proptest! {
        #[test]
        fn film_is_monotone_in_velocity(a in 0.0f64..20.0, b in 0.0f64..20.0) {
            let ha = film_coefficient(MetersPerSecond::new(a)).value();
            let hb = film_coefficient(MetersPerSecond::new(b)).value();
            if a < b {
                prop_assert!(ha <= hb);
            }
        }

        #[test]
        fn sink_scale_in_unit_band(v in 0.0f64..10.0) {
            let s = sink_conductance_scale(
                MetersPerSecond::new(v), MetersPerSecond::new(2.5));
            prop_assert!(s >= 0.05);
            prop_assert!(s.is_finite());
        }
    }
}
