//! The RC thermal network with quasi-steady air nodes and PCM elements.

use crate::integrator::{rk4_step_with, Integrator, Rk4Scratch};
use crate::linalg::Matrix;
use tts_obs::{Counter, Histogram, MetricsSink};
use tts_pcm::PcmState;
use tts_units::{Celsius, JoulesPerKelvin, Seconds, Watts, WattsPerKelvin};

/// Sentinel for "this node has no column in the dense air/solid maps".
const NO_COL: usize = usize::MAX;

/// Bucket edges for the settle-iteration histogram: decade-ish spacing
/// covering "converged immediately" through "hit max_time".
const SETTLE_EDGES: [f64; 10] = [
    10.0, 30.0, 100.0, 300.0, 1_000.0, 3_000.0, 10_000.0, 30_000.0, 100_000.0, 300_000.0,
];

/// Resolved metric handles for the network hot paths (disabled no-ops by
/// default). All three are thread-invariant totals, so they register as
/// [`tts_obs::Determinism::Deterministic`]: step and rebuild counts are
/// relaxed-add totals that commute, and each settle-iteration observation
/// is a per-call value independent of how sweeps are partitioned.
#[derive(Debug, Clone, Default)]
struct NetObs {
    steps: Counter,
    rebuilds: Counter,
    settle_iterations: Histogram,
}

/// Handle to a node in a [`ThermalNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// The raw node index (for crate-internal solvers/audits).
    pub(crate) fn index(self) -> usize {
        self.0
    }

    /// Rebuilds a handle from a raw index (crate-internal).
    pub(crate) fn from_index(i: usize) -> Self {
        NodeId(i)
    }
}

/// Handle to a PCM element attached to a network node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PcmId(usize);

/// Handle to an advection (air-stream) edge, used to change flow at runtime
/// (fan speed steps, blockage changes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AdvectionId(usize);

/// Handle to a conductance edge, used to change coupling at runtime
/// (heat-sink conductance degrading as airflow drops).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(usize);

#[derive(Debug, Clone, Copy, PartialEq)]
enum NodeKind {
    /// A solid with thermal mass (J/K). Integrated in time.
    Capacitive { capacitance: f64 },
    /// An air volume, solved quasi-steadily each step.
    Air,
    /// A fixed-temperature boundary (inlet air, ambient, exhaust sink).
    Boundary,
}

#[derive(Debug, Clone)]
struct Node {
    name: String,
    kind: NodeKind,
    temp: f64,
    power: f64,
}

#[derive(Debug, Clone, Copy)]
struct Edge {
    a: usize,
    b: usize,
    g: f64,
}

#[derive(Debug, Clone, Copy)]
struct Advection {
    from: usize,
    to: usize,
    mcp: f64,
}

#[derive(Debug, Clone)]
struct PcmElement {
    node: usize,
    state: PcmState,
    coupling: f64,
    last_heat: f64,
}

/// Cached solver structure and scratch buffers, rebuilt lazily whenever
/// the network topology changes (`adjacency_dirty`).
///
/// The structure half (node classification, dense column maps, per-node
/// incidence lists) turns the per-step `solve_air` from O(edges ×
/// air_nodes) full scans with a fresh `HashMap` into direct indexed
/// walks. The scratch half (matrix, RHS, integrator buffers) is what
/// makes a warm stepping loop allocation-free: every buffer is grown once
/// at rebuild and recycled thereafter.
///
/// Incidence lists are built in ascending edge/advection/PCM index order
/// so per-row floating-point accumulation happens in exactly the order
/// the original full scans used — the golden-figure tests pin results to
/// the last ulp.
#[derive(Debug, Clone, Default)]
struct SolverCache {
    /// Indices of air nodes, ascending.
    air_nodes: Vec<usize>,
    /// node index → air-matrix column, [`NO_COL`] for non-air nodes.
    col_of: Vec<usize>,
    /// air column → incident edge indices, ascending.
    air_edges: Vec<Vec<usize>>,
    /// air column → advection indices flowing *into* the node, ascending.
    air_advections: Vec<Vec<usize>>,
    /// node index → attached PCM element indices, ascending.
    node_pcm: Vec<Vec<usize>>,
    /// Indices of capacitive nodes, ascending.
    solid_ids: Vec<usize>,
    /// Capacitance per solid, aligned with `solid_ids`.
    solid_caps: Vec<f64>,
    /// node index → solid column, [`NO_COL`] for non-solid nodes.
    solid_col: Vec<usize>,
    /// Air-balance matrix, refilled in place each step.
    matrix: Matrix,
    /// Air-balance RHS; holds the solved temperatures after the solve.
    rhs: Vec<f64>,
    /// Per-solid scratch (new temperatures / deltas / RK4 state).
    solid_scratch: Vec<f64>,
    /// RK4 stage buffers.
    rk4: Rk4Scratch,
    /// Previous temperatures for the steady-state convergence check.
    settle_prev: Vec<f64>,
}

/// A lumped thermal network: the Icepak substitute.
///
/// Three node kinds (capacitive solids, quasi-steady air, fixed boundaries),
/// conductance edges between any nodes, directional ṁ·cp advection edges
/// along the air path, and PCM elements attached to nodes. See the crate
/// docs for a worked example.
#[derive(Debug, Clone)]
pub struct ThermalNetwork {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    advections: Vec<Advection>,
    pcm: Vec<PcmElement>,
    integrator: Integrator,
    time: f64,
    /// node index → adjacent (edge index) list, rebuilt lazily.
    adjacency: Vec<Vec<usize>>,
    adjacency_dirty: bool,
    /// Cached solver structure + scratch, rebuilt with `adjacency`.
    cache: SolverCache,
    /// Metric handles (no-ops until [`Self::set_metrics`]). Clones of the
    /// network share the underlying cells.
    obs: NetObs,
}

impl Default for ThermalNetwork {
    fn default() -> Self {
        Self::new()
    }
}

impl ThermalNetwork {
    /// An empty network using the default (exponential-Euler) integrator.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            edges: Vec::new(),
            advections: Vec::new(),
            pcm: Vec::new(),
            integrator: Integrator::default(),
            time: 0.0,
            adjacency: Vec::new(),
            adjacency_dirty: true,
            cache: SolverCache::default(),
            obs: NetObs::default(),
        }
    }

    /// Points the network's hot-path telemetry at `sink`: `thermal.steps`
    /// and `thermal.cache_rebuilds` counters plus a
    /// `thermal.settle_iterations` histogram (steps taken per
    /// [`Self::run_to_steady_state`] call). A disabled sink (the default)
    /// detaches — every record becomes a no-op branch.
    pub fn set_metrics(&mut self, sink: &MetricsSink) {
        self.obs = NetObs {
            steps: sink.counter("thermal.steps"),
            rebuilds: sink.counter("thermal.cache_rebuilds"),
            settle_iterations: sink.histogram("thermal.settle_iterations", &SETTLE_EDGES),
        };
    }

    /// Selects the integrator for capacitive nodes.
    pub fn set_integrator(&mut self, integrator: Integrator) {
        self.integrator = integrator;
    }

    /// Adds a solid node with heat capacity `capacitance` at `initial`.
    ///
    /// # Panics
    /// Panics if the capacitance is not positive.
    pub fn add_capacitive(
        &mut self,
        name: impl Into<String>,
        capacitance: JoulesPerKelvin,
        initial: Celsius,
    ) -> NodeId {
        assert!(
            capacitance.value() > 0.0,
            "capacitance must be positive; use add_air for massless volumes"
        );
        self.push_node(
            name.into(),
            NodeKind::Capacitive {
                capacitance: capacitance.value(),
            },
            initial,
        )
    }

    /// Adds a quasi-steady air node.
    pub fn add_air(&mut self, name: impl Into<String>, initial: Celsius) -> NodeId {
        self.push_node(name.into(), NodeKind::Air, initial)
    }

    /// Adds a fixed-temperature boundary node.
    pub fn add_boundary(&mut self, name: impl Into<String>, temperature: Celsius) -> NodeId {
        self.push_node(name.into(), NodeKind::Boundary, temperature)
    }

    fn push_node(&mut self, name: String, kind: NodeKind, initial: Celsius) -> NodeId {
        self.nodes.push(Node {
            name,
            kind,
            temp: initial.value(),
            power: 0.0,
        });
        self.adjacency_dirty = true;
        NodeId(self.nodes.len() - 1)
    }

    /// Connects two nodes with a thermal conductance. Returns a handle for
    /// later adjustment via [`Self::set_conductance`].
    ///
    /// # Panics
    /// Panics on a negative conductance or a self-loop.
    pub fn connect(&mut self, a: NodeId, b: NodeId, g: WattsPerKelvin) -> EdgeId {
        assert!(g.value() >= 0.0, "conductance must be non-negative");
        assert_ne!(a, b, "self-loop conductance is meaningless");
        self.edges.push(Edge {
            a: a.0,
            b: b.0,
            g: g.value(),
        });
        self.adjacency_dirty = true;
        EdgeId(self.edges.len() - 1)
    }

    /// Updates an edge's conductance (e.g. a heat sink losing effectiveness
    /// as airflow drops).
    pub fn set_conductance(&mut self, id: EdgeId, g: WattsPerKelvin) {
        assert!(g.value() >= 0.0, "conductance must be non-negative");
        self.edges[id.0].g = g.value();
    }

    /// Adds a directional air stream carrying `mcp` (W/K) of heat-capacity
    /// flow from `from` to `to`.
    ///
    /// # Panics
    /// Panics if either endpoint is a capacitive node — advection models
    /// bulk air motion, which only makes sense between air/boundary nodes.
    pub fn advect(&mut self, from: NodeId, to: NodeId, mcp: WattsPerKelvin) -> AdvectionId {
        for (label, id) in [("from", from), ("to", to)] {
            assert!(
                !matches!(self.nodes[id.0].kind, NodeKind::Capacitive { .. }),
                "advection {label}-endpoint {:?} is a solid node",
                self.nodes[id.0].name
            );
        }
        assert!(mcp.value() >= 0.0, "advective flow must be non-negative");
        self.advections.push(Advection {
            from: from.0,
            to: to.0,
            mcp: mcp.value(),
        });
        self.adjacency_dirty = true;
        AdvectionId(self.advections.len() - 1)
    }

    /// Attaches a PCM element to a node through the given lumped air-to-wax
    /// conductance. Returns a handle for querying the wax state.
    pub fn attach_pcm(&mut self, node: NodeId, state: PcmState, coupling: WattsPerKelvin) -> PcmId {
        assert!(coupling.value() >= 0.0, "PCM coupling must be non-negative");
        self.pcm.push(PcmElement {
            node: node.0,
            state,
            coupling: coupling.value(),
            last_heat: 0.0,
        });
        self.adjacency_dirty = true;
        PcmId(self.pcm.len() - 1)
    }

    /// Sets the heat dissipated into a node (CPU power, drive power, ...).
    pub fn set_power(&mut self, node: NodeId, power: Watts) {
        self.nodes[node.0].power = power.value();
    }

    /// Current heat dissipated into a node.
    pub fn power(&self, node: NodeId) -> Watts {
        Watts::new(self.nodes[node.0].power)
    }

    /// Updates a boundary node's fixed temperature.
    ///
    /// # Panics
    /// Panics if the node is not a boundary.
    pub fn set_boundary_temp(&mut self, node: NodeId, temperature: Celsius) {
        assert!(
            matches!(self.nodes[node.0].kind, NodeKind::Boundary),
            "set_boundary_temp on non-boundary node {:?}",
            self.nodes[node.0].name
        );
        self.nodes[node.0].temp = temperature.value();
    }

    /// Updates the heat-capacity flow on an advection edge (fan steps,
    /// blockage changes).
    pub fn set_advection_flow(&mut self, id: AdvectionId, mcp: WattsPerKelvin) {
        assert!(mcp.value() >= 0.0, "advective flow must be non-negative");
        self.advections[id.0].mcp = mcp.value();
    }

    /// Updates a PCM element's air-to-wax coupling (convection changes with
    /// airflow).
    pub fn set_pcm_coupling(&mut self, id: PcmId, coupling: WattsPerKelvin) {
        assert!(coupling.value() >= 0.0, "PCM coupling must be non-negative");
        self.pcm[id.0].coupling = coupling.value();
    }

    /// Current temperature of a node.
    pub fn temperature(&self, node: NodeId) -> Celsius {
        Celsius::new(self.nodes[node.0].temp)
    }

    /// Node name (for reporting).
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.nodes[node.0].name
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The attached PCM state.
    pub fn pcm(&self, id: PcmId) -> &PcmState {
        &self.pcm[id.0].state
    }

    /// Heat absorbed by a PCM element during the last step (positive =
    /// melting/absorbing).
    pub fn pcm_heat_flow(&self, id: PcmId) -> Watts {
        Watts::new(self.pcm[id.0].last_heat)
    }

    /// Total heat currently absorbed by all PCM elements (W, last step).
    pub fn total_pcm_heat_flow(&self) -> Watts {
        Watts::new(self.pcm.iter().map(|p| p.last_heat).sum())
    }

    /// Simulation time.
    pub fn time(&self) -> Seconds {
        Seconds::new(self.time)
    }

    /// Advances one step with a boundary-condition fault hook applied
    /// first: the hook sees the current time and a [`BoundaryControls`]
    /// view (boundary temperatures, advection flows, injected powers,
    /// PCM couplings — not topology) and mutates whatever its fault
    /// schedule dictates. Equivalent to calling the setters by hand
    /// before [`Self::step`], but gives fault engines a typed seam that
    /// cannot touch the network structure mid-run.
    pub fn step_with(&mut self, dt: Seconds, fault: &mut dyn BoundaryFault) {
        let now = self.time();
        fault.apply(now, &mut BoundaryControls { net: self });
        self.step(dt);
    }

    fn rebuild_caches(&mut self) {
        if !self.adjacency_dirty {
            return;
        }
        // Past the early return: this counts *real* rebuilds only, not the
        // cheap dirty-flag checks every step performs.
        self.obs.rebuilds.incr();
        let n_nodes = self.nodes.len();
        self.adjacency = vec![Vec::new(); n_nodes];
        for (ei, e) in self.edges.iter().enumerate() {
            self.adjacency[e.a].push(ei);
            self.adjacency[e.b].push(ei);
        }

        let c = &mut self.cache;
        c.air_nodes.clear();
        c.solid_ids.clear();
        c.solid_caps.clear();
        c.col_of.clear();
        c.col_of.resize(n_nodes, NO_COL);
        c.solid_col.clear();
        c.solid_col.resize(n_nodes, NO_COL);
        for (i, node) in self.nodes.iter().enumerate() {
            match node.kind {
                NodeKind::Air => {
                    c.col_of[i] = c.air_nodes.len();
                    c.air_nodes.push(i);
                }
                NodeKind::Capacitive { capacitance } => {
                    c.solid_col[i] = c.solid_ids.len();
                    c.solid_ids.push(i);
                    c.solid_caps.push(capacitance);
                }
                NodeKind::Boundary => {}
            }
        }

        let n_air = c.air_nodes.len();
        c.air_edges = vec![Vec::new(); n_air];
        for (ei, e) in self.edges.iter().enumerate() {
            for node in [e.a, e.b] {
                let col = c.col_of[node];
                if col != NO_COL {
                    c.air_edges[col].push(ei);
                }
            }
        }
        c.air_advections = vec![Vec::new(); n_air];
        for (ai, adv) in self.advections.iter().enumerate() {
            let col = c.col_of[adv.to];
            if col != NO_COL {
                c.air_advections[col].push(ai);
            }
        }
        c.node_pcm = vec![Vec::new(); n_nodes];
        for (pi, p) in self.pcm.iter().enumerate() {
            c.node_pcm[p.node].push(pi);
        }

        // Pre-size every scratch buffer so the first clean step — and all
        // later ones — touch the allocator not at all.
        c.matrix.reset_zeros(n_air);
        c.rhs.clear();
        c.rhs.resize(n_air, 0.0);
        c.solid_scratch.clear();
        c.solid_scratch.reserve(c.solid_ids.len());
        c.rk4.resize(c.solid_ids.len());
        c.settle_prev.clear();
        c.settle_prev.reserve(n_nodes);

        self.adjacency_dirty = false;
    }

    /// Solves the quasi-steady air balance given current solid/boundary
    /// temperatures and PCM states, writing the solved temperatures back
    /// into the air nodes. Uses the structure and buffers in `cache`
    /// (moved out of `self` by [`Self::step`]).
    ///
    /// # Panics
    /// Panics if the air system is singular — an air node with no thermal
    /// connection at all, which is a model-construction bug.
    fn solve_air(&mut self, cache: &mut SolverCache) {
        let n = cache.air_nodes.len();
        if n == 0 {
            return;
        }
        cache.matrix.reset_zeros(n);
        cache.rhs.clear();
        cache.rhs.resize(n, 0.0);

        for r in 0..n {
            let i = cache.air_nodes[r];
            let mut diag = 0.0;
            let mut rhs_r = self.nodes[i].power;
            for &ei in &cache.air_edges[r] {
                let e = self.edges[ei];
                let other = if e.a == i { e.b } else { e.a };
                diag += e.g;
                let col = cache.col_of[other];
                if col != NO_COL {
                    cache.matrix.add(r, col, -e.g);
                } else {
                    rhs_r += e.g * self.nodes[other].temp;
                }
            }
            for &ai in &cache.air_advections[r] {
                let adv = self.advections[ai];
                diag += adv.mcp;
                let col = cache.col_of[adv.from];
                if col != NO_COL {
                    cache.matrix.add(r, col, -adv.mcp);
                } else {
                    rhs_r += adv.mcp * self.nodes[adv.from].temp;
                }
            }
            for &pi in &cache.node_pcm[i] {
                let p = &self.pcm[pi];
                diag += p.coupling;
                rhs_r += p.coupling * p.state.temperature().value();
            }
            // Each RHS entry is written exactly once: either the held
            // temperature (isolated node — accumulated power must not
            // leak in) or the accumulated source terms.
            if diag == 0.0 {
                cache.matrix.set(r, r, 1.0);
                cache.rhs[r] = self.nodes[i].temp;
            } else {
                cache.matrix.add(r, r, diag);
                cache.rhs[r] = rhs_r;
            }
        }

        assert!(
            cache.matrix.solve_in_place(&mut cache.rhs),
            "air balance singular: an air node lacks thermal connections"
        );
        for (r, &i) in cache.air_nodes.iter().enumerate() {
            self.nodes[i].temp = cache.rhs[r];
        }
    }

    /// Net conducted + PCM heat into solid node `i` at the current
    /// temperatures, W.
    ///
    /// `solid_col`/`node_pcm` come from the [`SolverCache`] (passed in
    /// because RK4 moves the cache out of `self`); `temps`, when present,
    /// overrides solid temperatures by solid column (RK4 stage states).
    fn solid_inflow(
        &self,
        i: usize,
        solid_col: &[usize],
        node_pcm: &[Vec<usize>],
        temps: Option<&[f64]>,
    ) -> f64 {
        let t_of = |node: usize| match temps {
            Some(temps) if solid_col[node] != NO_COL => temps[solid_col[node]],
            _ => self.nodes[node].temp,
        };
        let t_i = t_of(i);
        let mut q = self.nodes[i].power;
        for &ei in &self.adjacency[i] {
            let e = self.edges[ei];
            let other = if e.a == i { e.b } else { e.a };
            q += e.g * (t_of(other) - t_i);
        }
        for &pi in &node_pcm[i] {
            let p = &self.pcm[pi];
            q += p.coupling * (p.state.temperature().value() - t_i);
        }
        q
    }

    /// Advances the network by `dt`.
    ///
    /// Sequence: (1) solve air quasi-steadily, (2) integrate solid nodes,
    /// (3) step PCM elements against their node's solved temperature.
    pub fn step(&mut self, dt: Seconds) {
        let dt_s = dt.value();
        assert!(dt_s > 0.0, "step requires a positive dt");
        self.obs.steps.incr();
        self.rebuild_caches();
        // Move the cache out so its buffers can be borrowed mutably while
        // `self` is read. Should a solver panic unwind past us before the
        // restore below, the re-set dirty flag forces a clean rebuild.
        let mut cache = std::mem::take(&mut self.cache);
        self.adjacency_dirty = true;
        self.solve_air(&mut cache);

        match self.integrator {
            Integrator::ExponentialEuler => {
                cache.solid_scratch.clear();
                for (k, &i) in cache.solid_ids.iter().enumerate() {
                    let cap = cache.solid_caps[k];
                    let mut g_tot = 0.0;
                    let mut g_t_sum = 0.0;
                    for &ei in &self.adjacency[i] {
                        let e = self.edges[ei];
                        let other = if e.a == i { e.b } else { e.a };
                        g_tot += e.g;
                        g_t_sum += e.g * self.nodes[other].temp;
                    }
                    for &pi in &cache.node_pcm[i] {
                        let p = &self.pcm[pi];
                        g_tot += p.coupling;
                        g_t_sum += p.coupling * p.state.temperature().value();
                    }
                    let t = self.nodes[i].temp;
                    let t_new = if g_tot <= 0.0 {
                        t + self.nodes[i].power * dt_s / cap
                    } else {
                        let t_eq = (g_t_sum + self.nodes[i].power) / g_tot;
                        t_eq + (t - t_eq) * (-g_tot * dt_s / cap).exp()
                    };
                    cache.solid_scratch.push(t_new);
                }
                for (k, &i) in cache.solid_ids.iter().enumerate() {
                    self.nodes[i].temp = cache.solid_scratch[k];
                }
            }
            Integrator::Rk4 => {
                let SolverCache {
                    solid_ids,
                    solid_caps,
                    solid_col,
                    node_pcm,
                    solid_scratch: y,
                    rk4,
                    ..
                } = &mut cache;
                let (solid_ids, solid_caps, solid_col, node_pcm) =
                    (&*solid_ids, &*solid_caps, &*solid_col, &*node_pcm);
                y.clear();
                y.extend(solid_ids.iter().map(|&i| self.nodes[i].temp));
                let this = &*self;
                rk4_step_with(
                    |_, y, dydt| {
                        for (k, &i) in solid_ids.iter().enumerate() {
                            dydt[k] =
                                this.solid_inflow(i, solid_col, node_pcm, Some(y)) / solid_caps[k];
                        }
                    },
                    y,
                    self.time,
                    dt_s,
                    rk4,
                );
                for (k, &i) in solid_ids.iter().enumerate() {
                    self.nodes[i].temp = y[k];
                }
            }
            Integrator::ExplicitEuler => {
                cache.solid_scratch.clear();
                for (k, &i) in cache.solid_ids.iter().enumerate() {
                    let delta = self.solid_inflow(i, &cache.solid_col, &cache.node_pcm, None)
                        / cache.solid_caps[k]
                        * dt_s;
                    cache.solid_scratch.push(delta);
                }
                for (k, &i) in cache.solid_ids.iter().enumerate() {
                    self.nodes[i].temp += cache.solid_scratch[k];
                }
            }
        }

        self.cache = cache;
        self.adjacency_dirty = false;

        // PCM elements relax against their node's solved temperature.
        for p in &mut self.pcm {
            let t_node = Celsius::new(self.nodes[p.node].temp);
            let q = p.state.step(t_node, WattsPerKelvin::new(p.coupling), dt);
            p.last_heat = q.value();
        }

        self.time += dt_s;
    }

    /// Runs the network until solid temperatures change by less than
    /// `tol_k` per step (steady state), up to `max_time`. Returns the time
    /// taken to converge, or `None` if `max_time` elapsed first.
    pub fn run_to_steady_state(
        &mut self,
        dt: Seconds,
        tol_k: f64,
        max_time: Seconds,
    ) -> Option<Seconds> {
        let start = self.time;
        // Reuse one buffer for the convergence check across all steps
        // (moved out because `step` itself takes the cache).
        let mut before = std::mem::take(&mut self.cache.settle_prev);
        let mut iterations: u64 = 0;
        let result = loop {
            before.clear();
            before.extend(self.nodes.iter().map(|n| n.temp));
            self.step(dt);
            iterations += 1;
            let max_delta = self
                .nodes
                .iter()
                .zip(&before)
                .map(|(n, &b)| (n.temp - b).abs())
                .fold(0.0, f64::max);
            if max_delta < tol_k {
                break Some(Seconds::new(self.time - start));
            }
            if self.time - start >= max_time.value() {
                break None;
            }
        };
        self.cache.settle_prev = before;
        self.obs.settle_iterations.record(iterations as f64);
        result
    }

    /// Heat carried out of the system by air streams terminating at
    /// boundary nodes, measured relative to `inlet`'s temperature — the
    /// quantity a datacenter cooling system must remove.
    pub fn exhaust_heat(&self, inlet: NodeId) -> Watts {
        let t_in = self.nodes[inlet.0].temp;
        let q: f64 = self
            .advections
            .iter()
            .filter(|adv| matches!(self.nodes[adv.to].kind, NodeKind::Boundary))
            .map(|adv| adv.mcp * (self.nodes[adv.from].temp - t_in))
            .sum();
        Watts::new(q)
    }

    /// Total power currently injected into the network.
    pub fn total_power(&self) -> Watts {
        Watts::new(self.nodes.iter().map(|n| n.power).sum())
    }

    // --- Raw-index introspection (used by the direct steady-state solver
    //     and the topology audit) ---

    /// Whether node `i` is a fixed-temperature boundary.
    pub(crate) fn is_boundary_index(&self, i: usize) -> bool {
        matches!(self.nodes[i].kind, NodeKind::Boundary)
    }

    /// Whether node `i` is an air node.
    pub(crate) fn is_air_index(&self, i: usize) -> bool {
        matches!(self.nodes[i].kind, NodeKind::Air)
    }

    /// Raw temperature of node `i`.
    pub(crate) fn temperature_index(&self, i: usize) -> f64 {
        self.nodes[i].temp
    }

    /// Raw power of node `i`.
    pub(crate) fn power_index(&self, i: usize) -> f64 {
        self.nodes[i].power
    }

    /// `(neighbor, conductance)` pairs for node `i`.
    pub(crate) fn conductance_neighbors(&self, i: usize) -> Vec<(usize, f64)> {
        self.edges
            .iter()
            .filter_map(|e| {
                if e.a == i {
                    Some((e.b, e.g))
                } else if e.b == i {
                    Some((e.a, e.g))
                } else {
                    None
                }
            })
            .collect()
    }

    /// `(upstream, mcp)` pairs of air streams entering node `i`.
    pub(crate) fn advection_inflows(&self, i: usize) -> Vec<(usize, f64)> {
        self.advections
            .iter()
            .filter(|adv| adv.to == i)
            .map(|adv| (adv.from, adv.mcp))
            .collect()
    }

    /// Name of node `i` (raw-index variant for audits).
    pub(crate) fn node_name_index(&self, i: usize) -> &str {
        &self.nodes[i].name
    }

    /// `(downstream, mcp)` pairs of air streams leaving node `i`.
    pub(crate) fn advection_outflows(&self, i: usize) -> Vec<(usize, f64)> {
        self.advections
            .iter()
            .filter(|adv| adv.from == i)
            .map(|adv| (adv.to, adv.mcp))
            .collect()
    }
}

/// Restricted mutable view of a network's boundary conditions, handed
/// to [`BoundaryFault`] hooks between steps. Exposes exactly the knobs
/// a physical fault can turn — inlet temperatures, fan/airflow rates,
/// injected powers, air-to-wax couplings — and none of the topology.
pub struct BoundaryControls<'a> {
    net: &'a mut ThermalNetwork,
}

impl BoundaryControls<'_> {
    /// Overrides a boundary node's fixed temperature (inlet spikes,
    /// hot-aisle recirculation).
    ///
    /// # Panics
    /// Panics if the node is not a boundary.
    pub fn set_boundary_temp(&mut self, node: NodeId, temperature: Celsius) {
        self.net.set_boundary_temp(node, temperature);
    }

    /// Overrides the heat-capacity flow on an advection edge (fan
    /// failure, airflow blockage).
    pub fn set_advection_flow(&mut self, id: AdvectionId, mcp: WattsPerKelvin) {
        self.net.set_advection_flow(id, mcp);
    }

    /// Overrides the heat dissipated into a node (load surge, throttle).
    pub fn set_power(&mut self, node: NodeId, power: Watts) {
        self.net.set_power(node, power);
    }

    /// Overrides a PCM element's air-to-wax coupling (convection drops
    /// with airflow).
    pub fn set_pcm_coupling(&mut self, id: PcmId, coupling: WattsPerKelvin) {
        self.net.set_pcm_coupling(id, coupling);
    }

    /// Current temperature of a node (what a — possibly faulty — sensor
    /// would sample).
    pub fn temperature(&self, node: NodeId) -> Celsius {
        self.net.temperature(node)
    }
}

/// A boundary-condition fault hook applied before each
/// [`ThermalNetwork::step_with`] step. Closures implement it directly.
pub trait BoundaryFault: Send {
    /// Mutates boundary conditions for the step starting at `now`.
    fn apply(&mut self, now: Seconds, ctl: &mut BoundaryControls<'_>);
}

impl<F: FnMut(Seconds, &mut BoundaryControls<'_>) + Send> BoundaryFault for F {
    fn apply(&mut self, now: Seconds, ctl: &mut BoundaryControls<'_>) {
        self(now, ctl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tts_pcm::PcmMaterial;
    use tts_units::{air_heat_capacity_flow, CubicMetersPerSecond, Grams};

    /// inlet → air → outlet with a powered solid hanging off the air node.
    fn heater_rig(power: f64, flow: f64) -> (ThermalNetwork, NodeId, NodeId, NodeId) {
        let mut net = ThermalNetwork::new();
        let inlet = net.add_boundary("inlet", Celsius::new(25.0));
        let air = net.add_air("air", Celsius::new(25.0));
        let outlet = net.add_boundary("outlet", Celsius::new(25.0));
        let cpu = net.add_capacitive("cpu", JoulesPerKelvin::new(400.0), Celsius::new(25.0));
        let mcp = air_heat_capacity_flow(CubicMetersPerSecond::new(flow));
        net.advect(inlet, air, mcp);
        net.advect(air, outlet, mcp);
        net.connect(cpu, air, WattsPerKelvin::new(2.0));
        net.set_power(cpu, Watts::new(power));
        (net, inlet, air, cpu)
    }

    #[test]
    fn steady_state_matches_energy_balance() {
        let (mut net, inlet, air, cpu) = heater_rig(46.0, 0.02);
        net.run_to_steady_state(Seconds::new(5.0), 1e-6, Seconds::new(1e6))
            .expect("must converge");
        let mcp = air_heat_capacity_flow(CubicMetersPerSecond::new(0.02)).value();
        let t_air_expected = 25.0 + 46.0 / mcp;
        assert!((net.temperature(air).value() - t_air_expected).abs() < 1e-3);
        assert!((net.temperature(cpu).value() - (t_air_expected + 23.0)).abs() < 1e-3);
        // All injected heat leaves through the exhaust.
        assert!((net.exhaust_heat(inlet).value() - 46.0).abs() < 1e-3);
    }

    #[test]
    fn boundary_fault_hook_equals_manual_setters() {
        // Driving the inlet and power through step_with must be
        // byte-identical to calling the setters by hand.
        let spike = |t: f64| {
            if (600.0..1200.0).contains(&t) {
                45.0
            } else {
                25.0
            }
        };
        let hooked = {
            let (mut net, inlet, _, cpu) = heater_rig(46.0, 0.02);
            let mut fault = |now: Seconds, ctl: &mut BoundaryControls<'_>| {
                ctl.set_boundary_temp(inlet, Celsius::new(spike(now.value())));
            };
            for _ in 0..1800 {
                net.step_with(Seconds::new(1.0), &mut fault);
            }
            net.temperature(cpu).value()
        };
        let manual = {
            let (mut net, inlet, _, cpu) = heater_rig(46.0, 0.02);
            for i in 0..1800 {
                net.set_boundary_temp(inlet, Celsius::new(spike(i as f64)));
                net.step(Seconds::new(1.0));
            }
            net.temperature(cpu).value()
        };
        assert_eq!(hooked, manual);
        // And the spike actually propagated (CPU hotter than the calm rig).
        let calm = {
            let (mut net, _, _, cpu) = heater_rig(46.0, 0.02);
            for _ in 0..1800 {
                net.step(Seconds::new(1.0));
            }
            net.temperature(cpu).value()
        };
        assert!(hooked > calm + 1.0, "hooked {hooked} vs calm {calm}");
    }

    #[test]
    fn all_integrators_agree_at_steady_state() {
        let mut results = Vec::new();
        for integ in [
            Integrator::ExponentialEuler,
            Integrator::Rk4,
            Integrator::ExplicitEuler,
        ] {
            let (mut net, _, _, cpu) = heater_rig(46.0, 0.02);
            net.set_integrator(integ);
            for _ in 0..20_000 {
                net.step(Seconds::new(1.0));
            }
            results.push(net.temperature(cpu).value());
        }
        assert!((results[0] - results[1]).abs() < 0.01, "{results:?}");
        assert!((results[0] - results[2]).abs() < 0.01, "{results:?}");
    }

    #[test]
    fn metrics_count_steps_rebuilds_and_settles() {
        let (mut net, _, _, cpu) = heater_rig(46.0, 0.02);
        let sink = MetricsSink::fresh();
        net.set_metrics(&sink);
        net.step(Seconds::new(1.0));
        net.step(Seconds::new(1.0));
        assert_eq!(sink.counter("thermal.steps").value(), 2);
        // The first step rebuilt; the second hit the warm cache.
        assert_eq!(sink.counter("thermal.cache_rebuilds").value(), 1);
        // A topology change dirties the cache; the next step rebuilds.
        let amb = net.add_boundary("leak", Celsius::new(25.0));
        net.connect(cpu, amb, WattsPerKelvin::new(0.5));
        net.step(Seconds::new(1.0));
        assert_eq!(sink.counter("thermal.cache_rebuilds").value(), 2);
        // Settling records one histogram observation.
        net.run_to_steady_state(Seconds::new(5.0), 1e-6, Seconds::new(1e6))
            .expect("must converge");
        let snap = sink.snapshot(None, None).expect("enabled");
        let hist = snap
            .get("histograms")
            .and_then(|h| h.get("thermal.settle_iterations"))
            .expect("settle histogram present");
        assert_eq!(hist.get("total").and_then(|t| t.as_f64()), Some(1.0));
    }

    #[test]
    fn transient_follows_rc_time_constant() {
        // A single solid against a boundary: T(t) = T_eq + (T0-T_eq)e^(-t/RC).
        let mut net = ThermalNetwork::new();
        let amb = net.add_boundary("ambient", Celsius::new(20.0));
        let block = net.add_capacitive("block", JoulesPerKelvin::new(1000.0), Celsius::new(80.0));
        net.connect(block, amb, WattsPerKelvin::new(2.0));
        // tau = C/G = 500 s. After one tau the excess decays to 1/e.
        for _ in 0..100 {
            net.step(Seconds::new(5.0));
        }
        let expected = 20.0 + 60.0 * (-1.0f64).exp();
        assert!(
            (net.temperature(block).value() - expected).abs() < 0.1,
            "{} vs {}",
            net.temperature(block).value(),
            expected
        );
    }

    #[test]
    fn chained_air_nodes_accumulate_heat_downstream() {
        // inlet → a1 → a2 → outlet, heaters on both: downstream is hotter.
        let mut net = ThermalNetwork::new();
        let inlet = net.add_boundary("inlet", Celsius::new(25.0));
        let a1 = net.add_air("a1", Celsius::new(25.0));
        let a2 = net.add_air("a2", Celsius::new(25.0));
        let outlet = net.add_boundary("outlet", Celsius::new(25.0));
        let mcp = WattsPerKelvin::new(10.0);
        net.advect(inlet, a1, mcp);
        net.advect(a1, a2, mcp);
        net.advect(a2, outlet, mcp);
        net.set_power(a1, Watts::new(50.0));
        net.set_power(a2, Watts::new(50.0));
        net.step(Seconds::new(1.0));
        let t1 = net.temperature(a1).value();
        let t2 = net.temperature(a2).value();
        assert!((t1 - 30.0).abs() < 1e-9, "t1={t1}");
        assert!((t2 - 35.0).abs() < 1e-9, "t2={t2}");
    }

    #[test]
    fn pcm_on_air_node_flattens_downstream_temperature() {
        let mut with_wax = ThermalNetwork::new();
        let mut no_wax = ThermalNetwork::new();
        let build = |net: &mut ThermalNetwork| {
            let inlet = net.add_boundary("inlet", Celsius::new(25.0));
            let air = net.add_air("air", Celsius::new(25.0));
            let outlet = net.add_boundary("outlet", Celsius::new(25.0));
            let mcp = WattsPerKelvin::new(5.0);
            net.advect(inlet, air, mcp);
            net.advect(air, outlet, mcp);
            net.set_power(air, Watts::new(150.0)); // drives air to 55 °C
            air
        };
        let air_w = build(&mut with_wax);
        let air_n = build(&mut no_wax);
        let wax = PcmState::new(
            &PcmMaterial::validation_wax(),
            Grams::new(800.0),
            Celsius::new(25.0),
        );
        let id = with_wax.attach_pcm(air_w, wax, WattsPerKelvin::new(6.0));

        // During the first hour the melting wax keeps the air cooler.
        for _ in 0..720 {
            with_wax.step(Seconds::new(5.0));
            no_wax.step(Seconds::new(5.0));
        }
        let t_w = with_wax.temperature(air_w).value();
        let t_n = no_wax.temperature(air_n).value();
        assert!(
            t_w < t_n - 2.0,
            "wax should depress air temperature: {t_w} vs {t_n}"
        );
        assert!(with_wax.pcm(id).melt_fraction().value() > 0.0);
        assert!(with_wax.pcm_heat_flow(id).value() > 0.0);
    }

    #[test]
    fn pcm_heat_releases_after_load_drops() {
        let mut net = ThermalNetwork::new();
        let inlet = net.add_boundary("inlet", Celsius::new(25.0));
        let air = net.add_air("air", Celsius::new(25.0));
        let outlet = net.add_boundary("outlet", Celsius::new(25.0));
        let mcp = WattsPerKelvin::new(5.0);
        net.advect(inlet, air, mcp);
        net.advect(air, outlet, mcp);
        net.set_power(air, Watts::new(150.0));
        let wax = PcmState::new(
            &PcmMaterial::validation_wax(),
            Grams::new(800.0),
            Celsius::new(25.0),
        );
        let id = net.attach_pcm(air, wax, WattsPerKelvin::new(6.0));
        for _ in 0..2000 {
            net.step(Seconds::new(10.0));
        }
        assert!(
            net.pcm(id).melt_fraction().value() > 0.9,
            "wax should melt under load"
        );
        // Load drops: the wax releases heat (negative absorption) and the
        // outlet stays warmer than the no-wax equilibrium for a while.
        net.set_power(air, Watts::new(0.0));
        net.step(Seconds::new(10.0));
        assert!(net.pcm_heat_flow(id).value() < 0.0, "wax must release heat");
        let t_air = net.temperature(air).value();
        assert!(t_air > 25.5, "released heat must warm the air: {t_air}");
    }

    #[test]
    fn exhaust_heat_counts_all_injected_power_at_steady_state() {
        let mut net = ThermalNetwork::new();
        let inlet = net.add_boundary("inlet", Celsius::new(25.0));
        let a1 = net.add_air("a1", Celsius::new(25.0));
        let outlet = net.add_boundary("outlet", Celsius::new(25.0));
        let mcp = WattsPerKelvin::new(8.0);
        net.advect(inlet, a1, mcp);
        net.advect(a1, outlet, mcp);
        let hdd = net.add_capacitive("hdd", JoulesPerKelvin::new(200.0), Celsius::new(25.0));
        net.connect(hdd, a1, WattsPerKelvin::new(1.0));
        net.set_power(hdd, Watts::new(10.0));
        net.set_power(a1, Watts::new(30.0));
        net.run_to_steady_state(Seconds::new(5.0), 1e-7, Seconds::new(1e6))
            .unwrap();
        assert!((net.exhaust_heat(inlet).value() - 40.0).abs() < 1e-3);
        assert_eq!(net.total_power(), Watts::new(40.0));
    }

    #[test]
    fn set_advection_flow_changes_operating_point() {
        let (mut net, _inlet, air, _cpu) = heater_rig(46.0, 0.02);
        net.run_to_steady_state(Seconds::new(5.0), 1e-6, Seconds::new(1e6))
            .unwrap();
        let t_before = net.temperature(air).value();
        // Re-plumb with half the flow: air must run hotter. (Both edges.)
        net.set_advection_flow(
            AdvectionId(0),
            air_heat_capacity_flow(CubicMetersPerSecond::new(0.01)),
        );
        net.set_advection_flow(
            AdvectionId(1),
            air_heat_capacity_flow(CubicMetersPerSecond::new(0.01)),
        );
        net.run_to_steady_state(Seconds::new(5.0), 1e-6, Seconds::new(1e6))
            .unwrap();
        // Halving mcp doubles the air temperature rise above the inlet
        // (from ~2 K to ~4 K for 46 W).
        assert!(net.temperature(air).value() > t_before + 1.5);
    }

    #[test]
    #[should_panic(expected = "solid node")]
    fn advection_to_solid_panics() {
        let mut net = ThermalNetwork::new();
        let air = net.add_air("air", Celsius::new(25.0));
        let solid = net.add_capacitive("s", JoulesPerKelvin::new(1.0), Celsius::new(25.0));
        net.advect(air, solid, WattsPerKelvin::new(1.0));
    }

    #[test]
    #[should_panic(expected = "capacitance must be positive")]
    fn zero_capacitance_panics() {
        let mut net = ThermalNetwork::new();
        net.add_capacitive("bad", JoulesPerKelvin::ZERO, Celsius::new(25.0));
    }

    #[test]
    fn isolated_air_node_holds_temperature() {
        let mut net = ThermalNetwork::new();
        let lonely = net.add_air("lonely", Celsius::new(33.0));
        net.step(Seconds::new(10.0));
        assert_eq!(net.temperature(lonely), Celsius::new(33.0));
    }

    #[test]
    fn isolated_air_node_with_power_holds_temperature() {
        // Regression: the isolated-node branch writes the RHS exactly
        // once — power accumulated before the isolation check must not
        // leak into the held temperature.
        let mut net = ThermalNetwork::new();
        let lonely = net.add_air("lonely", Celsius::new(33.0));
        net.set_power(lonely, Watts::new(75.0));
        for _ in 0..3 {
            net.step(Seconds::new(10.0));
        }
        assert_eq!(net.temperature(lonely), Celsius::new(33.0));
    }

    #[test]
    fn attaching_pcm_mid_run_invalidates_the_solver_cache() {
        // attach_pcm after stepping must rebuild the cached incidence
        // lists, or the new element would be invisible to the air solve.
        let (mut net, _inlet, air, _cpu) = heater_rig(46.0, 0.02);
        net.run_to_steady_state(Seconds::new(5.0), 1e-6, Seconds::new(1e6))
            .unwrap();
        let t_hot = net.temperature(air).value();
        let wax = PcmState::new(
            &PcmMaterial::validation_wax(),
            Grams::new(500.0),
            Celsius::new(25.0),
        );
        let id = net.attach_pcm(air, wax, WattsPerKelvin::new(6.0));
        net.step(Seconds::new(5.0));
        assert!(
            net.pcm_heat_flow(id).value() > 0.0,
            "cold wax on hot air must absorb heat immediately"
        );
        assert!(net.temperature(air).value() < t_hot);
    }

    #[test]
    fn adding_advection_mid_run_invalidates_the_solver_cache() {
        // advect after stepping must rebuild the cache: the extra
        // bypass stream doubles the flow and halves the temperature rise.
        let (mut net, inlet, air, _cpu) = heater_rig(46.0, 0.02);
        net.run_to_steady_state(Seconds::new(5.0), 1e-6, Seconds::new(1e6))
            .unwrap();
        let t_hot = net.temperature(air).value();
        let mcp = air_heat_capacity_flow(CubicMetersPerSecond::new(0.02));
        net.advect(inlet, air, mcp);
        net.run_to_steady_state(Seconds::new(5.0), 1e-6, Seconds::new(1e6))
            .unwrap();
        assert!(
            net.temperature(air).value() < t_hot - 0.5,
            "extra inlet flow must cool the air node"
        );
    }

    #[test]
    fn node_names_are_preserved() {
        let mut net = ThermalNetwork::new();
        let n = net.add_air("behind socket 2", Celsius::new(25.0));
        assert_eq!(net.node_name(n), "behind socket 2");
        assert_eq!(net.node_count(), 1);
    }
}
