//! Direct steady-state solution of a thermal network.
//!
//! Transient settling (`run_to_steady_state`) costs thousands of steps;
//! the steady state itself is just the solution of one linear system — at
//! equilibrium every node's heat balance is zero, so capacitances drop out
//! and solids become algebraic like the air nodes. This module solves that
//! system directly. Used to accelerate the characteristics-extraction
//! sweeps, and ablated against transient settling in the bench suite.
//!
//! PCM elements are excluded by construction: a network with latent
//! storage has no unique steady state while the wax is mid-transition, so
//! [`solve_steady_state`] treats attached PCM as absent (its long-run
//! equilibrium contribution is zero once the wax saturates at the local
//! air temperature).

use crate::linalg::Matrix;
use crate::network::{NodeId, ThermalNetwork};
use tts_units::Celsius;

/// The solved equilibrium temperatures, indexed like the network's nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct SteadyState {
    temps: Vec<f64>,
}

impl SteadyState {
    /// Temperature of a node at equilibrium.
    pub fn temperature(&self, node: NodeId) -> Celsius {
        Celsius::new(self.temps[node.index()])
    }
}

/// Solves the network's steady state directly.
///
/// Returns `None` when the system is singular — some node has no path to
/// any boundary, so its equilibrium is undefined.
#[must_use = "solving has no effect besides the returned equilibrium"]
pub fn solve_steady_state(net: &ThermalNetwork) -> Option<SteadyState> {
    let n = net.node_count();
    // Unknowns: every non-boundary node.
    let unknowns: Vec<usize> = (0..n).filter(|&i| !net.is_boundary_index(i)).collect();
    let col_of: std::collections::HashMap<usize, usize> =
        unknowns.iter().enumerate().map(|(c, &i)| (i, c)).collect();
    let m = unknowns.len();
    if m == 0 {
        return Some(SteadyState {
            temps: (0..n).map(|i| net.temperature_index(i)).collect(),
        });
    }
    let mut a = Matrix::zeros(m);
    let mut rhs = vec![0.0; m];

    for (r, &i) in unknowns.iter().enumerate() {
        let mut diag = 0.0;
        rhs[r] += net.power_index(i);
        for (other, g) in net.conductance_neighbors(i) {
            diag += g;
            if let Some(&c) = col_of.get(&other) {
                a.add(r, c, -g);
            } else {
                rhs[r] += g * net.temperature_index(other);
            }
        }
        for (upstream, mcp) in net.advection_inflows(i) {
            diag += mcp;
            if let Some(&c) = col_of.get(&upstream) {
                a.add(r, c, -mcp);
            } else {
                rhs[r] += mcp * net.temperature_index(upstream);
            }
        }
        if diag == 0.0 {
            return None;
        }
        a.add(r, r, diag);
    }

    if !a.solve_in_place(&mut rhs) {
        return None;
    }
    let mut temps: Vec<f64> = (0..n).map(|i| net.temperature_index(i)).collect();
    for (r, &i) in unknowns.iter().enumerate() {
        temps[i] = rhs[r];
    }
    Some(SteadyState { temps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tts_units::{
        air_heat_capacity_flow, CubicMetersPerSecond, JoulesPerKelvin, Seconds, Watts,
        WattsPerKelvin,
    };

    fn rig() -> (ThermalNetwork, NodeId, NodeId) {
        let mut net = ThermalNetwork::new();
        let inlet = net.add_boundary("inlet", Celsius::new(25.0));
        let air = net.add_air("air", Celsius::new(25.0));
        let outlet = net.add_boundary("outlet", Celsius::new(25.0));
        let cpu = net.add_capacitive("cpu", JoulesPerKelvin::new(500.0), Celsius::new(25.0));
        let mcp = air_heat_capacity_flow(CubicMetersPerSecond::new(0.02));
        net.advect(inlet, air, mcp);
        net.advect(air, outlet, mcp);
        net.connect(cpu, air, WattsPerKelvin::new(2.0));
        net.set_power(cpu, Watts::new(46.0));
        (net, air, cpu)
    }

    #[test]
    fn direct_solution_matches_transient_settling() {
        let (mut net, air, cpu) = rig();
        let direct = solve_steady_state(&net).expect("solvable");
        net.run_to_steady_state(Seconds::new(5.0), 1e-7, Seconds::new(1e7))
            .expect("settles");
        assert!(
            (direct.temperature(air).value() - net.temperature(air).value()).abs() < 1e-3,
            "air: direct {} vs settled {}",
            direct.temperature(air),
            net.temperature(air)
        );
        assert!(
            (direct.temperature(cpu).value() - net.temperature(cpu).value()).abs() < 1e-3,
            "cpu: direct {} vs settled {}",
            direct.temperature(cpu),
            net.temperature(cpu)
        );
    }

    #[test]
    fn matches_hand_computed_equilibrium() {
        let (net, air, cpu) = rig();
        let s = solve_steady_state(&net).unwrap();
        let mcp = air_heat_capacity_flow(CubicMetersPerSecond::new(0.02)).value();
        assert!((s.temperature(air).value() - (25.0 + 46.0 / mcp)).abs() < 1e-9);
        assert!((s.temperature(cpu).value() - (25.0 + 46.0 / mcp + 23.0)).abs() < 1e-9);
    }

    #[test]
    fn isolated_node_is_singular() {
        let mut net = ThermalNetwork::new();
        net.add_boundary("amb", Celsius::new(20.0));
        net.add_capacitive("floating", JoulesPerKelvin::new(10.0), Celsius::new(50.0));
        assert!(solve_steady_state(&net).is_none());
    }

    #[test]
    fn boundary_only_network_is_trivial() {
        let mut net = ThermalNetwork::new();
        let b = net.add_boundary("amb", Celsius::new(21.0));
        let s = solve_steady_state(&net).unwrap();
        assert_eq!(s.temperature(b), Celsius::new(21.0));
    }
}
