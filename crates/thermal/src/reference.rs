//! Utilities for the high-fidelity "real server" stand-in.
//!
//! The paper validates its Icepak model against measurements of a physical
//! Lenovo RD330 instrumented with USB temperature sensors. We do not have
//! the physical server, so the validation experiment (Figure 4) compares
//! our production model against an independently built *reference* model:
//! a more finely discretized RC network whose parameters are deterministic
//! but perturbed a few percent from the production model's (a physical
//! server never matches its datasheet exactly), read through noisy virtual
//! sensors. This module provides the perturbation and sensor-noise pieces;
//! the reference network itself is assembled in `tts-server`.

use tts_rng::{Rng, SeedableRng, Xoshiro256pp};

/// Deterministic parameter perturbation for building the reference model.
///
/// Every call to [`Perturbation::factor`] returns a multiplier drawn
/// uniformly from `[1 − scale, 1 + scale]` from a seeded stream, so the
/// reference model is reproducible while never exactly matching the
/// production model's parameters.
#[derive(Debug)]
pub struct Perturbation {
    rng: Xoshiro256pp,
    scale: f64,
}

impl Perturbation {
    /// A perturbation stream with the given seed and relative scale
    /// (e.g. `0.05` for ±5 %).
    ///
    /// # Panics
    /// Panics if `scale` is not in `[0, 1)`.
    pub fn new(seed: u64, scale: f64) -> Self {
        assert!((0.0..1.0).contains(&scale), "scale must be in [0, 1)");
        Self {
            rng: Xoshiro256pp::seed_from_u64(seed),
            scale,
        }
    }

    /// The next multiplier in `[1 − scale, 1 + scale]`.
    pub fn factor(&mut self) -> f64 {
        1.0 + self.rng.gen_range(-self.scale..=self.scale)
    }

    /// Applies the next perturbation to a value.
    pub fn apply(&mut self, value: f64) -> f64 {
        value * self.factor()
    }
}

/// A noisy virtual temperature sensor (the TEMPer1 USB probes of §3 read
/// with a few tenths of a degree of noise).
#[derive(Debug)]
pub struct SensorNoise {
    rng: Xoshiro256pp,
    sigma: f64,
    /// Cached second Box–Muller variate.
    spare: Option<f64>,
}

impl SensorNoise {
    /// Gaussian sensor noise with standard deviation `sigma` (kelvin).
    ///
    /// # Panics
    /// Panics if `sigma` is negative.
    pub fn new(seed: u64, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "noise sigma cannot be negative");
        Self {
            rng: Xoshiro256pp::seed_from_u64(seed),
            sigma,
            spare: None,
        }
    }

    /// A standard normal variate via Box–Muller (no external distribution
    /// crates).
    fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller transform on two uniforms in (0, 1].
        let u1: f64 = 1.0 - self.rng.gen::<f64>(); // avoid ln(0)
        let u2: f64 = self.rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Reads a true value through the noisy sensor.
    pub fn read(&mut self, true_value: f64) -> f64 {
        true_value + self.sigma * self.standard_normal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perturbation_is_deterministic_per_seed() {
        let mut a = Perturbation::new(42, 0.05);
        let mut b = Perturbation::new(42, 0.05);
        for _ in 0..10 {
            assert_eq!(a.factor(), b.factor());
        }
    }

    #[test]
    fn perturbation_stays_in_band() {
        let mut p = Perturbation::new(7, 0.05);
        for _ in 0..1000 {
            let f = p.factor();
            assert!((0.95..=1.05).contains(&f), "{f}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Perturbation::new(1, 0.05);
        let mut b = Perturbation::new(2, 0.05);
        let same = (0..20).filter(|_| a.factor() == b.factor()).count();
        assert!(same < 3);
    }

    #[test]
    fn sensor_noise_statistics() {
        let mut s = SensorNoise::new(123, 0.3);
        let n = 20_000;
        let readings: Vec<f64> = (0..n).map(|_| s.read(50.0)).collect();
        let mean = readings.iter().sum::<f64>() / n as f64;
        let var = readings.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.3).abs() < 0.02, "sigma {}", var.sqrt());
    }

    #[test]
    fn zero_sigma_reads_exactly() {
        let mut s = SensorNoise::new(5, 0.0);
        assert_eq!(s.read(42.0), 42.0);
    }

    #[test]
    fn apply_scales_value() {
        let mut p = Perturbation::new(9, 0.1);
        let v = p.apply(100.0);
        assert!((90.0..=110.0).contains(&v));
    }
}
