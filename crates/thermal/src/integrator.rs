//! Time integrators for the capacitive (solid) nodes.

/// The integration scheme used for capacitive nodes.
///
/// The air nodes are always solved quasi-steadily (they carry negligible
/// heat capacity compared to solids, and resolving their microsecond time
/// constants explicitly would force absurd step sizes); this enum selects
/// how the *solid* temperatures advance. The ablation bench
/// (`integrator_ablation`) compares the three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// Per-node exponential relaxation toward the local equilibrium
    /// temperature. Unconditionally stable and exact for an isolated RC
    /// node; the default.
    #[default]
    ExponentialEuler,
    /// Classic fourth-order Runge–Kutta on the coupled solid ODE system
    /// (air refrozen at step start). Most accurate per step but can go
    /// unstable for steps much longer than the smallest solid time
    /// constant.
    Rk4,
    /// Forward Euler. Cheapest and least stable; included as the ablation
    /// baseline.
    ExplicitEuler,
}

tts_units::derive_json! { enum Integrator { ExponentialEuler, Rk4, ExplicitEuler } }

/// One RK4 step of `dy/dt = f(t, y)`.
///
/// `f` fills `dydt` from `y`; scratch buffers are caller-provided so the
/// hot loop allocates nothing.
pub fn rk4_step<F>(f: F, y: &mut [f64], t: f64, dt: f64)
where
    F: Fn(f64, &[f64], &mut [f64]),
{
    let n = y.len();
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut k3 = vec![0.0; n];
    let mut k4 = vec![0.0; n];
    let mut tmp = vec![0.0; n];

    f(t, y, &mut k1);
    for i in 0..n {
        tmp[i] = y[i] + 0.5 * dt * k1[i];
    }
    f(t + 0.5 * dt, &tmp, &mut k2);
    for i in 0..n {
        tmp[i] = y[i] + 0.5 * dt * k2[i];
    }
    f(t + 0.5 * dt, &tmp, &mut k3);
    for i in 0..n {
        tmp[i] = y[i] + dt * k3[i];
    }
    f(t + dt, &tmp, &mut k4);
    for i in 0..n {
        y[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rk4_matches_exponential_decay() {
        // dy/dt = -y, y(0)=1 → y(1)=e^-1.
        let mut y = vec![1.0];
        let mut t = 0.0;
        let dt = 0.05;
        while t < 1.0 - 1e-9 {
            rk4_step(|_, y, d| d[0] = -y[0], &mut y, t, dt);
            t += dt;
        }
        assert!((y[0] - (-1.0f64).exp()).abs() < 1e-7, "{}", y[0]);
    }

    #[test]
    fn rk4_handles_coupled_system() {
        // Harmonic oscillator: energy conserved to 4th order.
        let mut y = vec![1.0, 0.0];
        let dt = 0.01;
        let mut t = 0.0;
        for _ in 0..628 {
            rk4_step(
                |_, y, d| {
                    d[0] = y[1];
                    d[1] = -y[0];
                },
                &mut y,
                t,
                dt,
            );
            t += dt;
        }
        // After ~2π the state returns to the start.
        assert!((y[0] - 1.0).abs() < 1e-3, "{:?}", y);
        assert!(y[1].abs() < 2e-2, "{:?}", y);
    }

    #[test]
    fn integrator_default_is_exponential() {
        assert_eq!(Integrator::default(), Integrator::ExponentialEuler);
    }
}
