//! Time integrators for the capacitive (solid) nodes.

/// The integration scheme used for capacitive nodes.
///
/// The air nodes are always solved quasi-steadily (they carry negligible
/// heat capacity compared to solids, and resolving their microsecond time
/// constants explicitly would force absurd step sizes); this enum selects
/// how the *solid* temperatures advance. The ablation bench
/// (`integrator_ablation`) compares the three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// Per-node exponential relaxation toward the local equilibrium
    /// temperature. Unconditionally stable and exact for an isolated RC
    /// node; the default.
    #[default]
    ExponentialEuler,
    /// Classic fourth-order Runge–Kutta on the coupled solid ODE system
    /// (air refrozen at step start). Most accurate per step but can go
    /// unstable for steps much longer than the smallest solid time
    /// constant.
    Rk4,
    /// Forward Euler. Cheapest and least stable; included as the ablation
    /// baseline.
    ExplicitEuler,
}

tts_units::derive_json! { enum Integrator { ExponentialEuler, Rk4, ExplicitEuler } }

/// Reusable scratch buffers for [`rk4_step_with`]. Holding one of these
/// across steps makes the integrator allocation-free after the first call
/// (the five stage buffers are grown once and then recycled).
#[derive(Debug, Clone, Default)]
pub struct Rk4Scratch {
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    tmp: Vec<f64>,
}

impl Rk4Scratch {
    /// Sizes every stage buffer to `n` zeroed entries. No-op on the
    /// allocator once the buffers have reached `n` capacity.
    pub fn resize(&mut self, n: usize) {
        for buf in [
            &mut self.k1,
            &mut self.k2,
            &mut self.k3,
            &mut self.k4,
            &mut self.tmp,
        ] {
            buf.clear();
            buf.resize(n, 0.0);
        }
    }
}

/// One RK4 step of `dy/dt = f(t, y)` using caller-provided scratch
/// buffers, so a hot stepping loop allocates nothing.
///
/// `f` fills `dydt` from `y`.
pub fn rk4_step_with<F>(f: F, y: &mut [f64], t: f64, dt: f64, scratch: &mut Rk4Scratch)
where
    F: Fn(f64, &[f64], &mut [f64]),
{
    let n = y.len();
    scratch.resize(n);
    let Rk4Scratch {
        k1,
        k2,
        k3,
        k4,
        tmp,
    } = scratch;

    f(t, y, &mut k1[..]);
    for i in 0..n {
        tmp[i] = y[i] + 0.5 * dt * k1[i];
    }
    f(t + 0.5 * dt, &tmp[..], &mut k2[..]);
    for i in 0..n {
        tmp[i] = y[i] + 0.5 * dt * k2[i];
    }
    f(t + 0.5 * dt, &tmp[..], &mut k3[..]);
    for i in 0..n {
        tmp[i] = y[i] + dt * k3[i];
    }
    f(t + dt, &tmp[..], &mut k4[..]);
    for i in 0..n {
        y[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
}

/// One RK4 step with freshly allocated scratch. Convenience wrapper over
/// [`rk4_step_with`] for cold paths and tests.
pub fn rk4_step<F>(f: F, y: &mut [f64], t: f64, dt: f64)
where
    F: Fn(f64, &[f64], &mut [f64]),
{
    rk4_step_with(f, y, t, dt, &mut Rk4Scratch::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rk4_matches_exponential_decay() {
        // dy/dt = -y, y(0)=1 → y(1)=e^-1.
        let mut y = vec![1.0];
        let mut t = 0.0;
        let dt = 0.05;
        while t < 1.0 - 1e-9 {
            rk4_step(|_, y, d| d[0] = -y[0], &mut y, t, dt);
            t += dt;
        }
        assert!((y[0] - (-1.0f64).exp()).abs() < 1e-7, "{}", y[0]);
    }

    #[test]
    fn rk4_handles_coupled_system() {
        // Harmonic oscillator: energy conserved to 4th order.
        let mut y = vec![1.0, 0.0];
        let dt = 0.01;
        let mut t = 0.0;
        for _ in 0..628 {
            rk4_step(
                |_, y, d| {
                    d[0] = y[1];
                    d[1] = -y[0];
                },
                &mut y,
                t,
                dt,
            );
            t += dt;
        }
        // After ~2π the state returns to the start.
        assert!((y[0] - 1.0).abs() < 1e-3, "{:?}", y);
        assert!(y[1].abs() < 2e-2, "{:?}", y);
    }

    #[test]
    fn integrator_default_is_exponential() {
        assert_eq!(Integrator::default(), Integrator::ExponentialEuler);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_buffers() {
        let run = |scratch: Option<&mut Rk4Scratch>| {
            let mut y = vec![1.0, 0.5];
            let mut t = 0.0;
            let dt = 0.05;
            match scratch {
                Some(s) => {
                    // Dirty the buffers first: a recycled scratch must not
                    // leak state between steps.
                    s.resize(7);
                    for _ in 0..20 {
                        rk4_step_with(
                            |_, y, d| {
                                d[0] = -y[0] + y[1];
                                d[1] = -y[1];
                            },
                            &mut y,
                            t,
                            dt,
                            s,
                        );
                        t += dt;
                    }
                }
                None => {
                    for _ in 0..20 {
                        rk4_step(
                            |_, y, d| {
                                d[0] = -y[0] + y[1];
                                d[1] = -y[1];
                            },
                            &mut y,
                            t,
                            dt,
                        );
                        t += dt;
                    }
                }
            }
            y
        };
        let fresh = run(None);
        let mut scratch = Rk4Scratch::default();
        let reused = run(Some(&mut scratch));
        assert_eq!(fresh[0].to_bits(), reused[0].to_bits());
        assert_eq!(fresh[1].to_bits(), reused[1].to_bits());
    }
}
