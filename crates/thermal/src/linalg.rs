//! A small dense linear solver for the quasi-steady air balance.
//!
//! Server thermal networks have tens of air nodes, so a dense LU with
//! partial pivoting is both simple and fast. No external numerics crates
//! are used anywhere in the workspace.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.n + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.n + c] = v;
    }

    /// In-place element update.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.n + c] += v;
    }

    /// Solves `A x = b` by LU decomposition with partial pivoting,
    /// consuming the matrix.
    ///
    /// Returns `None` when the matrix is numerically singular (pivot below
    /// `1e-12` in magnitude after scaling).
    ///
    /// # Panics
    /// Panics if `b.len() != n`.
    #[allow(clippy::needless_range_loop)] // index loops mirror the LU math
    pub fn solve(mut self, b: &[f64]) -> Option<Vec<f64>> {
        let n = self.n;
        assert_eq!(b.len(), n, "rhs length mismatch");
        let mut x: Vec<f64> = b.to_vec();
        let mut perm: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Partial pivot: largest magnitude in column k at/below row k.
            let mut p = k;
            let mut best = self.get(k, k).abs();
            for r in (k + 1)..n {
                let v = self.get(r, k).abs();
                if v > best {
                    best = v;
                    p = r;
                }
            }
            if best < 1e-12 {
                return None;
            }
            if p != k {
                for c in 0..n {
                    let tmp = self.get(k, c);
                    self.set(k, c, self.get(p, c));
                    self.set(p, c, tmp);
                }
                x.swap(k, p);
                perm.swap(k, p);
            }
            let pivot = self.get(k, k);
            for r in (k + 1)..n {
                let factor = self.get(r, k) / pivot;
                if factor == 0.0 {
                    continue;
                }
                for c in k..n {
                    let v = self.get(r, c) - factor * self.get(k, c);
                    self.set(r, c, v);
                }
                x[r] -= factor * x[k];
            }
        }

        // Back substitution.
        for k in (0..n).rev() {
            let mut sum = x[k];
            for c in (k + 1)..n {
                sum -= self.get(k, c) * x[c];
            }
            x[k] = sum / self.get(k, k);
        }
        Some(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tts_rng::prop::prelude::*;

    #[test]
    fn solves_identity() {
        let mut a = Matrix::zeros(3);
        for i in 0..3 {
            a.set(i, i, 1.0);
        }
        let x = a.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_known_system() {
        // [2 1; 1 3] x = [5; 10] → x = [1; 3]? 2+3=5 ✓ 1+9=10 ✓
        let mut a = Matrix::zeros(2);
        a.set(0, 0, 2.0);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(1, 1, 3.0);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivots_when_leading_zero() {
        let mut a = Matrix::zeros(2);
        a.set(0, 0, 0.0);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(1, 1, 0.0);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singularity() {
        let mut a = Matrix::zeros(2);
        a.set(0, 0, 1.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 2.0);
        a.set(1, 1, 4.0);
        assert!(a.solve(&[1.0, 2.0]).is_none());
    }

    proptest! {
        #[test]
        #[allow(clippy::needless_range_loop)]
        fn residual_is_small_for_diagonally_dominant_systems(
            n in 1usize..12,
            seed_vals in collection::vec(-1.0f64..1.0, 144 + 12),
        ) {
            // Build a strictly diagonally dominant matrix (always solvable),
            // the exact structure the air balance produces.
            let mut a = Matrix::zeros(n);
            let mut idx = 0;
            for r in 0..n {
                let mut row_sum = 0.0;
                for c in 0..n {
                    if r != c {
                        let v = seed_vals[idx % seed_vals.len()];
                        idx += 1;
                        a.set(r, c, v);
                        row_sum += v.abs();
                    }
                }
                a.set(r, r, row_sum + 1.0);
            }
            let b: Vec<f64> = (0..n).map(|i| seed_vals[(i + 77) % seed_vals.len()] * 10.0).collect();
            let a2 = a.clone();
            let x = a.solve(&b).unwrap();
            // Verify A x ≈ b.
            for r in 0..n {
                let mut dot = 0.0;
                for c in 0..n {
                    dot += a2.get(r, c) * x[c];
                }
                prop_assert!((dot - b[r]).abs() < 1e-8);
            }
        }
    }
}
