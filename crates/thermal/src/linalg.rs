//! A small dense linear solver for the quasi-steady air balance.
//!
//! Server thermal networks have tens of air nodes, so a dense LU with
//! partial pivoting is both simple and fast. No external numerics crates
//! are used anywhere in the workspace.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.n + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.n + c] = v;
    }

    /// In-place element update.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.n + c] += v;
    }

    /// Resets to an `n × n` zero matrix, reusing the existing allocation
    /// when the capacity suffices. This is what lets the air solver keep
    /// one matrix buffer alive across every step.
    pub fn reset_zeros(&mut self, n: usize) {
        self.n = n;
        self.data.clear();
        self.data.resize(n * n, 0.0);
    }

    /// Solves `A x = b` in place by LU decomposition with partial
    /// pivoting: the factorization overwrites the matrix and the solution
    /// overwrites `b`. Borrowing instead of consuming means both buffers
    /// can be reused across solves — the per-step air balance refills and
    /// re-solves the same allocation.
    ///
    /// Returns `false` when the matrix is numerically singular (pivot
    /// below `1e-12` in magnitude); `b` is then left partially modified.
    ///
    /// # Panics
    /// Panics if `b.len() != n`.
    #[must_use = "a false return means the system was singular and `b` is garbage"]
    #[allow(clippy::needless_range_loop)] // index loops mirror the LU math
    pub fn solve_in_place(&mut self, b: &mut [f64]) -> bool {
        let n = self.n;
        assert_eq!(b.len(), n, "rhs length mismatch");

        for k in 0..n {
            // Partial pivot: largest magnitude in column k at/below row k.
            let mut p = k;
            let mut best = self.get(k, k).abs();
            for r in (k + 1)..n {
                let v = self.get(r, k).abs();
                if v > best {
                    best = v;
                    p = r;
                }
            }
            if best < 1e-12 {
                return false;
            }
            if p != k {
                for c in 0..n {
                    let tmp = self.get(k, c);
                    self.set(k, c, self.get(p, c));
                    self.set(p, c, tmp);
                }
                b.swap(k, p);
            }
            let pivot = self.get(k, k);
            for r in (k + 1)..n {
                let factor = self.get(r, k) / pivot;
                if factor == 0.0 {
                    continue;
                }
                for c in k..n {
                    let v = self.get(r, c) - factor * self.get(k, c);
                    self.set(r, c, v);
                }
                b[r] -= factor * b[k];
            }
        }

        // Back substitution.
        for k in (0..n).rev() {
            let mut sum = b[k];
            for c in (k + 1)..n {
                sum -= self.get(k, c) * b[c];
            }
            b[k] = sum / self.get(k, k);
        }
        true
    }

    /// Solves `A x = b`, consuming the matrix. Thin wrapper over
    /// [`Self::solve_in_place`] for one-shot callers.
    ///
    /// Returns `None` when the matrix is numerically singular.
    ///
    /// # Panics
    /// Panics if `b.len() != n`.
    #[must_use = "solving has no effect besides the returned solution"]
    pub fn solve(mut self, b: &[f64]) -> Option<Vec<f64>> {
        let mut x: Vec<f64> = b.to_vec();
        if self.solve_in_place(&mut x) {
            Some(x)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tts_rng::prop::prelude::*;

    #[test]
    fn solves_identity() {
        let mut a = Matrix::zeros(3);
        for i in 0..3 {
            a.set(i, i, 1.0);
        }
        let mut x = [1.0, 2.0, 3.0];
        assert!(a.solve_in_place(&mut x));
        assert_eq!(x, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_known_system() {
        // [2 1; 1 3] x = [5; 10] → x = [1; 3]? 2+3=5 ✓ 1+9=10 ✓
        let mut a = Matrix::zeros(2);
        a.set(0, 0, 2.0);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(1, 1, 3.0);
        let mut x = [5.0, 10.0];
        assert!(a.solve_in_place(&mut x));
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivots_when_leading_zero() {
        let mut a = Matrix::zeros(2);
        a.set(0, 0, 0.0);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(1, 1, 0.0);
        let mut x = [2.0, 3.0];
        assert!(a.solve_in_place(&mut x));
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_in_place_matches_consuming_solve_and_reuses_buffers() {
        let mut a = Matrix::zeros(2);
        a.set(0, 0, 2.0);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(1, 1, 3.0);
        let consuming = a.clone().solve(&[5.0, 10.0]).unwrap();

        let mut b = vec![5.0, 10.0];
        assert!(a.solve_in_place(&mut b));
        assert_eq!(b, consuming, "both APIs share one code path");

        // Refill the same buffers and solve a different system.
        a.reset_zeros(2);
        a.set(0, 0, 1.0);
        a.set(1, 1, 4.0);
        b.copy_from_slice(&[7.0, 8.0]);
        assert!(a.solve_in_place(&mut b));
        assert!((b[0] - 7.0).abs() < 1e-12);
        assert!((b[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reset_zeros_changes_dimension() {
        let mut a = Matrix::zeros(3);
        a.set(2, 2, 5.0);
        a.reset_zeros(2);
        assert_eq!(a.n(), 2);
        for r in 0..2 {
            for c in 0..2 {
                assert_eq!(a.get(r, c), 0.0);
            }
        }
    }

    #[test]
    fn detects_singularity() {
        let mut a = Matrix::zeros(2);
        a.set(0, 0, 1.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 2.0);
        a.set(1, 1, 4.0);
        assert!(!a.solve_in_place(&mut [1.0, 2.0]));
    }

    proptest! {
        #[test]
        #[allow(clippy::needless_range_loop)]
        fn residual_is_small_for_diagonally_dominant_systems(
            n in 1usize..12,
            seed_vals in collection::vec(-1.0f64..1.0, 144 + 12),
        ) {
            // Build a strictly diagonally dominant matrix (always solvable),
            // the exact structure the air balance produces.
            let mut a = Matrix::zeros(n);
            let mut idx = 0;
            for r in 0..n {
                let mut row_sum = 0.0;
                for c in 0..n {
                    if r != c {
                        let v = seed_vals[idx % seed_vals.len()];
                        idx += 1;
                        a.set(r, c, v);
                        row_sum += v.abs();
                    }
                }
                a.set(r, r, row_sum + 1.0);
            }
            let b: Vec<f64> = (0..n).map(|i| seed_vals[(i + 77) % seed_vals.len()] * 10.0).collect();
            let a2 = a.clone();
            let mut x = b.clone();
            prop_assert!(a.solve_in_place(&mut x));
            // Verify A x ≈ b.
            for r in 0..n {
                let mut dot = 0.0;
                for c in 0..n {
                    dot += a2.get(r, c) * x[c];
                }
                prop_assert!((dot - b[r]).abs() < 1e-8);
            }
        }
    }
}
