//! Property tests over randomly generated thermal networks.
//!
//! The unit tests exercise hand-built topologies; these generate arbitrary
//! (but structurally sound) networks and check the physics invariants that
//! must hold for *any* of them: steady states match between the direct
//! solver and transient settling, energy balances close, and temperatures
//! stay bracketed by the boundary temperatures plus the adiabatic rise.
//!
//! Runs on the in-repo property harness (`tts_rng::prop`): each test draws
//! its `Recipe` fields from the 6-tuple strategy below and reports a
//! reproduction seed on failure (re-run with `TTS_PROP_SEED=<seed>`).

use tts_rng::prop::prelude::*;
use tts_thermal::network::ThermalNetwork;
use tts_thermal::{audit, solve_steady_state};
use tts_units::{Celsius, JoulesPerKelvin, Seconds, Watts, WattsPerKelvin};

/// A recipe for one random chain network.
#[derive(Debug, Clone)]
struct Recipe {
    air_nodes: usize,
    mcp: f64,
    solids_per_air: usize,
    sink_g: f64,
    power_each: f64,
    inlet_c: f64,
}

type RecipeTuple = (usize, f64, usize, f64, f64, f64);

/// Strategy over the raw recipe fields; [`recipe`] assembles them.
fn recipe_fields() -> impl Strategy<Value = RecipeTuple> {
    (
        1usize..6,
        2.0f64..40.0,
        0usize..3,
        0.5f64..8.0,
        0.0f64..80.0,
        15.0f64..35.0,
    )
}

fn recipe(fields: RecipeTuple) -> Recipe {
    let (air_nodes, mcp, solids_per_air, sink_g, power_each, inlet_c) = fields;
    Recipe {
        air_nodes,
        mcp,
        solids_per_air,
        sink_g,
        power_each,
        inlet_c,
    }
}

fn build(
    r: &Recipe,
) -> (
    ThermalNetwork,
    Vec<tts_thermal::NodeId>,
    f64,
    tts_thermal::NodeId,
) {
    let mut net = ThermalNetwork::new();
    let t0 = Celsius::new(r.inlet_c);
    let inlet = net.add_boundary("inlet", t0);
    let outlet = net.add_boundary("outlet", t0);
    let mcp = WattsPerKelvin::new(r.mcp);
    let mut probes = Vec::new();
    let mut prev = inlet;
    let mut total_power = 0.0;
    for i in 0..r.air_nodes {
        let air = net.add_air(format!("air{i}"), t0);
        net.advect(prev, air, mcp);
        probes.push(air);
        for s in 0..r.solids_per_air {
            let solid =
                net.add_capacitive(format!("solid{i}_{s}"), JoulesPerKelvin::new(300.0), t0);
            net.connect(solid, air, WattsPerKelvin::new(r.sink_g));
            net.set_power(solid, Watts::new(r.power_each));
            total_power += r.power_each;
            probes.push(solid);
        }
        prev = air;
    }
    net.advect(prev, outlet, mcp);
    (net, probes, total_power, inlet)
}

proptest! {
    #![cases(40)]

    #[test]
    fn random_networks_pass_the_audit(fields in recipe_fields()) {
        let r = recipe(fields);
        let (net, _, _, _) = build(&r);
        let findings = audit(&net);
        prop_assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn direct_and_transient_steady_states_agree(fields in recipe_fields()) {
        let r = recipe(fields);
        let (mut net, probes, _, _) = build(&r);
        let direct = solve_steady_state(&net).expect("sound network is solvable");
        net.run_to_steady_state(Seconds::new(10.0), 1e-7, Seconds::new(1e8))
            .expect("must settle");
        for p in &probes {
            let d = direct.temperature(*p).value();
            let t = net.temperature(*p).value();
            prop_assert!((d - t).abs() < 0.01, "node {:?}: direct {d} vs settled {t}", p);
        }
    }

    #[test]
    fn all_power_leaves_through_the_exhaust(fields in recipe_fields()) {
        let r = recipe(fields);
        let (mut net, _, total_power, inlet) = build(&r);
        net.run_to_steady_state(Seconds::new(10.0), 1e-7, Seconds::new(1e8))
            .expect("must settle");
        let exhaust = net.exhaust_heat(inlet).value();
        prop_assert!(
            (exhaust - total_power).abs() < 1e-3 * (1.0 + total_power),
            "exhaust {exhaust} vs injected {total_power}"
        );
    }

    #[test]
    fn temperatures_stay_above_the_inlet(fields in recipe_fields()) {
        let r = recipe(fields);
        let (mut net, probes, _, _) = build(&r);
        for _ in 0..200 {
            net.step(Seconds::new(30.0));
        }
        for p in &probes {
            let t = net.temperature(*p).value();
            prop_assert!(
                t >= r.inlet_c - 1e-9,
                "heating-only network cooled below its inlet: {t} < {}",
                r.inlet_c
            );
        }
    }

    #[test]
    fn steady_temperature_rise_matches_power_over_mcp(fields in recipe_fields()) {
        // The last air node's equilibrium: inlet + total_power / mcp.
        let r = recipe(fields);
        let (net, probes, total_power, _) = build(&r);
        let direct = solve_steady_state(&net).expect("solvable");
        // Find the last *air* probe: air nodes are pushed before their
        // solids, so scan for the final air by arithmetic.
        let per_air = 1 + r.solids_per_air;
        let last_air_idx = (r.air_nodes - 1) * per_air;
        let t_last = direct.temperature(probes[last_air_idx]).value();
        let expected = r.inlet_c + total_power / r.mcp;
        prop_assert!(
            (t_last - expected).abs() < 1e-6 * (1.0 + expected.abs()),
            "last air {t_last} vs expected {expected}"
        );
    }
}
