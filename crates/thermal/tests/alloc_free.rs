//! Verifies the steady-state stepping loop allocates nothing after warmup.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after one
//! warm-up step (which builds the solver cache and sizes every scratch
//! buffer) further stepping must not touch the allocator at all. This is
//! its own integration-test binary so the global allocator does not leak
//! into other tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use tts_thermal::network::ThermalNetwork;
use tts_thermal::Integrator;
use tts_units::{
    air_heat_capacity_flow, Celsius, CubicMetersPerSecond, Grams, JoulesPerKelvin, Seconds, Watts,
    WattsPerKelvin,
};

struct CountingAlloc;

thread_local! {
    /// Per-thread so concurrently running tests only count their own
    /// allocations, not each other's warmup traffic.
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    /// True while this thread's test section is being measured.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

/// Bumps this thread's allocation count while it is measuring.
/// `try_with` tolerates allocator calls during TLS teardown.
fn note_allocation() {
    let _ = COUNTING.try_with(|counting| {
        if counting.get() {
            let _ = ALLOCATIONS.try_with(|a| a.set(a.get() + 1));
        }
    });
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_allocation();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_allocation();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Counts heap allocations performed by this thread while `f` runs.
fn count_allocations(f: impl FnOnce()) -> u64 {
    COUNTING.with(|c| c.set(true));
    let before = ALLOCATIONS.with(Cell::get);
    f();
    let after = ALLOCATIONS.with(Cell::get);
    COUNTING.with(|c| c.set(false));
    after - before
}

/// inlet → air → outlet with a powered CPU and a wax element on the air
/// node: exercises the air solve, solid integration and PCM stepping.
/// Returns the network and the CPU node handle.
fn rig() -> (ThermalNetwork, tts_thermal::network::NodeId) {
    let mut net = ThermalNetwork::new();
    let inlet = net.add_boundary("inlet", Celsius::new(25.0));
    let air = net.add_air("air", Celsius::new(25.0));
    let plenum = net.add_air("plenum", Celsius::new(25.0));
    let outlet = net.add_boundary("outlet", Celsius::new(25.0));
    let cpu = net.add_capacitive("cpu", JoulesPerKelvin::new(400.0), Celsius::new(25.0));
    let hdd = net.add_capacitive("hdd", JoulesPerKelvin::new(200.0), Celsius::new(25.0));
    let mcp = air_heat_capacity_flow(CubicMetersPerSecond::new(0.02));
    net.advect(inlet, air, mcp);
    net.advect(air, plenum, mcp);
    net.advect(plenum, outlet, mcp);
    net.connect(cpu, air, WattsPerKelvin::new(2.0));
    net.connect(hdd, plenum, WattsPerKelvin::new(1.0));
    net.set_power(cpu, Watts::new(46.0));
    net.set_power(hdd, Watts::new(10.0));
    let wax = tts_pcm::PcmState::new(
        &tts_pcm::PcmMaterial::validation_wax(),
        Grams::new(500.0),
        Celsius::new(25.0),
    );
    net.attach_pcm(air, wax, WattsPerKelvin::new(6.0));
    (net, cpu)
}

#[test]
fn warm_stepping_loop_is_allocation_free() {
    for integrator in [
        Integrator::ExponentialEuler,
        Integrator::Rk4,
        Integrator::ExplicitEuler,
    ] {
        let (mut net, _cpu) = rig();
        net.set_integrator(integrator);
        // Warmup: builds the solver cache and sizes all scratch buffers.
        net.step(Seconds::new(1.0));
        let allocs = count_allocations(|| {
            for _ in 0..500 {
                net.step(Seconds::new(1.0));
            }
        });
        assert_eq!(
            allocs, 0,
            "{integrator:?}: warm step loop must not touch the allocator"
        );
    }
}

#[test]
fn warm_run_to_steady_state_is_allocation_free() {
    let (mut net, cpu) = rig();
    // Warmup: one settle pass sizes the convergence buffer too.
    net.run_to_steady_state(Seconds::new(5.0), 1e-4, Seconds::new(1e6))
        .expect("must converge");
    // Perturb the load and re-settle with the allocator watched: the
    // whole convergence loop must run on recycled buffers.
    net.set_power(cpu, Watts::new(80.0));
    let allocs = count_allocations(|| {
        net.run_to_steady_state(Seconds::new(5.0), 1e-4, Seconds::new(1e6))
            .expect("must converge");
    });
    assert_eq!(allocs, 0, "warm settle loop must not touch the allocator");
}
