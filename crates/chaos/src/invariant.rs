//! Machine-checkable invariants and the violation log.
//!
//! A [`Checker`] accumulates every check a scenario performs; a failed
//! check becomes a [`Violation`] carrying enough detail to debug it
//! after a one-line replay. Checks are cheap booleans — the detail
//! string is only rendered on failure.

use tts_units::json::{Json, ToJson};

/// One failed invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Stable invariant name (e.g. `jobs.conservation`).
    pub invariant: String,
    /// Human-readable evidence.
    pub detail: String,
}

tts_units::derive_json! { struct Violation { invariant, detail } }

/// Accumulates invariant checks for one scenario.
#[derive(Debug, Clone, Default)]
pub struct Checker {
    checks: u64,
    violations: Vec<Violation>,
}

impl Checker {
    /// A fresh checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one check; on failure, renders `detail` into a
    /// [`Violation`].
    pub fn check(&mut self, invariant: &str, ok: bool, detail: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            self.violations.push(Violation {
                invariant: invariant.to_string(),
                detail: detail(),
            });
        }
    }

    /// Like [`Self::check`] but bounded: a scenario stepping thousands
    /// of times would otherwise flood the report with one violation per
    /// step. Only the first `cap` violations of any name are kept (the
    /// check count still advances).
    pub fn check_capped(
        &mut self,
        invariant: &str,
        ok: bool,
        cap: usize,
        detail: impl FnOnce() -> String,
    ) {
        self.checks += 1;
        if !ok
            && self
                .violations
                .iter()
                .filter(|v| v.invariant == invariant)
                .count()
                < cap
        {
            self.violations.push(Violation {
                invariant: invariant.to_string(),
                detail: detail(),
            });
        }
    }

    /// Total checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// The violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Did every check pass?
    pub fn all_green(&self) -> bool {
        self.violations.is_empty()
    }

    /// Consumes the checker into `(checks, violations)`.
    pub fn into_parts(self) -> (u64, Vec<Violation>) {
        (self.checks, self.violations)
    }

    /// Merges another checker's tallies into this one.
    pub fn absorb(&mut self, other: Checker) {
        self.checks += other.checks;
        self.violations.extend(other.violations);
    }
}

impl ToJson for Checker {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("checks".to_string(), Json::Num(self.checks as f64)),
            ("violations".to_string(), self.violations.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_checks_leave_no_violations() {
        let mut c = Checker::new();
        c.check("a", true, || unreachable!("detail not rendered on pass"));
        c.check("b", true, String::new);
        assert!(c.all_green());
        assert_eq!(c.checks(), 2);
    }

    #[test]
    fn failures_carry_detail_and_cap_applies() {
        let mut c = Checker::new();
        for i in 0..10 {
            c.check_capped("soc.bounds", false, 3, || format!("step {i}"));
        }
        assert_eq!(c.checks(), 10);
        assert_eq!(c.violations().len(), 3);
        assert_eq!(c.violations()[0].detail, "step 0");
        assert!(!c.all_green());
    }

    #[test]
    fn absorb_merges_tallies() {
        let mut a = Checker::new();
        a.check("x", true, String::new);
        let mut b = Checker::new();
        b.check("y", false, || "boom".to_string());
        a.absorb(b);
        assert_eq!(a.checks(), 2);
        assert_eq!(a.violations().len(), 1);
    }
}
