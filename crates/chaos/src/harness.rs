//! The simulation-test harness: run a batch of seeded scenarios and
//! summarize them byte-deterministically.
//!
//! Mirrors the `tts_rng::prop` convention: a base seed spawns a
//! [`SplitMix64`] chain of per-scenario seeds (the base seed itself is
//! case 0), so any failing scenario replays from its printed seed with
//! `repro chaos --seed 0x…` — no dependence on batch size, thread
//! count, or position in the batch.

use crate::invariant::Violation;
use crate::scenario::{replay_command, run_scenario, ScenarioConfig, ScenarioReport};
use tts_rng::{RngCore, SplitMix64};
use tts_units::json::{Json, ToJson};

/// Batch shape: how many scenarios, from which base seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchConfig {
    /// Base seed for the scenario-seed chain.
    pub base_seed: u64,
    /// Number of scenarios to run.
    pub seeds: usize,
    /// Per-scenario shape.
    pub scenario: ScenarioConfig,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            base_seed: 0x7473_7473, // "tsts"
            seeds: 16,
            scenario: ScenarioConfig::default(),
        }
    }
}

/// The seed chain for a batch: base seed first, then SplitMix64
/// successors — identical to the `prop` harness's case chain.
pub fn seed_chain(base_seed: u64, n: usize) -> Vec<u64> {
    let mut seq = SplitMix64::new(base_seed);
    let mut seeds = Vec::with_capacity(n);
    let mut seed = base_seed;
    for _ in 0..n {
        seeds.push(seed);
        seed = seq.next_u64();
    }
    seeds
}

/// Batch outcome: per-scenario reports plus roll-up tallies.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSummary {
    /// The base seed the chain was rooted at.
    pub base_seed: u64,
    /// Scenarios run.
    pub scenarios: usize,
    /// Total invariant checks across the batch.
    pub checks: u64,
    /// Total faults injected across the batch, by kind.
    pub fault_counts: Vec<(String, u64)>,
    /// Seeds whose scenario violated an invariant, in chain order.
    pub failing_seeds: Vec<u64>,
    /// Every report, in chain order.
    pub reports: Vec<ScenarioReport>,
}

impl ChaosSummary {
    /// Did every scenario pass every invariant?
    pub fn all_green(&self) -> bool {
        self.failing_seeds.is_empty()
    }

    /// All violations across the batch, each tagged with its seed.
    pub fn violations(&self) -> Vec<(u64, &Violation)> {
        self.reports
            .iter()
            .flat_map(|r| r.violations.iter().map(move |v| (r.seed, v)))
            .collect()
    }

    /// One replay line per failing seed — the copy-paste repro block.
    pub fn replay_lines(&self) -> Vec<String> {
        self.failing_seeds
            .iter()
            .map(|s| replay_command(*s))
            .collect()
    }
}

impl ToJson for ChaosSummary {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("base_seed".to_string(), Json::Num(self.base_seed as f64)),
            ("scenarios".to_string(), Json::Num(self.scenarios as f64)),
            ("checks".to_string(), Json::Num(self.checks as f64)),
            (
                "fault_counts".to_string(),
                Json::Obj(
                    self.fault_counts
                        .iter()
                        .map(|(k, c)| (k.clone(), Json::Num(*c as f64)))
                        .collect(),
                ),
            ),
            (
                "failing_seeds".to_string(),
                Json::Arr(
                    self.failing_seeds
                        .iter()
                        .map(|s| Json::Str(format!("{s:#x}")))
                        .collect(),
                ),
            ),
            ("reports".to_string(), self.reports.to_json()),
        ])
    }
}

/// Runs `cfg.seeds` scenarios across the seed chain, in parallel via
/// [`tts_exec::par_map`] (ordered — the summary is byte-identical at
/// any `TTS_THREADS`).
pub fn run_batch(cfg: &BatchConfig) -> ChaosSummary {
    let seeds = seed_chain(cfg.base_seed, cfg.seeds);
    let scenario = cfg.scenario;
    let reports: Vec<ScenarioReport> =
        tts_exec::par_map(&seeds, move |seed| run_scenario(*seed, &scenario));
    summarize(cfg.base_seed, reports)
}

/// Rolls a list of reports (chain order) into a [`ChaosSummary`].
pub fn summarize(base_seed: u64, reports: Vec<ScenarioReport>) -> ChaosSummary {
    let checks = reports.iter().map(|r| r.checks).sum();
    let failing_seeds = reports
        .iter()
        .filter(|r| !r.all_green())
        .map(|r| r.seed)
        .collect();
    let mut fault_counts: Vec<(String, u64)> = Vec::new();
    for r in &reports {
        for (kind, count) in &r.fault_counts {
            match fault_counts.iter_mut().find(|(k, _)| k == kind) {
                Some((_, c)) => *c += count,
                None => fault_counts.push((kind.clone(), *count)),
            }
        }
    }
    ChaosSummary {
        base_seed,
        scenarios: reports.len(),
        checks,
        fault_counts,
        failing_seeds,
        reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_chain_matches_prop_convention() {
        let chain = seed_chain(7, 3);
        assert_eq!(chain[0], 7, "base seed is case 0");
        let mut seq = SplitMix64::new(7);
        assert_eq!(chain[1], seq.next_u64());
        assert_eq!(chain[2], seq.next_u64());
    }

    #[test]
    fn batch_is_deterministic_and_green() {
        let cfg = BatchConfig {
            seeds: 4,
            ..BatchConfig::default()
        };
        let a = run_batch(&cfg);
        let b = run_batch(&cfg);
        assert_eq!(
            a.to_json().to_string_pretty(),
            b.to_json().to_string_pretty()
        );
        assert!(
            a.all_green(),
            "violations: {:?}\nreplay:\n{}",
            a.violations(),
            a.replay_lines().join("\n")
        );
        assert_eq!(a.scenarios, 4);
        assert!(a.checks > 4_000, "every scenario steps thermal checks");
    }

    #[test]
    fn summarize_flags_failing_seeds_in_chain_order() {
        let cfg = ScenarioConfig::default();
        let mut r1 = run_scenario(1, &cfg);
        let mut r2 = run_scenario(2, &cfg);
        r1.violations.push(crate::invariant::Violation {
            invariant: "fake".to_string(),
            detail: "forced".to_string(),
        });
        r2.violations.push(crate::invariant::Violation {
            invariant: "fake".to_string(),
            detail: "forced".to_string(),
        });
        let s = summarize(0, vec![r1, r2]);
        assert_eq!(s.failing_seeds, vec![1, 2]);
        assert_eq!(
            s.replay_lines(),
            vec!["repro chaos --seed 0x1", "repro chaos --seed 0x2"]
        );
        assert!(!s.all_green());
        assert_eq!(s.violations().len(), 2);
    }
}
