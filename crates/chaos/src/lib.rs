//! Deterministic, seed-replayable fault injection for the thermal
//! time-shifting stack.
//!
//! A warehouse-scale computer's worst days are the interesting ones:
//! servers die mid-burst, CRAC units derate, fans stall, sensors lie,
//! load spikes. The paper's PCM thesis (§6, emergency thermal
//! management) is strongest exactly there — so this crate stress-tests
//! every simulation layer under a typed fault taxonomy and checks
//! machine-verifiable invariants after every event.
//!
//! Design rules:
//!
//! * **Everything replays from a seed.** A [`FaultPlan`] is a pure
//!   function of `(seed, PlanConfig)`; a scenario is a pure function of
//!   `(seed, ScenarioConfig)`. Failing seeds print a one-line
//!   `repro chaos --seed 0x…` replay, mirroring `tts_rng::prop`'s
//!   `TTS_PROP_SEED` machinery.
//! * **Faults enter through typed seams, not forks.** dcsim takes a
//!   [`tts_dcsim::discrete::FaultHook`], the thermal network takes a
//!   [`tts_thermal::BoundaryFault`], the ride-through solver takes a
//!   [`tts_cooling::CoolingProfile`]. The production code paths are the
//!   ones under test.
//! * **Summaries are byte-deterministic** at any `TTS_THREADS`, so the
//!   CI gate can `cmp` them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod harness;
pub mod invariant;
pub mod scenario;

pub use fault::{Fault, FaultPlan, PlanConfig};
pub use harness::{run_batch, seed_chain, summarize, BatchConfig, ChaosSummary};
pub use invariant::{Checker, Violation};
pub use scenario::{
    replay_command, run_plan, run_scenario, PlanFaultHook, ScenarioConfig, ScenarioReport,
};
