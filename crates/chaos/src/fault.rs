//! The fault taxonomy and the seed-replayable [`FaultPlan`].
//!
//! A plan is either *sampled* from the in-repo PRNG (`FaultPlan::sample`
//! — the same plan for the same seed, forever) or *parsed* from JSON
//! (`FaultPlan::from_json` — for hand-written regression scenarios).
//! Every fault is a plain data record; the injection sites live in the
//! crates they perturb (`dcsim` event hooks, `thermal`/`cooling`
//! boundary hooks, `svc` connection drivers) and this crate's
//! [`crate::scenario`] module wires plans into them.

use tts_rng::{Rng, SeedableRng, Xoshiro256pp};
use tts_units::json::{FromJson, Json, JsonError, ToJson};

/// One typed, scheduled fault. Simulation-level faults carry an onset
/// time (seconds into the scenario window); connection-level faults
/// (`SlowLoris`, `MidBodyDisconnect`, `QueueStorm`) are driven as
/// client batches against a live `ttsd` and carry client counts
/// instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// A server dies; its jobs are re-dispatched (event level, `dcsim`).
    ServerKill {
        /// Onset, seconds into the scenario.
        at_s: f64,
        /// Victim server index.
        server: usize,
    },
    /// A dead server comes back (event level, `dcsim`).
    ServerRevive {
        /// Onset, seconds into the scenario.
        at_s: f64,
        /// Server index to restore.
        server: usize,
    },
    /// CRAC/plant outage or partial derating: only `capacity_frac` of
    /// nominal cooling survives for the duration (boundary level,
    /// `cooling`).
    CoolingDerating {
        /// Onset, seconds into the scenario.
        at_s: f64,
        /// How long the derating lasts, seconds.
        duration_s: f64,
        /// Surviving fraction of plant capacity in `[0, 1]`; 0 is a
        /// total outage.
        capacity_frac: f64,
    },
    /// Fan failure: airflow collapses to `airflow_frac` of nominal
    /// (boundary level, `thermal`).
    FanFailure {
        /// Onset, seconds into the scenario.
        at_s: f64,
        /// How long the failure lasts, seconds.
        duration_s: f64,
        /// Surviving fraction of nominal airflow in `(0, 1]`.
        airflow_frac: f64,
    },
    /// Airflow blockage / recirculation spike: the inlet runs hotter by
    /// `inlet_delta_k` (boundary level, `thermal`).
    BlockageSpike {
        /// Onset, seconds into the scenario.
        at_s: f64,
        /// How long the spike lasts, seconds.
        duration_s: f64,
        /// Inlet temperature excess, K.
        inlet_delta_k: f64,
    },
    /// Gaussian noise on the control sensor (boundary level, `thermal`).
    SensorNoise {
        /// Onset, seconds into the scenario.
        at_s: f64,
        /// How long the noise lasts, seconds.
        duration_s: f64,
        /// Noise standard deviation, K.
        sigma_k: f64,
    },
    /// The control sensor freezes at a fixed reading (boundary level,
    /// `thermal`).
    SensorStuck {
        /// Onset, seconds into the scenario.
        at_s: f64,
        /// How long the sensor stays stuck, seconds.
        duration_s: f64,
        /// The frozen reading, °C.
        reading_c: f64,
    },
    /// Workload burst: offered load multiplied for the duration
    /// (trace level, `workload`).
    WorkloadBurst {
        /// Onset, seconds into the scenario.
        at_s: f64,
        /// How long the burst lasts, seconds.
        duration_s: f64,
        /// Load multiplier, ≥ 1.
        multiplier: f64,
    },
    /// Workload dropout: offered load collapses to near zero for the
    /// duration (trace level, `workload`).
    WorkloadDropout {
        /// Onset, seconds into the scenario.
        at_s: f64,
        /// How long the dropout lasts, seconds.
        duration_s: f64,
    },
    /// Slow-loris clients: headers trickled a byte at a time
    /// (connection level, `svc`).
    SlowLoris {
        /// Concurrent slow clients.
        clients: usize,
        /// Pause between bytes, ms.
        byte_gap_ms: u64,
    },
    /// Clients that advertise a body and hang up mid-way (connection
    /// level, `svc`).
    MidBodyDisconnect {
        /// Concurrent disconnecting clients.
        clients: usize,
        /// Fraction of the advertised body actually sent, in `[0, 1)`.
        body_frac: f64,
    },
    /// A burst of well-formed requests sized to saturate the bounded
    /// queue (connection level, `svc`).
    QueueStorm {
        /// Concurrent storm clients.
        clients: usize,
    },
    /// Economizer outside-air damper jams at a fixed position: the
    /// free-cooling blend is scaled by `stuck_frac` (backend level,
    /// `cooling::freecooling`).
    EconomizerDamperStuck {
        /// Onset, seconds into the scenario.
        at_s: f64,
        /// How long the damper stays jammed, seconds.
        duration_s: f64,
        /// Jammed damper position in `[0, 1]`; 0 is stuck closed
        /// (fully mechanical cooling).
        stuck_frac: f64,
    },
    /// Hot-water-loop pump derate: coolant flow (and with it the loop's
    /// heat-rejection capacity) collapses to `flow_frac` of nominal
    /// (backend level, `cooling::hotwater`).
    PumpDerate {
        /// Onset, seconds into the scenario.
        at_s: f64,
        /// How long the derate lasts, seconds.
        duration_s: f64,
        /// Surviving fraction of nominal flow in `(0, 1]`.
        flow_frac: f64,
    },
    /// The heat-reuse consumer stops taking heat (district-heat loop
    /// valve closed, adsorption chiller offline): the reuse credit
    /// vanishes for the duration (backend level, `cooling::hotwater`).
    ReuseDropout {
        /// Onset, seconds into the scenario.
        at_s: f64,
        /// How long the demand is gone, seconds.
        duration_s: f64,
    },
}

impl Fault {
    /// Stable kind tag used in JSON and summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            Fault::ServerKill { .. } => "ServerKill",
            Fault::ServerRevive { .. } => "ServerRevive",
            Fault::CoolingDerating { .. } => "CoolingDerating",
            Fault::FanFailure { .. } => "FanFailure",
            Fault::BlockageSpike { .. } => "BlockageSpike",
            Fault::SensorNoise { .. } => "SensorNoise",
            Fault::SensorStuck { .. } => "SensorStuck",
            Fault::WorkloadBurst { .. } => "WorkloadBurst",
            Fault::WorkloadDropout { .. } => "WorkloadDropout",
            Fault::SlowLoris { .. } => "SlowLoris",
            Fault::MidBodyDisconnect { .. } => "MidBodyDisconnect",
            Fault::QueueStorm { .. } => "QueueStorm",
            Fault::EconomizerDamperStuck { .. } => "EconomizerDamperStuck",
            Fault::PumpDerate { .. } => "PumpDerate",
            Fault::ReuseDropout { .. } => "ReuseDropout",
        }
    }

    /// Onset time for scheduled (simulation-level) faults; `None` for
    /// connection-level faults, which run as a separate client phase.
    pub fn at(&self) -> Option<f64> {
        match *self {
            Fault::ServerKill { at_s, .. }
            | Fault::ServerRevive { at_s, .. }
            | Fault::CoolingDerating { at_s, .. }
            | Fault::FanFailure { at_s, .. }
            | Fault::BlockageSpike { at_s, .. }
            | Fault::SensorNoise { at_s, .. }
            | Fault::SensorStuck { at_s, .. }
            | Fault::WorkloadBurst { at_s, .. }
            | Fault::WorkloadDropout { at_s, .. }
            | Fault::EconomizerDamperStuck { at_s, .. }
            | Fault::PumpDerate { at_s, .. }
            | Fault::ReuseDropout { at_s, .. } => Some(at_s),
            Fault::SlowLoris { .. }
            | Fault::MidBodyDisconnect { .. }
            | Fault::QueueStorm { .. } => None,
        }
    }
}

fn num(fields: &mut Vec<(String, Json)>, key: &str, v: f64) {
    fields.push((key.to_string(), Json::Num(v)));
}

fn get_f64(v: &Json, ty: &str, key: &str) -> Result<f64, JsonError> {
    v.get(key)
        .ok_or_else(|| JsonError::missing_field(ty, key))?
        .as_f64()
        .ok_or_else(|| JsonError::new(format!("{ty}.{key} must be a number")))
}

fn get_usize(v: &Json, ty: &str, key: &str) -> Result<usize, JsonError> {
    let n = get_f64(v, ty, key)?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(JsonError::new(format!(
            "{ty}.{key} must be a non-negative integer, got {n}"
        )));
    }
    Ok(n as usize)
}

impl ToJson for Fault {
    fn to_json(&self) -> Json {
        let mut fields = vec![("kind".to_string(), Json::Str(self.kind().to_string()))];
        match *self {
            Fault::ServerKill { at_s, server } | Fault::ServerRevive { at_s, server } => {
                num(&mut fields, "at_s", at_s);
                num(&mut fields, "server", server as f64);
            }
            Fault::CoolingDerating {
                at_s,
                duration_s,
                capacity_frac,
            } => {
                num(&mut fields, "at_s", at_s);
                num(&mut fields, "duration_s", duration_s);
                num(&mut fields, "capacity_frac", capacity_frac);
            }
            Fault::FanFailure {
                at_s,
                duration_s,
                airflow_frac,
            } => {
                num(&mut fields, "at_s", at_s);
                num(&mut fields, "duration_s", duration_s);
                num(&mut fields, "airflow_frac", airflow_frac);
            }
            Fault::BlockageSpike {
                at_s,
                duration_s,
                inlet_delta_k,
            } => {
                num(&mut fields, "at_s", at_s);
                num(&mut fields, "duration_s", duration_s);
                num(&mut fields, "inlet_delta_k", inlet_delta_k);
            }
            Fault::SensorNoise {
                at_s,
                duration_s,
                sigma_k,
            } => {
                num(&mut fields, "at_s", at_s);
                num(&mut fields, "duration_s", duration_s);
                num(&mut fields, "sigma_k", sigma_k);
            }
            Fault::SensorStuck {
                at_s,
                duration_s,
                reading_c,
            } => {
                num(&mut fields, "at_s", at_s);
                num(&mut fields, "duration_s", duration_s);
                num(&mut fields, "reading_c", reading_c);
            }
            Fault::WorkloadBurst {
                at_s,
                duration_s,
                multiplier,
            } => {
                num(&mut fields, "at_s", at_s);
                num(&mut fields, "duration_s", duration_s);
                num(&mut fields, "multiplier", multiplier);
            }
            Fault::WorkloadDropout { at_s, duration_s } => {
                num(&mut fields, "at_s", at_s);
                num(&mut fields, "duration_s", duration_s);
            }
            Fault::SlowLoris {
                clients,
                byte_gap_ms,
            } => {
                num(&mut fields, "clients", clients as f64);
                num(&mut fields, "byte_gap_ms", byte_gap_ms as f64);
            }
            Fault::MidBodyDisconnect { clients, body_frac } => {
                num(&mut fields, "clients", clients as f64);
                num(&mut fields, "body_frac", body_frac);
            }
            Fault::QueueStorm { clients } => {
                num(&mut fields, "clients", clients as f64);
            }
            Fault::EconomizerDamperStuck {
                at_s,
                duration_s,
                stuck_frac,
            } => {
                num(&mut fields, "at_s", at_s);
                num(&mut fields, "duration_s", duration_s);
                num(&mut fields, "stuck_frac", stuck_frac);
            }
            Fault::PumpDerate {
                at_s,
                duration_s,
                flow_frac,
            } => {
                num(&mut fields, "at_s", at_s);
                num(&mut fields, "duration_s", duration_s);
                num(&mut fields, "flow_frac", flow_frac);
            }
            Fault::ReuseDropout { at_s, duration_s } => {
                num(&mut fields, "at_s", at_s);
                num(&mut fields, "duration_s", duration_s);
            }
        }
        Json::Obj(fields)
    }
}

impl FromJson for Fault {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let kind = v
            .get("kind")
            .ok_or_else(|| JsonError::missing_field("Fault", "kind"))?
            .as_str()
            .ok_or_else(|| JsonError::new("Fault.kind must be a string".to_string()))?;
        match kind {
            "ServerKill" => Ok(Fault::ServerKill {
                at_s: get_f64(v, kind, "at_s")?,
                server: get_usize(v, kind, "server")?,
            }),
            "ServerRevive" => Ok(Fault::ServerRevive {
                at_s: get_f64(v, kind, "at_s")?,
                server: get_usize(v, kind, "server")?,
            }),
            "CoolingDerating" => Ok(Fault::CoolingDerating {
                at_s: get_f64(v, kind, "at_s")?,
                duration_s: get_f64(v, kind, "duration_s")?,
                capacity_frac: get_f64(v, kind, "capacity_frac")?,
            }),
            "FanFailure" => Ok(Fault::FanFailure {
                at_s: get_f64(v, kind, "at_s")?,
                duration_s: get_f64(v, kind, "duration_s")?,
                airflow_frac: get_f64(v, kind, "airflow_frac")?,
            }),
            "BlockageSpike" => Ok(Fault::BlockageSpike {
                at_s: get_f64(v, kind, "at_s")?,
                duration_s: get_f64(v, kind, "duration_s")?,
                inlet_delta_k: get_f64(v, kind, "inlet_delta_k")?,
            }),
            "SensorNoise" => Ok(Fault::SensorNoise {
                at_s: get_f64(v, kind, "at_s")?,
                duration_s: get_f64(v, kind, "duration_s")?,
                sigma_k: get_f64(v, kind, "sigma_k")?,
            }),
            "SensorStuck" => Ok(Fault::SensorStuck {
                at_s: get_f64(v, kind, "at_s")?,
                duration_s: get_f64(v, kind, "duration_s")?,
                reading_c: get_f64(v, kind, "reading_c")?,
            }),
            "WorkloadBurst" => Ok(Fault::WorkloadBurst {
                at_s: get_f64(v, kind, "at_s")?,
                duration_s: get_f64(v, kind, "duration_s")?,
                multiplier: get_f64(v, kind, "multiplier")?,
            }),
            "WorkloadDropout" => Ok(Fault::WorkloadDropout {
                at_s: get_f64(v, kind, "at_s")?,
                duration_s: get_f64(v, kind, "duration_s")?,
            }),
            "SlowLoris" => Ok(Fault::SlowLoris {
                clients: get_usize(v, kind, "clients")?,
                byte_gap_ms: get_usize(v, kind, "byte_gap_ms")? as u64,
            }),
            "MidBodyDisconnect" => Ok(Fault::MidBodyDisconnect {
                clients: get_usize(v, kind, "clients")?,
                body_frac: get_f64(v, kind, "body_frac")?,
            }),
            "QueueStorm" => Ok(Fault::QueueStorm {
                clients: get_usize(v, kind, "clients")?,
            }),
            "EconomizerDamperStuck" => Ok(Fault::EconomizerDamperStuck {
                at_s: get_f64(v, kind, "at_s")?,
                duration_s: get_f64(v, kind, "duration_s")?,
                stuck_frac: get_f64(v, kind, "stuck_frac")?,
            }),
            "PumpDerate" => Ok(Fault::PumpDerate {
                at_s: get_f64(v, kind, "at_s")?,
                duration_s: get_f64(v, kind, "duration_s")?,
                flow_frac: get_f64(v, kind, "flow_frac")?,
            }),
            "ReuseDropout" => Ok(Fault::ReuseDropout {
                at_s: get_f64(v, kind, "at_s")?,
                duration_s: get_f64(v, kind, "duration_s")?,
            }),
            other => Err(JsonError::new(format!("unknown Fault kind `{other}`"))),
        }
    }
}

/// Knobs for [`FaultPlan::sample`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanConfig {
    /// Scenario window the scheduled faults land in, seconds.
    pub window_s: f64,
    /// Cluster size (victim servers are drawn from it).
    pub servers: usize,
    /// Upper bound on sampled faults per plan (at least 1 is drawn).
    pub max_faults: usize,
}

impl Default for PlanConfig {
    fn default() -> Self {
        Self {
            window_s: 3_600.0,
            servers: 4,
            max_faults: 10,
        }
    }
}

tts_units::derive_json! { struct PlanConfig { window_s, servers, max_faults } }

/// A deterministic, replayable schedule of faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Scheduled faults, sorted by onset; connection-level faults (no
    /// onset) follow at the end.
    pub faults: Vec<Fault>,
}

tts_units::derive_json! { struct FaultPlan { faults } }

impl FaultPlan {
    /// Samples a plan from the in-repo PRNG. The same `(seed, config)`
    /// pair yields the same plan on every platform — that is the whole
    /// replay contract.
    pub fn sample(seed: u64, cfg: &PlanConfig) -> Self {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let n = rng.gen_range(1..cfg.max_faults.max(1) + 1);
        let mut faults = Vec::new();
        for _ in 0..n {
            let at_s = (rng.gen_range(0.0..0.8) * cfg.window_s).round();
            let duration_s = (rng.gen_range(0.02..0.4) * cfg.window_s).round();
            match rng.gen_range(0u32..15) {
                0 | 1 => {
                    // Kills are the most interesting fault; over-weight
                    // them and usually pair a revive (a "flap").
                    let server = rng.gen_range(0..cfg.servers.max(1));
                    faults.push(Fault::ServerKill { at_s, server });
                    if rng.gen_bool(0.75) {
                        faults.push(Fault::ServerRevive {
                            at_s: (at_s + duration_s).min(cfg.window_s),
                            server,
                        });
                    }
                }
                2 => faults.push(Fault::CoolingDerating {
                    at_s,
                    duration_s,
                    capacity_frac: rng.gen_range(0.0..0.9),
                }),
                3 => faults.push(Fault::FanFailure {
                    at_s,
                    duration_s,
                    airflow_frac: rng.gen_range(0.1..0.8),
                }),
                4 => faults.push(Fault::BlockageSpike {
                    at_s,
                    duration_s,
                    inlet_delta_k: rng.gen_range(2.0..15.0),
                }),
                5 => faults.push(Fault::SensorNoise {
                    at_s,
                    duration_s,
                    sigma_k: rng.gen_range(0.1..3.0),
                }),
                6 => faults.push(Fault::SensorStuck {
                    at_s,
                    duration_s,
                    reading_c: rng.gen_range(15.0..60.0),
                }),
                7 => faults.push(Fault::WorkloadBurst {
                    at_s,
                    duration_s,
                    multiplier: rng.gen_range(1.2..2.0),
                }),
                8 => faults.push(Fault::WorkloadDropout { at_s, duration_s }),
                9 => faults.push(Fault::SlowLoris {
                    clients: rng.gen_range(1usize..5),
                    byte_gap_ms: rng.gen_range(5u64..40),
                }),
                10 => faults.push(Fault::MidBodyDisconnect {
                    clients: rng.gen_range(1usize..5),
                    body_frac: rng.gen_range(0.1..0.9),
                }),
                11 => faults.push(Fault::QueueStorm {
                    clients: rng.gen_range(8usize..25),
                }),
                12 => faults.push(Fault::EconomizerDamperStuck {
                    at_s,
                    duration_s,
                    stuck_frac: rng.gen_range(0.0..0.8),
                }),
                13 => faults.push(Fault::PumpDerate {
                    at_s,
                    duration_s,
                    flow_frac: rng.gen_range(0.2..0.9),
                }),
                _ => faults.push(Fault::ReuseDropout { at_s, duration_s }),
            }
        }
        // Scheduled faults in onset order; connection-level ones at the
        // end. Stable sort keeps kill→revive pairs ordered at ties.
        faults.sort_by(|a, b| {
            let ka = a.at().unwrap_or(f64::INFINITY);
            let kb = b.at().unwrap_or(f64::INFINITY);
            ka.total_cmp(&kb)
        });
        Self { faults }
    }

    /// `(kind, count)` pairs in taxonomy order — a deterministic digest
    /// for summaries.
    pub fn kind_counts(&self) -> Vec<(String, u64)> {
        const KINDS: [&str; 15] = [
            "ServerKill",
            "ServerRevive",
            "CoolingDerating",
            "FanFailure",
            "BlockageSpike",
            "SensorNoise",
            "SensorStuck",
            "WorkloadBurst",
            "WorkloadDropout",
            "SlowLoris",
            "MidBodyDisconnect",
            "QueueStorm",
            "EconomizerDamperStuck",
            "PumpDerate",
            "ReuseDropout",
        ];
        KINDS
            .iter()
            .map(|k| {
                (
                    k.to_string(),
                    self.faults.iter().filter(|f| f.kind() == *k).count() as u64,
                )
            })
            .collect()
    }

    /// The connection-level faults (driven against a live service).
    pub fn connection_faults(&self) -> Vec<Fault> {
        self.faults
            .iter()
            .filter(|f| f.at().is_none())
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic() {
        let cfg = PlanConfig::default();
        assert_eq!(FaultPlan::sample(42, &cfg), FaultPlan::sample(42, &cfg));
        assert_ne!(FaultPlan::sample(42, &cfg), FaultPlan::sample(43, &cfg));
    }

    #[test]
    fn scheduled_faults_are_sorted_and_in_window() {
        let cfg = PlanConfig::default();
        for seed in 0..200 {
            let plan = FaultPlan::sample(seed, &cfg);
            assert!(!plan.faults.is_empty());
            let times: Vec<f64> = plan.faults.iter().filter_map(|f| f.at()).collect();
            for w in times.windows(2) {
                assert!(w[0] <= w[1], "seed {seed}: unsorted {times:?}");
            }
            for t in &times {
                assert!((0.0..=cfg.window_s).contains(t), "seed {seed}: {t}");
            }
        }
    }

    #[test]
    fn json_round_trips_every_kind() {
        let cfg = PlanConfig {
            window_s: 7_200.0,
            servers: 8,
            max_faults: 40,
        };
        // A big plan hits every variant with overwhelming probability.
        let plan = FaultPlan::sample(7, &cfg);
        let json = plan.to_json();
        let back = FaultPlan::from_json(&json).expect("round-trip");
        assert_eq!(plan, back);
        // Byte-identical canonical text both ways.
        assert_eq!(
            json.canonical().to_string_pretty(),
            back.to_json().canonical().to_string_pretty()
        );
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let v = tts_units::json::parse(r#"{"kind":"MeteorStrike"}"#).unwrap();
        assert!(Fault::from_json(&v).is_err());
    }

    #[test]
    fn kind_counts_cover_the_taxonomy() {
        let plan = FaultPlan::sample(1, &PlanConfig::default());
        let counts = plan.kind_counts();
        assert_eq!(counts.len(), 15);
        let total: u64 = counts.iter().map(|(_, c)| c).sum();
        assert_eq!(total, plan.faults.len() as u64);
    }
}
