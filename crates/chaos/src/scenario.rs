//! One seeded chaos scenario: sample a plan, inject it through every
//! hook layer, check invariants after every event/step.
//!
//! A scenario is four phases over the same [`FaultPlan`]:
//!
//! 1. **Cluster** — the dcsim event loop under server kills/flaps and
//!    workload bursts/dropouts ([`tts_dcsim::discrete::FaultHook`]).
//! 2. **Thermal** — a PCM-backed server rig stepped through fan
//!    failures, blockage spikes and sensor faults
//!    ([`tts_thermal::BoundaryFault`]).
//! 3. **Cooling** — room ride-through under plant outages/deratings
//!    ([`tts_cooling::CoolingProfile`]).
//! 4. **Workload** — seeded trace generation, JSON round-trip and
//!    non-negativity.
//! 5. **Schedule** — the receding-horizon PCM/job co-optimizer
//!    (`tts_opt`) re-planning through the plan's cooling deratings and
//!    workload bursts; the controller must stay feasible (no deadline
//!    misses, work conserved, SOC in bounds) or degrade gracefully.
//! 6. **Backend** — the alternative cooling backends (economizer with a
//!    generated weather series, hot-water loop with energy reuse) under
//!    the plan's damper jams, pump derates and reuse dropouts: faulted
//!    bills must bracket between nominal and worst-case, credits must
//!    stay physical, and pump derates must never lengthen ride-through.
//!
//! Everything is a pure function of `(seed, config)`; reports are
//! byte-deterministic, which is what makes `repro chaos --seed 0x…`
//! replays exact.

use crate::fault::{Fault, FaultPlan, PlanConfig};
use crate::invariant::{Checker, Violation};
use tts_cooling::emergency::{ride_through_degraded, DegradedCooling, RoomModel};
use tts_dcsim::balancer::LeastLoaded;
use tts_dcsim::discrete::{ClusterConfig, FaultAction, FaultHook};
use tts_dcsim::fleet::{DatacenterSpec, FleetConfig};
use tts_obs::MetricsSink;
use tts_pcm::{PcmMaterial, PcmState};
use tts_rng::{Normal, SeedableRng, Xoshiro256pp};
use tts_thermal::{BoundaryControls, ThermalNetwork};
use tts_units::json::{FromJson, Json, ToJson};
use tts_units::{
    air_heat_capacity_flow, Celsius, CubicMetersPerSecond, Grams, Joules, JoulesPerKelvin, Seconds,
    Watts, WattsPerKelvin,
};
use tts_workload::google::GoogleTraceConfig;
use tts_workload::{GoogleTrace, JobStream, JobType, TimeSeries};

/// Scenario shape knobs (plan sampling derives from these).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// Cluster size for the dcsim phase.
    pub servers: usize,
    /// Cores per server.
    pub cores: usize,
    /// Scenario window, seconds.
    pub window_s: f64,
    /// Baseline offered utilization before workload faults.
    pub base_util: f64,
    /// Upper bound on sampled faults per plan.
    pub max_faults: usize,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            servers: 4,
            cores: 2,
            window_s: 3_600.0,
            base_util: 0.55,
            max_faults: 10,
        }
    }
}

tts_units::derive_json! { struct ScenarioConfig { servers, cores, window_s, base_util, max_faults } }

impl ScenarioConfig {
    /// The plan-sampling knobs this scenario shape implies.
    pub fn plan_config(&self) -> PlanConfig {
        PlanConfig {
            window_s: self.window_s,
            servers: self.servers,
            max_faults: self.max_faults,
        }
    }
}

/// The deterministic outcome of one seeded scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// The scenario seed (sole source of randomness).
    pub seed: u64,
    /// Invariant checks performed.
    pub checks: u64,
    /// Invariant violations (empty on a green run).
    pub violations: Vec<Violation>,
    /// Faults in the sampled plan, by kind (taxonomy order).
    pub fault_counts: Vec<(String, u64)>,
    /// Jobs completed in the cluster phase.
    pub completed: u64,
    /// Jobs re-dispatched after server kills.
    pub rescheduled: u64,
    /// Stale completions discarded after server kills.
    pub stale_completions: u64,
    /// Kill/revive actions the simulator actually applied.
    pub fault_events: u64,
}

impl ScenarioReport {
    /// Did every invariant hold?
    pub fn all_green(&self) -> bool {
        self.violations.is_empty()
    }

    /// The one-line replay command for this seed.
    pub fn replay_command(&self) -> String {
        replay_command(self.seed)
    }
}

/// The one-line replay command for a failing seed — printed in failure
/// reports so a violation reproduces from a copy-paste.
pub fn replay_command(seed: u64) -> String {
    format!("repro chaos --seed {seed:#x}")
}

impl ToJson for ScenarioReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("seed".to_string(), Json::Num(self.seed as f64)),
            ("checks".to_string(), Json::Num(self.checks as f64)),
            ("violations".to_string(), self.violations.to_json()),
            (
                "fault_counts".to_string(),
                Json::Obj(
                    self.fault_counts
                        .iter()
                        .map(|(k, c)| (k.clone(), Json::Num(*c as f64)))
                        .collect(),
                ),
            ),
            ("completed".to_string(), Json::Num(self.completed as f64)),
            (
                "rescheduled".to_string(),
                Json::Num(self.rescheduled as f64),
            ),
            (
                "stale_completions".to_string(),
                Json::Num(self.stale_completions as f64),
            ),
            (
                "fault_events".to_string(),
                Json::Num(self.fault_events as f64),
            ),
        ])
    }
}

/// Adapts a [`FaultPlan`]'s kill/revive schedule to the dcsim
/// [`FaultHook`] seam.
#[derive(Debug)]
pub struct PlanFaultHook {
    events: Vec<(f64, FaultAction)>,
    cursor: usize,
}

impl PlanFaultHook {
    /// Extracts the event-level faults from a plan (already sorted by
    /// onset).
    pub fn from_plan(plan: &FaultPlan) -> Self {
        let events = plan
            .faults
            .iter()
            .filter_map(|f| match *f {
                Fault::ServerKill { at_s, server } => Some((at_s, FaultAction::KillServer(server))),
                Fault::ServerRevive { at_s, server } => {
                    Some((at_s, FaultAction::ReviveServer(server)))
                }
                _ => None,
            })
            .collect();
        Self { events, cursor: 0 }
    }
}

impl FaultHook for PlanFaultHook {
    fn next_time(&self) -> Option<f64> {
        self.events.get(self.cursor).map(|e| e.0)
    }

    fn pop_actions(&mut self, now: f64) -> Vec<FaultAction> {
        let mut actions = Vec::new();
        while let Some(&(t, a)) = self.events.get(self.cursor) {
            if t > now {
                break;
            }
            actions.push(a);
            self.cursor += 1;
        }
        actions
    }
}

/// Runs one full scenario for `seed`.
pub fn run_scenario(seed: u64, cfg: &ScenarioConfig) -> ScenarioReport {
    let plan = FaultPlan::sample(seed, &cfg.plan_config());
    run_plan(seed, cfg, &plan)
}

/// Runs a scenario against an explicit plan (the `--plan file.json`
/// path; `seed` still drives the workload and sensor-noise draws).
pub fn run_plan(seed: u64, cfg: &ScenarioConfig, plan: &FaultPlan) -> ScenarioReport {
    let mut checker = Checker::new();
    let cluster = cluster_phase(seed, cfg, plan, &mut checker);
    thermal_phase(seed, cfg, plan, &mut checker);
    cooling_phase(cfg, plan, &mut checker);
    workload_phase(seed, &mut checker);
    schedule_phase(cfg, plan, &mut checker);
    backend_phase(seed, cfg, plan, &mut checker);
    let (checks, violations) = checker.into_parts();
    ScenarioReport {
        seed,
        checks,
        violations,
        fault_counts: plan.kind_counts(),
        completed: cluster.0,
        rescheduled: cluster.1,
        stale_completions: cluster.2,
        fault_events: cluster.3,
    }
}

/// Multiplies trace buckets covered by workload faults.
fn faulted_trace(cfg: &ScenarioConfig, plan: &FaultPlan) -> TimeSeries {
    let dt = 60.0;
    let buckets = (cfg.window_s / dt).ceil() as usize;
    let mut vals = vec![cfg.base_util; buckets.max(1)];
    for f in &plan.faults {
        let (at, dur, mult) = match *f {
            Fault::WorkloadBurst {
                at_s,
                duration_s,
                multiplier,
            } => (at_s, duration_s, multiplier),
            Fault::WorkloadDropout { at_s, duration_s } => (at_s, duration_s, 0.05),
            _ => continue,
        };
        let first = (at / dt).floor() as usize;
        let last = ((at + dur) / dt).ceil() as usize;
        for v in vals
            .iter_mut()
            .take(last.min(buckets.max(1)))
            .skip(first.min(buckets.max(1)))
        {
            *v = (*v * mult).clamp(0.0, 0.95);
        }
    }
    TimeSeries::new(Seconds::new(dt), vals)
}

/// Phase 1: the discrete cluster under event-level faults. Returns
/// `(completed, rescheduled, stale_completions, fault_events)`.
fn cluster_phase(
    seed: u64,
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
    checker: &mut Checker,
) -> (u64, u64, u64, u64) {
    let trace = faulted_trace(cfg, plan);
    fleet_cross_check(seed, cfg, plan, &trace, checker);
    let jobs = JobStream::new(trace, JobType::SocialNetworking, cfg.servers, seed).collect_all();
    let offered = jobs.len() as u64;
    let sink = MetricsSink::fresh();
    let mut sim = ClusterConfig::new(cfg.servers)
        .cores_per_server(cfg.cores)
        .rack_size(cfg.servers.div_ceil(2).max(1))
        .metrics(&sink)
        .build(LeastLoaded::new());
    sim.set_fault_hook(Box::new(PlanFaultHook::from_plan(plan)));
    let m = sim.run(&jobs, Seconds::new(cfg.window_s));

    checker.check(
        "jobs.conservation",
        m.completed + m.in_flight == offered,
        || {
            format!(
                "completed {} + in_flight {} != offered {offered}",
                m.completed, m.in_flight
            )
        },
    );
    let arrivals = sink.counter("dcsim.arrivals").value();
    checker.check(
        "jobs.arrivals_accounted",
        arrivals == m.completed + m.in_flight,
        || {
            format!(
                "sink arrivals {arrivals} vs accounted {}",
                m.completed + m.in_flight
            )
        },
    );
    checker.check(
        "jobs.rescheduled_accounted",
        sink.counter("dcsim.fault.rescheduled").value() == m.rescheduled,
        || "sink and metrics disagree on rescheduled jobs".to_string(),
    );
    let type_sum: u64 = m.per_type.iter().map(|q| q.completed).sum();
    checker.check("qos.per_type_totals", type_sum == m.completed, || {
        format!("per-type sum {type_sum} != completed {}", m.completed)
    });
    checker.check(
        "util.bounds",
        m.server_utilization
            .iter()
            .chain(m.rack_utilization.iter())
            .all(|u| u.is_finite() && (0.0..=1.0 + 1e-9).contains(u)),
        || format!("utilization out of [0,1]: {:?}", m.server_utilization),
    );
    checker.check(
        "qos.finite",
        m.mean_response_s.is_finite()
            && m.p95_response_s.is_finite()
            && m.mean_response_s >= 0.0
            && m.p95_response_s >= 0.0
            && m.throughput_jobs_per_s >= 0.0,
        || {
            format!(
                "non-physical QoS: mean {} p95 {} thpt {}",
                m.mean_response_s, m.p95_response_s, m.throughput_jobs_per_s
            )
        },
    );
    (
        m.completed,
        m.rescheduled,
        m.stale_completions,
        m.fault_events,
    )
}

/// Phase 1b: the epoch-sharded fleet engine stepped over the same trace
/// and fault plan, once un-sharded and once with ≥4 shards. The two runs
/// must agree byte-for-byte (metrics, JSON rendering, and telemetry
/// counters) and the work ledger must conserve — the chaos-level pin on
/// the fleet engine's shard-invariance contract.
fn fleet_cross_check(
    seed: u64,
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
    trace: &TimeSeries,
    checker: &mut Checker,
) {
    let run = |shards: usize| {
        let sink = MetricsSink::fresh();
        let mut sim = FleetConfig::new(trace.clone())
            .datacenter(DatacenterSpec::new("chaos", cfg.servers))
            .cores_per_server(cfg.cores)
            // One rack per server so even a tiny chaos cluster really
            // splits into ≥4 shards.
            .rack_size(1)
            .shards(shards)
            .seed(seed)
            .horizon(Seconds::new(cfg.window_s))
            .metrics(&sink)
            .build();
        sim.set_fault_hook(Box::new(PlanFaultHook::from_plan(plan)));
        let m = sim.run();
        (m, sink)
    };
    let (unsharded, sink1) = run(1);
    let (sharded, sink4) = run(4.min(cfg.servers));
    checker.check(
        "fleet.shard_invariance",
        unsharded == sharded
            && unsharded.to_json().to_string_pretty() == sharded.to_json().to_string_pretty(),
        || format!("1-shard and sharded runs disagree: {unsharded:?} vs {sharded:?}"),
    );
    checker.check(
        "fleet.counters_invariant",
        ["fleet.epochs", "fleet.fault.kills", "fleet.fault.revives"]
            .iter()
            .all(|name| sink1.counter(name).value() == sink4.counter(name).value()),
        || "sharding changed a telemetry counter".to_string(),
    );
    checker.check(
        "fleet.conservation",
        unsharded.conservation_error_core_s.abs() <= 1e-6 * unsharded.offered_core_s.max(1.0),
        || {
            format!(
                "work ledger drift {} of {} offered core-s",
                unsharded.conservation_error_core_s, unsharded.offered_core_s
            )
        },
    );
}

/// Phase 2: a PCM-backed server rig under boundary-condition faults.
fn thermal_phase(seed: u64, cfg: &ScenarioConfig, plan: &FaultPlan, checker: &mut Checker) {
    let mut net = ThermalNetwork::new();
    let inlet = net.add_boundary("inlet", Celsius::new(25.0));
    let air = net.add_air("air", Celsius::new(25.0));
    let outlet = net.add_boundary("outlet", Celsius::new(25.0));
    let cpu = net.add_capacitive("cpu", JoulesPerKelvin::new(400.0), Celsius::new(25.0));
    let nominal = air_heat_capacity_flow(CubicMetersPerSecond::new(0.02));
    let a_in = net.advect(inlet, air, nominal);
    let a_out = net.advect(air, outlet, nominal);
    net.connect(cpu, air, WattsPerKelvin::new(2.0));
    net.set_power(cpu, Watts::new(60.0));
    let wax = PcmState::new(
        &PcmMaterial::commercial_paraffin(Celsius::new(30.0)),
        Grams::new(800.0),
        Celsius::new(25.0),
    );
    let pcm = net.attach_pcm(air, wax, WattsPerKelvin::new(1.5));

    // Collect the thermal faults once; evaluate per step.
    let fan: Vec<(f64, f64, f64)> = plan
        .faults
        .iter()
        .filter_map(|f| match *f {
            Fault::FanFailure {
                at_s,
                duration_s,
                airflow_frac,
            } => Some((at_s, at_s + duration_s, airflow_frac)),
            _ => None,
        })
        .collect();
    let spikes: Vec<(f64, f64, f64)> = plan
        .faults
        .iter()
        .filter_map(|f| match *f {
            Fault::BlockageSpike {
                at_s,
                duration_s,
                inlet_delta_k,
            } => Some((at_s, at_s + duration_s, inlet_delta_k)),
            _ => None,
        })
        .collect();
    let noise: Vec<(f64, f64, f64)> = plan
        .faults
        .iter()
        .filter_map(|f| match *f {
            Fault::SensorNoise {
                at_s,
                duration_s,
                sigma_k,
            } => Some((at_s, at_s + duration_s, sigma_k)),
            _ => None,
        })
        .collect();
    let stuck: Vec<(f64, f64, f64)> = plan
        .faults
        .iter()
        .filter_map(|f| match *f {
            Fault::SensorStuck {
                at_s,
                duration_s,
                reading_c,
            } => Some((at_s, at_s + duration_s, reading_c)),
            _ => None,
        })
        .collect();

    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x74e2_4a17);
    let unit_noise = Normal::new(0.0, 1.0);
    let active = |set: &[(f64, f64, f64)], t: f64| -> Option<f64> {
        set.iter()
            .filter(|(a, b, _)| (*a..*b).contains(&t))
            .map(|(_, _, v)| *v)
            .next()
    };
    // A naive proportional fan controller closes the loop through the
    // (possibly faulty) sensor, so sensor faults have real consequences.
    let mut fault = |now: Seconds, ctl: &mut BoundaryControls<'_>| {
        let t = now.value();
        let airflow_frac = active(&fan, t).unwrap_or(1.0);
        let delta = active(&spikes, t).unwrap_or(0.0);
        ctl.set_boundary_temp(inlet, Celsius::new(25.0 + delta));
        let mut reading = ctl.temperature(air).value();
        if let Some(sigma) = active(&noise, t) {
            reading += sigma * unit_noise.sample(&mut rng);
        }
        if let Some(frozen) = active(&stuck, t) {
            reading = frozen;
        }
        let command = (0.4 + 0.08 * (reading - 28.0)).clamp(0.3, 1.2) * airflow_frac;
        let mcp = WattsPerKelvin::new(nominal.value() * command.max(0.05));
        ctl.set_advection_flow(a_in, mcp);
        ctl.set_advection_flow(a_out, mcp);
    };

    let steps = (cfg.window_s as usize).min(7_200);
    let mut prev_soc = net.pcm(pcm).melt_fraction().value();
    let mut prev_energy = net.pcm(pcm).stored_energy().value();
    for _ in 0..steps {
        net.step_with(Seconds::new(1.0), &mut fault);
        let soc = net.pcm(pcm).melt_fraction().value();
        let energy = net.pcm(pcm).stored_energy().value();
        let q = net.pcm_heat_flow(pcm).value();
        checker.check_capped(
            "pcm.soc_bounds",
            (-1e-9..=1.0 + 1e-9).contains(&soc),
            3,
            || format!("melt fraction {soc} at t={}", net.time().value()),
        );
        checker.check_capped(
            "pcm.energy_conservation",
            (energy - prev_energy - q).abs() <= 1e-6 + 1e-9 * energy.abs(),
            3,
            || {
                format!(
                    "dE {} != q*dt {} at t={}",
                    energy - prev_energy,
                    q,
                    net.time().value()
                )
            },
        );
        checker.check_capped(
            "pcm.monotone_melt",
            q < 0.0 || soc + 1e-12 >= prev_soc,
            3,
            || {
                format!(
                    "melt went backwards under positive heat: {prev_soc} -> {soc} (q={q}) at t={}",
                    net.time().value()
                )
            },
        );
        let t_air = net.temperature(air).value();
        let t_cpu = net.temperature(cpu).value();
        checker.check_capped(
            "thermal.bounded",
            t_air.is_finite()
                && t_cpu.is_finite()
                && (-40.0..300.0).contains(&t_air)
                && (-40.0..300.0).contains(&t_cpu),
            3,
            || {
                format!(
                    "runaway temps air={t_air} cpu={t_cpu} at t={}",
                    net.time().value()
                )
            },
        );
        prev_soc = soc;
        prev_energy = energy;
    }
}

/// Phase 3: room ride-through under the plan's plant deratings.
fn cooling_phase(cfg: &ScenarioConfig, plan: &FaultPlan, checker: &mut Checker) {
    let room = RoomModel::cluster_room();
    let it_power = Watts::new(120_000.0);
    let plant = Watts::new(140_000.0);
    let coupling = WattsPerKelvin::new(1008.0 * 5.0);
    let budget = Joules::new(1008.0 * 2.0e5);
    let melt = Celsius::new(28.0);
    let window = Seconds::new(cfg.window_s.max(1_800.0));

    let deratings: Vec<(f64, f64, f64)> = plan
        .faults
        .iter()
        .filter_map(|f| match *f {
            Fault::CoolingDerating {
                at_s,
                duration_s,
                capacity_frac,
            } => Some((at_s, at_s + duration_s, capacity_frac)),
            _ => None,
        })
        .collect();
    let profile = |t: Seconds| -> f64 {
        deratings
            .iter()
            .filter(|(a, b, _)| (*a..*b).contains(&t.value()))
            .map(|(_, _, frac)| *frac)
            .fold(1.0, f64::min)
    };

    let run = |budget: Joules, plant: Watts| {
        ride_through_degraded(
            &room,
            it_power,
            DegradedCooling {
                plant_capacity: plant,
                profile: &profile,
            },
            coupling,
            budget,
            melt,
            window,
        )
    };
    let r = run(budget, plant);

    checker.check(
        "room.peak_above_start",
        r.peak_room_temp.value() + 1e-9 >= room.start.value(),
        || format!("peak {} below start", r.peak_room_temp.value()),
    );
    checker.check(
        "room.critical_consistent",
        match r.time_to_critical {
            Some(t) => {
                r.peak_room_temp.value() + 1e-9 >= room.critical.value()
                    && t.value() <= window.value()
            }
            None => r.peak_room_temp.value() <= room.critical.value() + 1e-9,
        },
        || format!("inconsistent report {r:?}"),
    );
    checker.check(
        "wax.budget_bounds",
        (0.0..=budget.value() + 1e-6).contains(&r.wax_energy_absorbed.value()),
        || {
            format!(
                "absorbed {} of budget {}",
                r.wax_energy_absorbed.value(),
                budget.value()
            )
        },
    );
    checker.check(
        "wax.saturation_consistent",
        r.wax_saturated_at.is_none()
            || (r.wax_energy_absorbed.value() - budget.value()).abs() <= 1e-3 * budget.value(),
        || "saturated without spending the budget".to_string(),
    );

    let ttc =
        |r: &tts_cooling::RideThrough| r.time_to_critical.map_or(f64::INFINITY, |t| t.value());
    let richer = run(Joules::new(2.0 * budget.value()), plant);
    checker.check("wax.monotone_budget", ttc(&richer) >= ttc(&r), || {
        format!(
            "doubling the wax budget shortened ride-through: {} -> {}",
            ttc(&r),
            ttc(&richer)
        )
    });
    let stronger = run(budget, Watts::new(plant.value() * 1.1));
    checker.check("plant.monotone_capacity", ttc(&stronger) >= ttc(&r), || {
        format!(
            "extra plant capacity shortened ride-through: {} -> {}",
            ttc(&r),
            ttc(&stronger)
        )
    });
}

/// Phase 4: seeded workload trace — byte-identical JSON round-trip and
/// physical (non-negative) utilization.
fn workload_phase(seed: u64, checker: &mut Checker) {
    let config = GoogleTraceConfig {
        days: 1,
        seed,
        ..GoogleTraceConfig::default()
    };
    let trace = GoogleTrace::generate(config);
    let text = trace.to_json().to_string_pretty();
    let round = tts_units::json::parse(&text)
        .ok()
        .and_then(|v| GoogleTrace::from_json(&v).ok())
        .map(|t| t.to_json().to_string_pretty());
    checker.check(
        "trace.json_round_trip",
        round.as_deref() == Some(text.as_str()),
        || format!("seed {seed}: round-trip not byte-identical"),
    );
    let nonneg = trace.total().values().iter().all(|v| *v >= 0.0)
        && JobType::ALL
            .iter()
            .all(|jt| trace.component(*jt).values().iter().all(|v| *v >= 0.0));
    checker.check("trace.non_negative", nonneg, || {
        format!("seed {seed}: negative utilization sample")
    });
}

/// Phase 5: the receding-horizon co-optimizer (`tts_opt`) driven through
/// the plan's plant-level faults. Cooling deratings and workload
/// bursts/dropouts are translated into [`tts_opt::Disturbances`], which
/// perturb the *actual* plant between re-plans while the controller's
/// forecast stays nominal — exactly the mismatch chaos is meant to
/// probe. Feasible-or-graceful means: every arrived joule is executed
/// (conservation), no deadline is missed, the wax stays inside its
/// physical state of charge, and the bill stays finite.
fn schedule_phase(cfg: &ScenarioConfig, plan: &FaultPlan, checker: &mut Checker) {
    use tts_opt::{run_schedule_on, Disturbances, ScheduleConfig};

    let mut faults = Disturbances::default();
    for f in &plan.faults {
        match *f {
            Fault::CoolingDerating {
                at_s,
                duration_s,
                capacity_frac,
            } => faults
                .capacity
                .push((at_s, at_s + duration_s, capacity_frac)),
            Fault::WorkloadBurst {
                at_s,
                duration_s,
                multiplier,
            } => faults.load.push((at_s, at_s + duration_s, multiplier)),
            Fault::WorkloadDropout { at_s, duration_s } => {
                faults.load.push((at_s, at_s + duration_s, 0.05))
            }
            _ => continue,
        }
    }

    // A small plant on a gently diurnal trace over the scenario window:
    // 5-minute slots keep the LPs tiny while still giving the deferral
    // classes room to move work around.
    let slot_s = 300.0;
    let buckets = ((cfg.window_s / slot_s).ceil() as usize).max(4);
    let vals: Vec<f64> = (0..buckets)
        .map(|i| {
            let phase = i as f64 / buckets as f64 * std::f64::consts::TAU;
            (cfg.base_util * (1.0 + 0.3 * phase.sin())).clamp(0.05, 0.95)
        })
        .collect();
    let trace = TimeSeries::new(Seconds::new(slot_s), vals);
    let schedule_cfg = ScheduleConfig {
        servers: cfg.servers.max(1),
        horizon_h: (cfg.window_s / 3600.0).max(0.5),
        extension_h: 0.5,
        slot_min: slot_s / 60.0,
        tranches: 2,
        replan_every: 1,
        ..ScheduleConfig::default()
    };
    let out = run_schedule_on(&schedule_cfg, &trace, &faults, &MetricsSink::disabled());

    checker.check(
        "schedule.soc_bounds",
        (0.0..=1.0 + 1e-9).contains(&out.final_soc),
        || format!("final melt fraction {} out of [0,1]", out.final_soc),
    );
    checker.check(
        "schedule.conservation",
        out.conservation_error_kwh.abs() <= 1e-6 * out.it_energy_kwh.max(1.0),
        || {
            format!(
                "work ledger drift {} kWh of {} kWh offered",
                out.conservation_error_kwh, out.it_energy_kwh
            )
        },
    );
    checker.check(
        "schedule.no_deadline_misses",
        out.deadline_misses == 0,
        || format!("{} deadline misses under faults", out.deadline_misses),
    );
    checker.check(
        "schedule.costs_finite",
        out.cost_optimized_usd.is_finite()
            && out.cost_passive_usd.is_finite()
            && out.cost_optimized_usd >= 0.0
            && out.cost_passive_usd >= 0.0,
        || {
            format!(
                "non-physical bill: optimized {} passive {}",
                out.cost_optimized_usd, out.cost_passive_usd
            )
        },
    );
    checker.check(
        "schedule.planned_every_slot",
        out.plans + out.fallback_plans > 0 && out.fallback_plans <= out.plans + out.fallback_plans,
        || format!("{} plans, {} fallbacks", out.plans, out.fallback_plans),
    );
    // Note: `overload_slots` is *not* compared against the passive
    // baseline here — deadline forcing through a derated window can
    // legitimately concentrate deferred work where run-on-arrival
    // happened to sail through. Graceful degradation is the four checks
    // above plus physical per-slot loads:
    checker.check(
        "schedule.loads_physical",
        out.load_optimized_kw
            .iter()
            .chain(out.load_passive_kw.iter())
            .all(|kw| kw.is_finite() && *kw >= -1e-9),
        || "non-physical per-slot chiller load".to_string(),
    );
}

/// Phase 6: the alternative cooling backends under backend-level faults.
///
/// The economizer runs against a generated temperate weather series with
/// the plan's damper jams applied through the typed damper seam; the
/// hot-water loop takes the plan's reuse dropouts through the demand
/// seam and its pump derates through the `CoolingProfile` ride-through
/// seam. Every check is a comparison principle: a fault can only move
/// the bill toward the fully-broken bound, never past it and never
/// below nominal, and a pump derate can only shorten ride-through.
fn backend_phase(seed: u64, cfg: &ScenarioConfig, plan: &FaultPlan, checker: &mut Checker) {
    use tts_cooling::climate::{Site, WeatherConfig, WeatherSeries};
    use tts_cooling::freecooling::cooling_electricity_cost_damped;
    use tts_cooling::hotwater::{hot_water_bill_with_demand, HotWaterLoop};
    use tts_cooling::{CoolingSystem, Economizer, Tariff};
    use tts_units::KiloWatts;

    // A gently diurnal cooling-load profile over the scenario window.
    let dt = Seconds::new(60.0);
    let buckets = ((cfg.window_s / dt.value()).ceil() as usize).max(4);
    let loads_w: Vec<f64> = (0..buckets)
        .map(|i| {
            let phase = i as f64 / buckets as f64 * std::f64::consts::TAU;
            80_000.0 * (1.0 + 0.25 * phase.sin())
        })
        .collect();
    let tariff = Tariff::paper_default();
    let weather = WeatherSeries::generate(&WeatherConfig {
        site: Site::Temperate,
        seed: seed ^ 0x5ca1_ab1e,
        days: 1,
    });

    // --- Economizer under damper jams -------------------------------
    let jams: Vec<(f64, f64, f64)> = plan
        .faults
        .iter()
        .filter_map(|f| match *f {
            Fault::EconomizerDamperStuck {
                at_s,
                duration_s,
                stuck_frac,
            } => Some((at_s, at_s + duration_s, stuck_frac)),
            _ => None,
        })
        .collect();
    let damper = |t: Seconds| -> f64 {
        jams.iter()
            .filter(|(a, b, _)| (*a..*b).contains(&t.value()))
            .map(|(_, _, frac)| *frac)
            .fold(1.0, f64::min)
    };
    let econ = Economizer::around(CoolingSystem::new(KiloWatts::new(200.0), 4.0));
    let nominal = cooling_electricity_cost_damped(&loads_w, dt, &econ, &tariff, &weather, |_| 1.0);
    let faulted = cooling_electricity_cost_damped(&loads_w, dt, &econ, &tariff, &weather, damper);
    let mechanical =
        cooling_electricity_cost_damped(&loads_w, dt, &econ, &tariff, &weather, |_| 0.0);
    let eps = 1e-9 * mechanical.value().max(1.0);
    checker.check(
        "economizer.jam_not_cheaper",
        faulted.value() + eps >= nominal.value(),
        || {
            format!(
                "jammed damper cut the bill: {} < {}",
                faulted.value(),
                nominal.value()
            )
        },
    );
    checker.check(
        "economizer.jam_bounded_by_mechanical",
        faulted.value() <= mechanical.value() + eps,
        || {
            format!(
                "jammed bill {} above fully-mechanical bound {}",
                faulted.value(),
                mechanical.value()
            )
        },
    );
    checker.check(
        "economizer.bills_physical",
        nominal.value().is_finite() && nominal.value() >= 0.0 && mechanical.value() >= 0.0,
        || format!("non-physical economizer bill {nominal:?}"),
    );

    // --- Hot-water loop: reuse dropouts -----------------------------
    let dropouts: Vec<(f64, f64)> = plan
        .faults
        .iter()
        .filter_map(|f| match *f {
            Fault::ReuseDropout { at_s, duration_s } => Some((at_s, at_s + duration_s)),
            _ => None,
        })
        .collect();
    let demand = |t: Seconds| -> f64 {
        if dropouts.iter().any(|(a, b)| (*a..*b).contains(&t.value())) {
            0.0
        } else {
            1.0
        }
    };
    let water = HotWaterLoop::idatacool();
    let bill_nominal = hot_water_bill_with_demand(&loads_w, dt, &water, &tariff, &weather, |_| 1.0);
    let bill_faulted = hot_water_bill_with_demand(&loads_w, dt, &water, &tariff, &weather, demand);
    checker.check(
        "hotwater.credit_physical",
        bill_faulted.heat_reused_kwh <= bill_faulted.heat_rejected_kwh + 1e-9
            && bill_faulted.reuse_credit.value() >= 0.0,
        || {
            format!(
                "reused {} of {} kWh rejected",
                bill_faulted.heat_reused_kwh, bill_faulted.heat_rejected_kwh
            )
        },
    );
    checker.check(
        "hotwater.dropout_cuts_credit",
        bill_faulted.reuse_credit.value() <= bill_nominal.reuse_credit.value() + 1e-9,
        || {
            format!(
                "dropout raised the credit: {} > {}",
                bill_faulted.reuse_credit.value(),
                bill_nominal.reuse_credit.value()
            )
        },
    );
    checker.check(
        "hotwater.dropout_not_cheaper",
        bill_faulted.net().value() + 1e-9 >= bill_nominal.net().value(),
        || {
            format!(
                "dropout cut the net bill: {} < {}",
                bill_faulted.net().value(),
                bill_nominal.net().value()
            )
        },
    );
    checker.check(
        "hotwater.energy_cost_unaffected_by_demand",
        (bill_faulted.energy_cost.value() - bill_nominal.energy_cost.value()).abs() <= 1e-9,
        || "reuse demand changed the electricity side of the bill".to_string(),
    );

    // --- Hot-water loop: pump derates through ride-through ----------
    let derates: Vec<(f64, f64, f64)> = plan
        .faults
        .iter()
        .filter_map(|f| match *f {
            Fault::PumpDerate {
                at_s,
                duration_s,
                flow_frac,
            } => Some((at_s, at_s + duration_s, flow_frac)),
            _ => None,
        })
        .collect();
    let flow = |t: Seconds| -> f64 {
        derates
            .iter()
            .filter(|(a, b, _)| (*a..*b).contains(&t.value()))
            .map(|(_, _, frac)| *frac)
            .fold(1.0, f64::min)
    };
    let room = RoomModel::cluster_room();
    let window = Seconds::new(cfg.window_s.max(1_800.0));
    let run = |profile: &dyn tts_cooling::CoolingProfile| {
        ride_through_degraded(
            &room,
            Watts::new(120_000.0),
            DegradedCooling {
                plant_capacity: Watts::new(140_000.0),
                profile,
            },
            WattsPerKelvin::new(1008.0 * 5.0),
            Joules::new(1008.0 * 2.0e5),
            Celsius::new(28.0),
            window,
        )
    };
    let full = |_: Seconds| 1.0;
    let healthy = run(&full);
    let derated = run(&flow);
    let ttc =
        |r: &tts_cooling::RideThrough| r.time_to_critical.map_or(f64::INFINITY, |t| t.value());
    checker.check(
        "hotwater.pump_derate_shortens_ride_through",
        ttc(&derated) <= ttc(&healthy) + 1e-9,
        || {
            format!(
                "pump derate lengthened ride-through: {} -> {}",
                ttc(&healthy),
                ttc(&derated)
            )
        },
    );
    checker.check(
        "hotwater.derated_runs_hotter",
        derated.peak_room_temp.value() + 1e-9 >= healthy.peak_room_temp.value(),
        || {
            format!(
                "pump derate cooled the room: {} -> {}",
                healthy.peak_room_temp.value(),
                derated.peak_room_temp.value()
            )
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_is_deterministic() {
        let cfg = ScenarioConfig::default();
        let a = run_scenario(3, &cfg);
        let b = run_scenario(3, &cfg);
        assert_eq!(a, b);
        assert_eq!(
            a.to_json().to_string_pretty(),
            b.to_json().to_string_pretty()
        );
    }

    #[test]
    fn replay_command_is_hex() {
        assert_eq!(replay_command(0x2a), "repro chaos --seed 0x2a");
    }

    #[test]
    fn a_handful_of_seeds_run_green() {
        let cfg = ScenarioConfig::default();
        for seed in [0, 1, 0xdead_beef] {
            let r = run_scenario(seed, &cfg);
            assert!(
                r.all_green(),
                "seed {seed} violated invariants: {:?}\nreplay: {}",
                r.violations,
                r.replay_command()
            );
            assert!(r.checks > 1_000, "thermal stepping must be checked");
        }
    }
}
