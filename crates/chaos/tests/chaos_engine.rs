//! The cross-crate simulation-test harness, driven through the in-repo
//! property harness: N seeded scenarios per test, every invariant
//! checked after every event, failing cases replayable from the printed
//! `TTS_PROP_SEED` / `repro chaos --seed` one-liners.

use tts_chaos::{
    run_batch, run_scenario, seed_chain, BatchConfig, FaultPlan, PlanConfig, PlanFaultHook,
    ScenarioConfig,
};
use tts_dcsim::discrete::FaultHook;
use tts_rng::prop::prelude::*;
use tts_units::json::{parse, FromJson, ToJson};

proptest! {
    #![cases(16)]
    #[test]
    fn any_seed_scenario_holds_every_invariant(seed in 0u64..(1 << 53)) {
        let report = run_scenario(seed, &ScenarioConfig::default());
        prop_assert!(
            report.all_green(),
            "seed {seed:#x} violated {} invariant(s): {:?}\nreplay with: {}",
            report.violations.len(),
            report.violations,
            report.replay_command()
        );
        prop_assert!(report.checks > 1_000, "scenario must actually check things");
    }

    #[test]
    fn sampled_plans_round_trip_through_json(seed in 0u64..(1 << 53)) {
        let cfg = PlanConfig {
            max_faults: 24,
            ..PlanConfig::default()
        };
        let plan = FaultPlan::sample(seed, &cfg);
        let text = plan.to_json().to_string_pretty();
        let round = FaultPlan::from_json(&parse(&text).expect("plan JSON parses"))
            .expect("plan JSON deserializes");
        prop_assert_eq!(&round, &plan);
        prop_assert_eq!(round.to_json().to_string_pretty(), text);
    }

    #[test]
    fn plan_hooks_always_advance_past_now(seed in 0u64..(1 << 53)) {
        let plan = FaultPlan::sample(seed, &PlanConfig::default());
        let mut hook = PlanFaultHook::from_plan(&plan);
        // Drain the schedule through the FaultHook contract: after
        // pop_actions(now), next_time() must be strictly later than now.
        let mut popped = 0;
        while let Some(t) = hook.next_time() {
            let actions = hook.pop_actions(t);
            prop_assert!(!actions.is_empty(), "a due hook must yield actions");
            popped += actions.len();
            if let Some(next) = hook.next_time() {
                prop_assert!(next > t, "hook stalled at t={t}");
            }
        }
        prop_assert!(hook.pop_actions(f64::INFINITY).is_empty());
        // The hook carries exactly the event-level (kill/revive) faults.
        let kills_and_revives = plan
            .faults
            .iter()
            .filter(|f| matches!(f.kind(), "ServerKill" | "ServerRevive"))
            .count();
        prop_assert_eq!(popped, kills_and_revives);
    }
}

#[test]
fn batches_are_byte_identical_across_thread_counts() {
    let cfg = BatchConfig {
        seeds: 6,
        ..BatchConfig::default()
    };
    tts_exec::set_thread_override(Some(1));
    let serial = run_batch(&cfg).to_json().to_string_pretty();
    tts_exec::set_thread_override(Some(4));
    let parallel = run_batch(&cfg).to_json().to_string_pretty();
    tts_exec::set_thread_override(None);
    assert_eq!(serial, parallel, "TTS_THREADS must never change the bytes");
}

#[test]
fn the_seed_chain_is_independent_of_batch_size() {
    // Prefix property: growing the batch never changes earlier seeds, so
    // a failing seed replays identically outside its original batch.
    let short = seed_chain(99, 4);
    let long = seed_chain(99, 16);
    assert_eq!(&long[..4], &short[..]);
}

#[test]
fn a_violation_report_carries_its_replay_line() {
    let report = run_scenario(42, &ScenarioConfig::default());
    assert_eq!(report.replay_command(), "repro chaos --seed 0x2a");
    assert_eq!(report.seed, 42);
}
