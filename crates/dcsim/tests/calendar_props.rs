//! Property tests for the calendar queue, driven by the in-repo `tts_rng::prop`
//! harness. The frozen heap `EventQueue` is the ordering oracle: both queues
//! promise the same total order — ascending time, insertion sequence breaking
//! ties — so any divergence is a calendar bug.
//!
//! On failure the harness prints the failing case plus a
//! `reproduce first with: TTS_PROP_SEED=0x…` line, so every red run is
//! replayable.

use tts_dcsim::event::EventQueue;
use tts_dcsim::CalendarQueue;
use tts_rng::prop::prelude::*;

/// Quantizes raw ticks onto a coarse grid so generated schedules carry many
/// exact time ties, exercising the insertion-sequence tie-break.
fn tick_to_time(tick: u32) -> f64 {
    f64::from(tick) * 0.25
}

proptest! {
    /// Draining a freshly filled queue yields exactly the reference order:
    /// a *stable* sort by time (stable = insertion sequence breaks ties),
    /// and bit-for-bit the same sequence as the heap oracle.
    #[test]
    fn drain_matches_reference_sort(ticks in collection::vec(0u32..64, 1..300)) {
        let mut calendar = CalendarQueue::new();
        let mut heap = EventQueue::new();
        let mut reference: Vec<(f64, usize)> = Vec::with_capacity(ticks.len());
        for (seq, &tick) in ticks.iter().enumerate() {
            let t = tick_to_time(tick);
            calendar.push(t, seq);
            heap.push(t, seq);
            reference.push((t, seq));
        }
        reference.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

        let mut drained = Vec::with_capacity(ticks.len());
        while let Some(ev) = calendar.pop() {
            prop_assert_eq!(Some(ev), heap.pop());
            drained.push(ev);
        }
        prop_assert!(calendar.is_empty());
        prop_assert!(heap.is_empty());
        prop_assert_eq!(drained, reference);
    }

    /// Interleaved insert/extract: after an arbitrary schedule of pushes and
    /// pops, no element is ever lost or duplicated, and every pop agrees with
    /// the oracle even while both queues are mid-stream.
    #[test]
    fn interleaved_ops_never_lose_or_duplicate(
        ops in collection::vec((0u32..64, 0usize..3), 1..200),
    ) {
        let mut calendar = CalendarQueue::new();
        let mut heap = EventQueue::new();
        let mut pushed = 0usize;
        let mut seen = vec![0u32; ops.len()];

        for (seq, &(tick, pops)) in ops.iter().enumerate() {
            let t = tick_to_time(tick);
            calendar.push(t, seq);
            heap.push(t, seq);
            pushed += 1;
            for _ in 0..pops {
                prop_assert_eq!(calendar.peek_time(), heap.peek_time());
                let got = calendar.pop();
                prop_assert_eq!(got, heap.pop());
                if let Some((_, id)) = got {
                    seen[id] += 1;
                }
            }
            prop_assert_eq!(calendar.len(), heap.len());
        }
        while let Some(ev) = calendar.pop() {
            prop_assert_eq!(Some(ev), heap.pop());
            seen[ev.1] += 1;
        }
        prop_assert!(heap.is_empty());

        // Conservation: each of the `pushed` ids came out exactly once.
        prop_assert_eq!(seen.iter().map(|&n| n as usize).sum::<usize>(), pushed);
        prop_assert!(seen.iter().all(|&n| n == 1));
    }
}

proptest! {
    // Fewer cases: each one floods 600+ events through several rebuilds.
    #![cases(24)]

    /// Bucket resizing preserves order. The queue starts at 16 buckets and
    /// rebuilds whenever len crosses 2x buckets (grow) or buckets/4 (shrink),
    /// so a 600+ element flood forces several grows, the deep drain forces
    /// shrinks, and the wide time spread forces width re-estimation — all
    /// while the drained sequence must keep matching the oracle.
    #[test]
    fn resize_cycle_preserves_order(
        flood in collection::vec(0.0f64..1.0e6, 600..900),
        refill in collection::vec(0u32..64, 50..120),
        drain_frac in 0.5f64..0.95,
    ) {
        let mut calendar = CalendarQueue::new();
        let mut heap = EventQueue::new();
        let mut seq = 0usize;
        for &t in &flood {
            calendar.push(t, seq);
            heap.push(t, seq);
            seq += 1;
        }

        // Drain deep enough to trigger shrink rebuilds…
        let drain_n = (flood.len() as f64 * drain_frac) as usize;
        for _ in 0..drain_n {
            prop_assert_eq!(calendar.pop(), heap.pop());
        }

        // …then refill with a tie-heavy cluster (grows again) and drain flat.
        for &tick in &refill {
            let t = tick_to_time(tick);
            calendar.push(t, seq);
            heap.push(t, seq);
            seq += 1;
        }
        prop_assert_eq!(calendar.len(), heap.len());
        while let Some(ev) = calendar.pop() {
            prop_assert_eq!(Some(ev), heap.pop());
        }
        prop_assert!(calendar.is_empty());
        prop_assert!(heap.is_empty());
    }
}
