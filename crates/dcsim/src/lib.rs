//! An event-driven datacenter simulator with PCM thermal time shifting.
//!
//! The paper uses DCSim (Kontorinis et al.), "an event-based simulator that
//! models job arrival, load balancing, and work completion for the input
//! job distribution traces at the server, rack, and cluster levels, then
//! extrapolates the cluster model out for the whole datacenter", extended
//! "to model thermal time shifting with PCM using wax melting
//! characteristics derived from extensive Icepak simulations of each
//! server". DCSim was never released; this crate implements that
//! description:
//!
//! * [`event`] — the deterministic event queue;
//! * [`calendar`] — the bucketed calendar queue behind the discrete
//!   engine's hot path (same total order, O(1) amortized);
//! * [`fleet`] — the epoch-sharded fleet engine: struct-of-arrays fluid
//!   state for 1M+ servers across multiple datacenters, byte-identical
//!   across thread *and* shard counts;
//! * [`balancer`] — round-robin (the paper's policy) plus least-loaded and
//!   random, for the load-balancing ablation;
//! * [`discrete`] — the discrete job-level cluster simulator (server, rack
//!   and cluster metrics);
//! * [`cluster`] — the aggregate (fluid) cluster model that couples the
//!   utilization trace to server power and the wax state: the engine
//!   behind the Figure 11 cooling-load study, including the
//!   melting-temperature search;
//! * [`throttle`] — the thermally constrained scenario of Figure 12:
//!   DVFS downclocking to 1.6 GHz, utilization capping, and the wax's
//!   extra thermal headroom;
//! * [`datacenter`] — extrapolation from one 1008-server cluster to the
//!   10 MW datacenter configurations of §4.3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balancer;
pub mod calendar;
pub mod cluster;
pub mod datacenter;
pub mod discrete;
pub mod event;
pub mod fleet;
pub mod heterogeneous;
#[doc(hidden)]
pub mod legacy;
pub mod relocation;
pub mod throttle;

pub use balancer::{Balancer, LeastLoaded, RandomBalancer, RoundRobin};
pub use calendar::CalendarQueue;
pub use cluster::{record_cooling_run, select_melting_point, ClusterConfig, CoolingLoadRun};
pub use datacenter::Datacenter;
pub use discrete::{DiscreteClusterSim, DiscreteMetrics, FaultAction, FaultHook};
pub use fleet::{DatacenterSpec, FleetConfig, FleetMetrics, FleetSim};
pub use heterogeneous::{deployment_sweep, run_partial_deployment, DeploymentPoint};
pub use relocation::{run_relocation, wax_vs_relocation, RelocationRun};
pub use throttle::{record_constrained_run, ConstrainedConfig, ConstrainedRun};
