//! Partial wax deployment: a mixed fleet.
//!
//! The paper deploys wax in *every* server. A real retrofit happens rack
//! by rack, so the operationally interesting question is how the peak
//! reduction scales with the equipped fraction `f`. The instantaneous
//! shaving scales linearly (`N·(P − f·q_wax)` under round-robin symmetry),
//! but the *peak* reduction does not: the first waxed racks clip the
//! single highest point of the load curve, while later ones must flatten
//! an ever-widening plateau — diminishing returns that this module
//! simulates directly and exposes as a deployment curve for retrofit
//! planning.

use crate::cluster::{ClusterConfig, CoolingLoadRun};
use tts_cooling::cooling_load;
use tts_pcm::PcmState;
use tts_units::{Fraction, KiloWatts};
use tts_workload::TimeSeries;

/// A cooling-load run for a fleet where only `equipped` of the servers
/// carry wax.
pub fn run_partial_deployment(
    config: &ClusterConfig,
    trace: &TimeSeries,
    equipped: Fraction,
) -> CoolingLoadRun {
    let dt = trace.dt();
    let n = config.servers as f64;
    let n_waxed = n * equipped.value();
    let chars = &config.chars;
    let mut pcm = PcmState::new(&chars.material, chars.mass, chars.idle_air_temp);

    let mut times_h = Vec::with_capacity(trace.len());
    let mut no_wax = Vec::with_capacity(trace.len());
    let mut with_wax = Vec::with_capacity(trace.len());
    let mut melt = Vec::with_capacity(trace.len());

    for (i, &u) in trace.values().iter().enumerate() {
        let wall = config.spec.wall_power(Fraction::new(u), Fraction::ONE);
        let t_air = chars.air_temp_model.at(wall);
        let q = pcm.step(t_air, chars.effective_coupling(), dt);
        let load_nw = wall * n;
        // Waxed servers shave q each; bare servers contribute full wall.
        let load_w = cooling_load(wall, q) * n_waxed + wall * (n - n_waxed);
        times_h.push(i as f64 * dt.value() / 3600.0);
        no_wax.push(load_nw.kilowatts().value());
        with_wax.push(load_w.kilowatts().value());
        melt.push(pcm.melt_fraction().value());
    }

    let peak_no_wax = KiloWatts::new(no_wax.iter().copied().fold(f64::MIN, f64::max));
    let peak_with_wax = KiloWatts::new(with_wax.iter().copied().fold(f64::MIN, f64::max));
    let threshold = 0.005 * peak_no_wax.value();
    let elevated_ticks = no_wax
        .iter()
        .zip(&with_wax)
        .filter(|(nw, w)| **w > **nw + threshold)
        .count();
    CoolingLoadRun {
        peak_reduction: Fraction::new(1.0 - peak_with_wax.value() / peak_no_wax.value()),
        elevated_hours: elevated_ticks as f64 * dt.value() / 3600.0,
        refrozen_at_end: *melt.last().expect("trace is non-empty") < 0.10,
        times_h,
        load_no_wax_kw: no_wax,
        load_with_wax_kw: with_wax,
        melt_fraction: melt,
        peak_no_wax,
        peak_with_wax,
        melting_point: config.chars.material.melting_point(),
    }
}

/// One point of the deployment-fraction sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeploymentPoint {
    /// Fraction of servers equipped with wax.
    pub equipped: Fraction,
    /// Peak cooling-load reduction achieved.
    pub peak_reduction: Fraction,
}

tts_units::derive_json! { struct DeploymentPoint { equipped, peak_reduction } }

/// Sweeps the equipped fraction from 0 to 1.
pub fn deployment_sweep(
    config: &ClusterConfig,
    trace: &TimeSeries,
    steps: usize,
) -> Vec<DeploymentPoint> {
    assert!(steps >= 2, "need at least the 0 % and 100 % endpoints");
    // Every deployment fraction is an independent cluster run → fan out
    // on the tts_exec pool with input-order (thread-count-invariant)
    // results.
    let fractions: Vec<usize> = (0..steps).collect();
    tts_exec::par_map(&fractions, |&i| {
        let f = Fraction::new(i as f64 / (steps - 1) as f64);
        let run = run_partial_deployment(config, trace, f);
        DeploymentPoint {
            equipped: f,
            peak_reduction: run.peak_reduction,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::run_cooling_load;
    use tts_pcm::PcmMaterial;
    use tts_server::{ServerClass, ServerWaxCharacteristics};
    use tts_units::Celsius;
    use tts_workload::GoogleTrace;

    fn config() -> ClusterConfig {
        let spec = ServerClass::LowPower1U.spec();
        let chars = ServerWaxCharacteristics::extract(
            &spec,
            &PcmMaterial::commercial_paraffin(Celsius::new(48.0)),
        );
        ClusterConfig::paper_cluster(spec, chars)
    }

    #[test]
    fn full_deployment_matches_the_main_model() {
        let cfg = config();
        let trace = GoogleTrace::default_two_day();
        let full = run_partial_deployment(&cfg, trace.total(), Fraction::ONE);
        let reference = run_cooling_load(&cfg, trace.total());
        assert!((full.peak_reduction.value() - reference.peak_reduction.value()).abs() < 1e-9);
    }

    #[test]
    fn zero_deployment_changes_nothing() {
        let cfg = config();
        let trace = GoogleTrace::default_two_day();
        let none = run_partial_deployment(&cfg, trace.total(), Fraction::ZERO);
        assert!(none.peak_reduction.value().abs() < 1e-9);
        for (nw, w) in none.load_no_wax_kw.iter().zip(&none.load_with_wax_kw) {
            assert!((nw - w).abs() < 1e-9);
        }
    }

    #[test]
    fn reduction_grows_monotonically_with_deployment() {
        let cfg = config();
        let trace = GoogleTrace::default_two_day();
        let sweep = deployment_sweep(&cfg, trace.total(), 5);
        for w in sweep.windows(2) {
            assert!(
                w[1].peak_reduction.value() >= w[0].peak_reduction.value() - 1e-9,
                "reduction fell: {:?}",
                w
            );
        }
        assert!(sweep.last().expect("non-empty").peak_reduction.value() > 0.0);
    }

    #[test]
    fn half_deployment_keeps_more_than_half_the_benefit() {
        // Peak shaving has diminishing returns: the first waxed racks trim
        // the single highest point, while later ones must flatten an ever
        // wider plateau. Half the fleet should therefore deliver *more*
        // than half of the full-fleet reduction, but strictly less than
        // all of it.
        let cfg = config();
        let trace = GoogleTrace::default_two_day();
        let half = run_partial_deployment(&cfg, trace.total(), Fraction::new(0.5));
        let full = run_partial_deployment(&cfg, trace.total(), Fraction::ONE);
        let ratio = half.peak_reduction.value() / full.peak_reduction.value();
        assert!(
            (0.5..0.95).contains(&ratio),
            "half deployment yields {ratio} of full benefit"
        );
    }

    #[test]
    #[should_panic(expected = "at least the 0 % and 100 % endpoints")]
    fn degenerate_sweep_panics() {
        let cfg = config();
        let trace = GoogleTrace::default_two_day();
        deployment_sweep(&cfg, trace.total(), 1);
    }
}
