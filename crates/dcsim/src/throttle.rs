//! The thermally constrained (oversubscribed) scenario — Figure 12.
//!
//! §5.2: the cooling system is "significantly smaller than the thermal
//! output of the datacenter with all servers active", so "thermal
//! management techniques such as downclocking/DVFS ... must be applied to
//! prevent the datacenter from overheating". The policy, per tick:
//!
//! 1. try to serve the offered load at nominal frequency;
//! 2. if the resulting cooling load (net of wax absorption) exceeds the
//!    thermal limit, downclock to 1.6 GHz;
//! 3. if still over, cap utilization below the offered load (queued work
//!    is dropped from the throughput plot, as in the paper).
//!
//! Wax adds headroom: while melting, it absorbs `G·(T_air − T_wax)` per
//! server, letting the cluster hold nominal frequency "until the thermal
//! capacity of the wax is full".

use crate::cluster::MELT_EDGES;
use tts_obs::MetricsSink;
use tts_pcm::PcmState;
use tts_server::{ServerSpec, ServerWaxCharacteristics};
use tts_units::{Fraction, KiloWatts, Watts};
use tts_workload::TimeSeries;

/// Configuration of a constrained-throughput run.
#[derive(Debug, Clone)]
pub struct ConstrainedConfig {
    /// The server model.
    pub spec: ServerSpec,
    /// Servers in the cluster.
    pub servers: usize,
    /// Wax characteristics (the with-wax arm uses them; the no-wax arm
    /// ignores them).
    pub chars: ServerWaxCharacteristics,
    /// Thermal limit: the cluster heat the cooling system can remove, kW.
    pub limit: KiloWatts,
}

impl ConstrainedConfig {
    /// An oversubscribed cluster whose cooling can just sustain the whole
    /// cluster at `sustainable_util` utilization when downclocked to the
    /// throttle frequency — the knob that makes "downclocking is imposed"
    /// true at peak, as in the paper's setup.
    pub fn oversubscribed(
        spec: ServerSpec,
        servers: usize,
        chars: ServerWaxCharacteristics,
        sustainable_util: Fraction,
    ) -> Self {
        let thr = spec.cpu.throttle_ratio();
        let per_server = spec.wall_power(sustainable_util, thr);
        let limit = KiloWatts::new(per_server.value() * servers as f64 / 1000.0);
        Self {
            spec,
            servers,
            chars,
            limit,
        }
    }
}

/// One arm's state at a tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickDecision {
    /// Utilization actually served.
    pub utilization: Fraction,
    /// Frequency fraction used.
    pub freq: Fraction,
    /// Absolute throughput `u × f`.
    pub throughput: f64,
    /// Cluster cooling load presented to the plant, kW.
    pub cooling_load_kw: f64,
}

tts_units::derive_json! { struct TickDecision { utilization, freq, throughput, cooling_load_kw } }

/// Result of a constrained run (one Figure 12 panel).
#[derive(Debug, Clone, PartialEq)]
pub struct ConstrainedRun {
    /// Sample times, hours.
    pub times_h: Vec<f64>,
    /// Throughput with no thermal limit, normalized.
    pub ideal: Vec<f64>,
    /// Throughput without wax, normalized.
    pub no_wax: Vec<f64>,
    /// Throughput with wax, normalized.
    pub with_wax: Vec<f64>,
    /// Wax melt fraction over time.
    pub melt_fraction: Vec<f64>,
    /// The normalization base: peak *absolute* throughput of the no-wax
    /// arm ("normalized to the peak throughput while downclocked").
    pub norm_base: f64,
    /// Peak normalized throughput gain of wax over no-wax.
    pub peak_gain: Fraction,
    /// Hours by which wax delays the onset of thermal throttling.
    pub delay_hours: f64,
    /// Hours during which the with-wax arm sustains throughput above the
    /// no-wax peak.
    pub boosted_hours: f64,
}

tts_units::derive_json! { struct ConstrainedRun { times_h, ideal, no_wax, with_wax, melt_fraction, norm_base, peak_gain, delay_hours, boosted_hours } }

/// Served load at the limit: the largest utilization `u ≤ offered` such
/// that the cluster cooling load fits the budget, at a fixed frequency.
/// `wax_q(u, f)` is the per-server wax *absorption* when serving at that
/// operating point (release is handled separately, bounded by headroom).
fn max_feasible_util(
    spec: &ServerSpec,
    servers: usize,
    freq: Fraction,
    util_ceiling: Fraction,
    budget_w: f64,
    wax_q: &impl Fn(Fraction, Fraction) -> Watts,
) -> Fraction {
    let load = |u: Fraction| -> f64 {
        (spec.wall_power(u, freq) - wax_q(u, freq)).value() * servers as f64
    };
    if load(util_ceiling) <= budget_w {
        return util_ceiling;
    }
    let (mut lo, mut hi) = (0.0, util_ceiling.value());
    for _ in 0..50 {
        let mid = 0.5 * (lo + hi);
        if load(Fraction::new(mid)) <= budget_w {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Fraction::new(lo)
}

/// Records one finished constrained run into `sink`: tick counts (total
/// and thermally throttled), the melt-fraction series, and the headline
/// gains. Post-hoc from the stored series, so all gauge writes are serial.
/// Public so alternative search paths (the `tts-design` seam) can replay
/// their winner identically.
pub fn record_constrained_run(sink: &MetricsSink, run: &ConstrainedRun) {
    if !sink.is_enabled() {
        return;
    }
    sink.counter("throttle.ticks").add(run.times_h.len() as u64);
    // A tick is throttled when the wax arm serves less than the ideal arm
    // would — the thermal limit forced a downclock or utilization cap.
    let throttled = run
        .ideal
        .iter()
        .zip(&run.with_wax)
        .filter(|(ideal, wax)| **wax < **ideal - 1e-9)
        .count();
    sink.counter("throttle.throttled_ticks")
        .add(throttled as u64);
    let hist = sink.histogram("throttle.melt_fraction", &MELT_EDGES);
    for &m in &run.melt_fraction {
        hist.record(m);
    }
    sink.gauge("throttle.melt_fraction_last")
        .set(run.melt_fraction.last().copied().unwrap_or(0.0));
    sink.gauge("throttle.peak_gain").set(run.peak_gain.value());
    sink.gauge("throttle.delay_hours").set(run.delay_hours);
    sink.gauge("throttle.boosted_hours").set(run.boosted_hours);
}

/// [`run_constrained`] with telemetry recorded into `sink` after the run
/// (see [`record_constrained_run`]). Only call from serial code — the
/// gauges are last-value-wins.
pub fn run_constrained_with(
    config: &ConstrainedConfig,
    trace: &TimeSeries,
    sink: &MetricsSink,
) -> ConstrainedRun {
    let run = run_constrained(config, trace);
    record_constrained_run(sink, &run);
    run
}

/// Runs the Figure 12 experiment: ideal / no-wax / with-wax throughput
/// under a thermal limit.
pub fn run_constrained(config: &ConstrainedConfig, trace: &TimeSeries) -> ConstrainedRun {
    let dt = trace.dt();
    let spec = &config.spec;
    let chars = &config.chars;
    let n = config.servers;
    let thr = spec.cpu.throttle_ratio();
    let budget_w = config.limit.watts().value();
    let mut pcm = PcmState::new(&chars.material, chars.mass, chars.idle_air_temp);

    let mut times_h = Vec::with_capacity(trace.len());
    let mut ideal_abs = Vec::with_capacity(trace.len());
    let mut nowax_abs = Vec::with_capacity(trace.len());
    let mut wax_abs = Vec::with_capacity(trace.len());
    let mut melt = Vec::with_capacity(trace.len());
    let mut first_throttle_nowax: Option<f64> = None;
    let mut first_throttle_wax: Option<f64> = None;

    for (i, &u_raw) in trace.values().iter().enumerate() {
        let t_h = i as f64 * dt.value() / 3600.0;
        let offered = Fraction::new(u_raw);
        times_h.push(t_h);
        ideal_abs.push(spec.throughput(offered, Fraction::ONE));

        // --- No-wax arm: throttle/cap to fit the budget. ---
        let no_wax_q = |_: Fraction, _: Fraction| Watts::ZERO;
        let decision_nowax = decide(spec, n, offered, budget_w, thr, &no_wax_q);
        if decision_nowax.throughput < spec.throughput(offered, Fraction::ONE) - 1e-9
            && first_throttle_nowax.is_none()
        {
            first_throttle_nowax = Some(t_h);
        }
        nowax_abs.push(decision_nowax.throughput);

        // --- With-wax arm: wax absorption adds headroom. ---
        // Absorption at a candidate operating point: relax a *clone* of
        // the wax state against the air temperature that point produces.
        // Only absorption (q > 0) counts toward feasibility — release is
        // not schedulable and is bounded by headroom at commit time.
        let wax_q = |u: Fraction, f: Fraction| -> Watts {
            let wall = spec.wall_power(u, f);
            let t_air = chars.air_temp_model.at(wall);
            let mut probe = pcm.clone();
            probe
                .step(t_air, chars.effective_coupling(), dt)
                .max(Watts::ZERO)
        };
        let decision_wax = decide(spec, n, offered, budget_w, thr, &wax_q);
        if decision_wax.throughput < spec.throughput(offered, Fraction::ONE) - 1e-9
            && first_throttle_wax.is_none()
        {
            first_throttle_wax = Some(t_h);
        }
        wax_abs.push(decision_wax.throughput);
        // Commit the wax step at the operating point actually chosen,
        // bounding release by the plant's current headroom.
        let wall = spec.wall_power(decision_wax.utilization, decision_wax.freq);
        let t_air = chars.air_temp_model.at(wall);
        let headroom = Watts::new((budget_w / n as f64 - wall.value()).max(0.0));
        pcm.step_with_release_cap(t_air, chars.effective_coupling(), dt, headroom);
        melt.push(pcm.melt_fraction().value());
    }

    let norm_base = nowax_abs.iter().copied().fold(f64::MIN, f64::max);
    let normalize = |v: &[f64]| -> Vec<f64> { v.iter().map(|x| x / norm_base).collect() };
    let peak_wax_norm = wax_abs.iter().copied().fold(f64::MIN, f64::max) / norm_base;
    let boosted_ticks = wax_abs.iter().filter(|&&x| x > norm_base * 1.001).count();
    let delay_hours = match (first_throttle_nowax, first_throttle_wax) {
        (Some(a), Some(b)) => (b - a).max(0.0),
        (Some(a), None) => times_h.last().copied().unwrap_or(a) - a,
        _ => 0.0,
    };

    ConstrainedRun {
        ideal: normalize(&ideal_abs),
        no_wax: normalize(&nowax_abs),
        with_wax: normalize(&wax_abs),
        melt_fraction: melt,
        norm_base,
        peak_gain: Fraction::new(peak_wax_norm - 1.0),
        delay_hours,
        boosted_hours: boosted_ticks as f64 * dt.value() / 3600.0,
        times_h,
    }
}

/// The thermal-management policy at one tick: serve as much work as the
/// thermal budget allows, choosing between nominal frequency (possibly
/// with capped utilization) and the 1.6 GHz throttle (possibly capped) —
/// whichever yields more throughput. This generalizes the paper's
/// "downclocking and/or job relocation must be applied": for the
/// high-idle-power servers here, downclocking dominates utilization
/// capping at nominal frequency whenever the budget is tight, so the
/// no-wax arm reproduces the paper's imposed 1.6 GHz behaviour, while the
/// with-wax arm can "maintain clock speeds and/or utilization".
fn decide(
    spec: &ServerSpec,
    servers: usize,
    offered: Fraction,
    budget_w: f64,
    throttle: Fraction,
    wax_q: &impl Fn(Fraction, Fraction) -> Watts,
) -> TickDecision {
    let mut best: Option<TickDecision> = None;
    for freq in [Fraction::ONE, throttle] {
        // Serving the full offered work at frequency `f` needs machine
        // utilization `offered / f` (a downclocked machine is busy longer
        // per unit of work); utilization saturates at 1.
        let ceiling = Fraction::new(offered.value() / freq.value());
        let u = max_feasible_util(spec, servers, freq, ceiling, budget_w, wax_q);
        let load = (spec.wall_power(u, freq) - wax_q(u, freq)).value() * servers as f64;
        let candidate = TickDecision {
            utilization: u,
            freq,
            throughput: spec.throughput(u, freq),
            cooling_load_kw: load / 1000.0,
        };
        // Prefer more throughput; on ties prefer the cooler operating
        // point (which also melts the wax more slowly).
        let better = match &best {
            None => true,
            Some(b) => {
                candidate.throughput > b.throughput + 1e-12
                    || ((candidate.throughput - b.throughput).abs() <= 1e-12
                        && candidate.cooling_load_kw < b.cooling_load_kw)
            }
        };
        if better {
            best = Some(candidate);
        }
    }
    best.expect("two candidates evaluated")
}

/// Grid-searches the melting point that maximizes the constrained
/// cluster's peak throughput gain (ties broken by longer throttle delay).
///
/// In the constrained scenario the optimal wax melts near the *thermal
/// limit's* air temperature — lower than the fully-subscribed case — so
/// the paper's freedom to pick the commercial-paraffin grade matters here
/// too.
pub fn select_melting_point_constrained(
    config: &ConstrainedConfig,
    trace: &TimeSeries,
    candidates_c: impl IntoIterator<Item = f64>,
) -> (tts_pcm::PcmMaterial, ConstrainedRun) {
    select_melting_point_constrained_with(config, trace, candidates_c, &MetricsSink::disabled())
}

/// [`select_melting_point_constrained`] with telemetry: candidate runs
/// stay unobserved (they would race on the gauges); the search counts
/// `throttle.candidates_evaluated` and then serially replays the winner's
/// stored series into `sink` (see [`record_constrained_run`]), keeping the snapshot
/// byte-identical at any thread count.
pub fn select_melting_point_constrained_with(
    config: &ConstrainedConfig,
    trace: &TimeSeries,
    candidates_c: impl IntoIterator<Item = f64>,
    sink: &MetricsSink,
) -> (tts_pcm::PcmMaterial, ConstrainedRun) {
    // Independent simulations per candidate → the shared sweep on the
    // tts_exec pool; the ordered results feed the same in-order reduction
    // as the serial loop.
    let runs: Vec<(f64, ConstrainedRun)> = crate::cluster::sweep_candidates(
        candidates_c.into_iter().collect(),
        sink,
        "throttle.candidates_evaluated",
        |c| {
            let cfg = ConstrainedConfig {
                chars: config.chars.with_melting_point(tts_units::Celsius::new(c)),
                spec: config.spec.clone(),
                servers: config.servers,
                limit: config.limit,
            };
            run_constrained(&cfg, trace)
        },
    );
    let best_gain = runs
        .iter()
        .map(|(_, r)| r.peak_gain.value())
        .fold(f64::MIN, f64::max);
    // A slightly smaller boost held for hours beats a marginally larger
    // spike: among near-optimal gains, take the longest throttle delay
    // (the paper reports both numbers together: "+69 % over 3.1 hours").
    let (c, run) = runs
        .into_iter()
        .filter(|(_, r)| r.peak_gain.value() >= 0.95 * best_gain)
        .max_by(|(_, a), (_, b)| {
            a.delay_hours
                .partial_cmp(&b.delay_hours)
                .expect("delays are finite")
        })
        .expect("at least one candidate melting point");
    record_constrained_run(sink, &run);
    (
        tts_pcm::PcmMaterial::commercial_paraffin(tts_units::Celsius::new(c)),
        run,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::default_melting_candidates;
    use tts_pcm::PcmMaterial;
    use tts_server::ServerClass;
    use tts_units::Celsius;
    use tts_workload::GoogleTrace;

    fn config_for(class: ServerClass) -> ConstrainedConfig {
        let spec = class.spec();
        let chars = ServerWaxCharacteristics::extract(
            &spec,
            &PcmMaterial::commercial_paraffin(Celsius::new(45.0)),
        );
        ConstrainedConfig::oversubscribed(spec, 1008, chars, Fraction::new(0.71))
    }

    fn best_run_for(class: ServerClass) -> ConstrainedRun {
        let cfg = config_for(class);
        let trace = GoogleTrace::default_two_day();
        let (_, run) =
            select_melting_point_constrained(&cfg, trace.total(), default_melting_candidates());
        run
    }

    #[test]
    fn below_the_limit_all_three_arms_agree() {
        // Paper: "Below the thermal limit, all three have the same
        // throughput."
        let cfg = config_for(ServerClass::LowPower1U);
        let trace = GoogleTrace::default_two_day();
        let run = run_constrained(&cfg, trace.total());
        let mut agreeing = 0;
        let mut off_peak = 0;
        for i in 0..run.times_h.len() {
            if run.ideal[i] < run.no_wax[i] + 1e-9 {
                off_peak += 1;
                if (run.ideal[i] - run.with_wax[i]).abs() < 1e-9 {
                    agreeing += 1;
                }
            }
        }
        assert!(off_peak > 0, "the trough must sit below the limit");
        assert_eq!(agreeing, off_peak, "arms must agree whenever unconstrained");
    }

    #[test]
    fn no_wax_peak_is_the_normalization_base() {
        let cfg = config_for(ServerClass::LowPower1U);
        let trace = GoogleTrace::default_two_day();
        let run = run_constrained(&cfg, trace.total());
        let peak_nowax = run.no_wax.iter().copied().fold(f64::MIN, f64::max);
        assert!((peak_nowax - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wax_boosts_peak_throughput_and_delays_throttling() {
        for class in ServerClass::ALL {
            let run = best_run_for(class);
            assert!(
                run.peak_gain.value() > 0.10,
                "{class}: gain {} (paper: 33–69 %)",
                run.peak_gain
            );
            assert!(
                run.delay_hours > 0.5,
                "{class}: delay {} h (paper: 3.1–5.1 h)",
                run.delay_hours
            );
        }
    }

    #[test]
    fn the_2u_cluster_gains_the_most() {
        // The paper's headline ordering: 69 % (2U) ≫ 34 % (OCP) ≈ 33 % (1U).
        // The 2U couples the most wax (4 L in four thin boxes at 69 %
        // blockage) to the most CPU-dominated power budget.
        let g1u = best_run_for(ServerClass::LowPower1U).peak_gain.value();
        let g2u = best_run_for(ServerClass::HighThroughput2U)
            .peak_gain
            .value();
        let gocp = best_run_for(ServerClass::OpenComputeBlade)
            .peak_gain
            .value();
        assert!(
            g2u > g1u && g2u > gocp,
            "2U must lead: 1U {g1u:.2}, 2U {g2u:.2}, OCP {gocp:.2}"
        );
    }

    #[test]
    fn ideal_peaks_near_twice_the_downclocked_peak() {
        // The Figure 12 y-axis reaches ~2.0 at the ideal peak with the
        // paper's oversubscription level.
        let cfg = config_for(ServerClass::HighThroughput2U);
        let trace = GoogleTrace::default_two_day();
        let run = run_constrained(&cfg, trace.total());
        let ideal_peak = run.ideal.iter().copied().fold(f64::MIN, f64::max);
        assert!(
            (1.4..2.6).contains(&ideal_peak),
            "ideal peak {ideal_peak} (paper plots ≈ 2.0)"
        );
    }

    #[test]
    fn wax_gain_is_transient_not_permanent() {
        // Once the wax is saturated the with-wax arm falls back to the
        // no-wax plateau.
        let run = best_run_for(ServerClass::LowPower1U);
        let trace_hours = run.times_h.last().copied().unwrap_or(0.0);
        assert!(
            run.boosted_hours < 0.75 * trace_hours,
            "boost must end when the wax saturates: {} of {} h",
            run.boosted_hours,
            trace_hours
        );
        assert!(run.boosted_hours > 0.5);
        // The wax melts substantially during the boost.
        let max_melt = run.melt_fraction.iter().copied().fold(f64::MIN, f64::max);
        assert!(max_melt > 0.5, "wax barely melted: {max_melt}");
    }

    #[test]
    fn bigger_thermal_limit_means_less_gain() {
        let spec = ServerClass::LowPower1U.spec();
        let chars = ServerWaxCharacteristics::extract(
            &spec,
            &PcmMaterial::commercial_paraffin(Celsius::new(45.0)),
        );
        let trace = GoogleTrace::default_two_day();
        let tight = run_constrained(
            &ConstrainedConfig::oversubscribed(
                spec.clone(),
                1008,
                chars.clone(),
                Fraction::new(0.65),
            ),
            trace.total(),
        );
        let loose = run_constrained(
            &ConstrainedConfig::oversubscribed(spec, 1008, chars, Fraction::new(0.95)),
            trace.total(),
        );
        assert!(
            tight.peak_gain.value() >= loose.peak_gain.value(),
            "tight {} vs loose {}",
            tight.peak_gain,
            loose.peak_gain
        );
    }
}
