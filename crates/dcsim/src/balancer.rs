//! Load-balancing policies.
//!
//! The paper "use[s] a round robin load balancing scheme" (§4.2); the
//! alternatives here feed the load-balancing ablation bench.

use tts_rng::{Rng, SeedableRng, Xoshiro256pp};

/// A load balancer picks the target server for each arriving job given the
/// servers' current occupancy (running + queued job counts).
pub trait Balancer: std::fmt::Debug {
    /// Chooses a server index in `0..occupancy.len()`.
    fn pick(&mut self, occupancy: &[usize]) -> usize;

    /// Policy name for reporting.
    fn name(&self) -> &'static str;
}

/// The paper's round-robin policy.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Starts at server 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Balancer for RoundRobin {
    fn pick(&mut self, occupancy: &[usize]) -> usize {
        let i = self.next % occupancy.len();
        self.next = self.next.wrapping_add(1);
        i
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Join-shortest-queue: picks the server with the fewest jobs (first on
/// ties).
#[derive(Debug, Default)]
pub struct LeastLoaded;

impl LeastLoaded {
    /// A stateless least-loaded balancer.
    pub fn new() -> Self {
        Self
    }
}

impl Balancer for LeastLoaded {
    fn pick(&mut self, occupancy: &[usize]) -> usize {
        occupancy
            .iter()
            .enumerate()
            .min_by_key(|(_, &o)| o)
            .map(|(i, _)| i)
            .expect("cluster has at least one server")
    }

    fn name(&self) -> &'static str {
        "least-loaded"
    }
}

/// Uniform random placement (seeded).
#[derive(Debug)]
pub struct RandomBalancer {
    rng: Xoshiro256pp,
}

impl RandomBalancer {
    /// A seeded random balancer.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Xoshiro256pp::seed_from_u64(seed),
        }
    }
}

impl Balancer for RandomBalancer {
    fn pick(&mut self, occupancy: &[usize]) -> usize {
        self.rng.gen_range(0..occupancy.len())
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::new();
        let occ = vec![0; 3];
        assert_eq!(rr.pick(&occ), 0);
        assert_eq!(rr.pick(&occ), 1);
        assert_eq!(rr.pick(&occ), 2);
        assert_eq!(rr.pick(&occ), 0);
    }

    #[test]
    fn least_loaded_finds_minimum() {
        let mut ll = LeastLoaded::new();
        assert_eq!(ll.pick(&[3, 1, 2]), 1);
        assert_eq!(ll.pick(&[0, 0, 0]), 0); // first on ties
    }

    #[test]
    fn random_is_in_range_and_deterministic() {
        let occ = vec![0; 10];
        let picks_a: Vec<usize> = {
            let mut r = RandomBalancer::new(7);
            (0..100).map(|_| r.pick(&occ)).collect()
        };
        let picks_b: Vec<usize> = {
            let mut r = RandomBalancer::new(7);
            (0..100).map(|_| r.pick(&occ)).collect()
        };
        assert_eq!(picks_a, picks_b);
        assert!(picks_a.iter().all(|&i| i < 10));
        // Not degenerate: hits several distinct servers.
        let distinct: std::collections::HashSet<_> = picks_a.iter().collect();
        assert!(distinct.len() > 3);
    }

    #[test]
    fn names() {
        assert_eq!(RoundRobin::new().name(), "round-robin");
        assert_eq!(LeastLoaded::new().name(), "least-loaded");
        assert_eq!(RandomBalancer::new(0).name(), "random");
    }
}
