//! The aggregate (fluid) cluster model: cooling load with and without wax.
//!
//! A cluster is 1008 identical servers behind a round-robin balancer, so
//! every server sees the same utilization trace (§4.2). That symmetry lets
//! the cooling-load study track one representative server + wax state and
//! scale by the server count — the same aggregation DCSim performs before
//! extrapolating to the datacenter.
//!
//! Per tick: utilization → wall power → wax-zone air temperature (from the
//! thermal model's extracted characteristics) → wax melt/freeze step →
//! cluster cooling load `N · (P_wall − q_wax)`.

use tts_cooling::cooling_load;
use tts_obs::MetricsSink;
use tts_pcm::{PcmMaterial, PcmState};
use tts_server::{ServerSpec, ServerWaxCharacteristics};
use tts_units::{Celsius, Fraction, KiloWatts};
use tts_workload::TimeSeries;

/// Bucket edges for the melt-fraction histogram (fraction of latent
/// capacity molten, 0–1). Shared with the constrained (Figure 12) runs.
pub(crate) const MELT_EDGES: [f64; 11] = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95];

/// Cluster configuration for the cooling-load study.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// The server model.
    pub spec: ServerSpec,
    /// Servers in the cluster (paper: 1008).
    pub servers: usize,
    /// Wax characteristics extracted from the thermal model.
    pub chars: ServerWaxCharacteristics,
}

impl ClusterConfig {
    /// The paper's 1008-server cluster of `spec` with `chars`.
    pub fn paper_cluster(spec: ServerSpec, chars: ServerWaxCharacteristics) -> Self {
        Self {
            spec,
            servers: 1008,
            chars,
        }
    }
}

/// Result of a cooling-load run (one Figure 11 panel).
#[derive(Debug, Clone, PartialEq)]
pub struct CoolingLoadRun {
    /// Sample times, hours.
    pub times_h: Vec<f64>,
    /// Cluster cooling load without wax, kW.
    pub load_no_wax_kw: Vec<f64>,
    /// Cluster cooling load with wax, kW.
    pub load_with_wax_kw: Vec<f64>,
    /// Wax melt fraction over time.
    pub melt_fraction: Vec<f64>,
    /// Peak cooling load without wax.
    pub peak_no_wax: KiloWatts,
    /// Peak cooling load with wax.
    pub peak_with_wax: KiloWatts,
    /// Relative peak reduction.
    pub peak_reduction: Fraction,
    /// Hours during which the with-wax load exceeds the no-wax load (the
    /// refreeze tail; the paper observes 6–9 h).
    pub elevated_hours: f64,
    /// Whether the wax returned to (essentially) solid by the end of the
    /// trace.
    pub refrozen_at_end: bool,
    /// The melting point used.
    pub melting_point: Celsius,
}

tts_units::derive_json! { struct CoolingLoadRun { times_h, load_no_wax_kw, load_with_wax_kw, melt_fraction, peak_no_wax, peak_with_wax, peak_reduction, elevated_hours, refrozen_at_end, melting_point } }

/// Records one finished cooling-load run into `sink`: tick count, the
/// melt-fraction series (histogram + final-value gauge), and the headline
/// peaks. Recording happens *after* the run from its stored series, so
/// every gauge write is serial (the deterministic-snapshot rule) and the
/// simulation loop itself stays untouched. Public so alternative search
/// paths (the `tts-design` seam) can replay their winner identically.
pub fn record_cooling_run(sink: &MetricsSink, run: &CoolingLoadRun) {
    if !sink.is_enabled() {
        return;
    }
    sink.counter("cluster.ticks")
        .add(run.melt_fraction.len() as u64);
    let hist = sink.histogram("cluster.melt_fraction", &MELT_EDGES);
    for &m in &run.melt_fraction {
        hist.record(m);
    }
    sink.gauge("cluster.melt_fraction_last")
        .set(run.melt_fraction.last().copied().unwrap_or(0.0));
    sink.gauge("cluster.peak_no_wax_kw")
        .set(run.peak_no_wax.value());
    sink.gauge("cluster.peak_with_wax_kw")
        .set(run.peak_with_wax.value());
    sink.gauge("cluster.peak_reduction")
        .set(run.peak_reduction.value());
    sink.gauge("cluster.melting_point_c")
        .set(run.melting_point.value());
}

/// Runs the cooling-load study for one cluster over a utilization trace.
pub fn run_cooling_load(config: &ClusterConfig, trace: &TimeSeries) -> CoolingLoadRun {
    let dt = trace.dt();
    let n = config.servers as f64;
    let chars = &config.chars;
    let mut pcm = PcmState::new(&chars.material, chars.mass, chars.idle_air_temp);

    let mut times_h = Vec::with_capacity(trace.len());
    let mut no_wax = Vec::with_capacity(trace.len());
    let mut with_wax = Vec::with_capacity(trace.len());
    let mut melt = Vec::with_capacity(trace.len());

    for (i, &u) in trace.values().iter().enumerate() {
        let wall = config.spec.wall_power(Fraction::new(u), Fraction::ONE);
        let t_air = chars.air_temp_model.at(wall);
        let q = pcm.step(t_air, chars.effective_coupling(), dt);
        let load_nw = wall * n;
        let load_w = cooling_load(wall, q) * n;
        times_h.push(i as f64 * dt.value() / 3600.0);
        no_wax.push(load_nw.kilowatts().value());
        with_wax.push(load_w.kilowatts().value());
        melt.push(pcm.melt_fraction().value());
    }

    let peak_no_wax = KiloWatts::new(no_wax.iter().copied().fold(f64::MIN, f64::max));
    // Count the refreeze tail only where the release is material
    // (> 0.5 % of the peak), not every tick with a trace of sensible
    // exchange.
    let threshold = 0.005 * peak_no_wax.value();
    let elevated_ticks = no_wax
        .iter()
        .zip(&with_wax)
        .filter(|(nw, w)| **w > **nw + threshold)
        .count();
    let peak_with_wax = KiloWatts::new(with_wax.iter().copied().fold(f64::MIN, f64::max));
    CoolingLoadRun {
        peak_reduction: Fraction::new(1.0 - peak_with_wax.value() / peak_no_wax.value()),
        elevated_hours: elevated_ticks as f64 * dt.value() / 3600.0,
        refrozen_at_end: *melt.last().expect("trace is non-empty") < 0.10,
        times_h,
        load_no_wax_kw: no_wax,
        load_with_wax_kw: with_wax,
        melt_fraction: melt,
        peak_no_wax,
        peak_with_wax,
        melting_point: config.chars.material.melting_point(),
    }
}

/// [`run_cooling_load`] with telemetry: the run's tick count,
/// melt-fraction series, and headline peaks are recorded into `sink` once
/// the run completes (see [`record_cooling_run`]). Only call from serial
/// code — the gauges are last-value-wins.
pub fn run_cooling_load_with(
    config: &ClusterConfig,
    trace: &TimeSeries,
    sink: &MetricsSink,
) -> CoolingLoadRun {
    let run = run_cooling_load(config, trace);
    record_cooling_run(sink, &run);
    run
}

/// Shared candidate-loop for the melting-point searches: evaluate every
/// candidate temperature in parallel (order-preserving `par_map`) and
/// return `(candidate, result)` pairs in candidate order, counting the
/// batch under `counter`. Both the cooling-load and the constrained
/// searches reduce over this — their selection rules differ, the sweep
/// does not.
pub(crate) fn sweep_candidates<R: Send>(
    candidates: Vec<f64>,
    sink: &MetricsSink,
    counter: &str,
    eval: impl Fn(f64) -> R + Sync,
) -> Vec<(f64, R)> {
    let runs = tts_exec::par_map(&candidates, |&c| eval(c));
    sink.counter(counter).add(candidates.len() as u64);
    candidates.into_iter().zip(runs).collect()
}

/// Grid-searches the commercial-paraffin melting point that minimizes the
/// cluster's peak cooling load (§5.1: "selected the melting temperature to
/// minimize cooling load"), requiring the wax to refreeze by the end of
/// each daily cycle.
///
/// Returns the winning material and its run.
pub fn select_melting_point(
    config: &ClusterConfig,
    trace: &TimeSeries,
    candidates_c: impl IntoIterator<Item = f64>,
) -> (PcmMaterial, CoolingLoadRun) {
    select_melting_point_with(config, trace, candidates_c, &MetricsSink::disabled())
}

/// [`select_melting_point`] with telemetry. The parallel candidate
/// evaluations run unobserved (per-candidate series would race on the
/// gauges); the search records `cluster.candidates_evaluated` /
/// `cluster.candidates_refrozen` counters and then replays the *winner's*
/// stored series into `sink` serially (see [`record_cooling_run`]) — so
/// the snapshot describes the selected configuration, byte-identically at
/// any thread count.
pub fn select_melting_point_with(
    config: &ClusterConfig,
    trace: &TimeSeries,
    candidates_c: impl IntoIterator<Item = f64>,
    sink: &MetricsSink,
) -> (PcmMaterial, CoolingLoadRun) {
    // Candidate evaluations are independent cluster simulations: the
    // shared sweep fans them out on the tts_exec pool, then this fold runs
    // *in candidate order* so the winner (strict `<`, first-best
    // tie-break) is the one the serial loop would have picked, at any
    // thread count.
    let runs = sweep_candidates(
        candidates_c.into_iter().collect(),
        sink,
        "cluster.candidates_evaluated",
        |c| {
            let cfg = ClusterConfig {
                chars: config.chars.with_melting_point(Celsius::new(c)),
                spec: config.spec.clone(),
                servers: config.servers,
            };
            run_cooling_load(&cfg, trace)
        },
    );

    let mut refrozen: u64 = 0;
    let mut best: Option<(PcmMaterial, CoolingLoadRun)> = None;
    for (c, run) in runs {
        if !run.refrozen_at_end {
            continue;
        }
        refrozen += 1;
        let better = match &best {
            None => true,
            Some((_, b)) => run.peak_with_wax < b.peak_with_wax,
        };
        if better {
            best = Some((PcmMaterial::commercial_paraffin(Celsius::new(c)), run));
        }
    }
    sink.counter("cluster.candidates_refrozen").add(refrozen);
    let best = best.expect("at least one candidate melting point must refreeze daily");
    record_cooling_run(sink, &best.1);
    best
}

/// The default candidate range: the paraffin catalogue in half-degree
/// steps. The paper quotes commercial blends at 40–60 °C; we extend
/// slightly below (the §3 retail wax melted at 39 °C) and above (C30+
/// paraffin grades melt up to ~68 °C — needed for the pre-heated air of
/// the Open Compute chassis, whose wax zone idles near 50 °C).
pub fn default_melting_candidates() -> Vec<f64> {
    let mut v = Vec::new();
    let mut c = 30.0;
    while c <= 68.0 + 1e-9 {
        v.push(c);
        c += 0.5;
    }
    v
}

/// The load level (fraction of peak wall power) at which the selected wax
/// begins to melt — the paper's "begins to melt when a server exceeds 75 %
/// load" observation.
pub fn melt_onset_load_fraction(config: &ClusterConfig) -> f64 {
    let onset = config.chars.melt_onset_power();
    let peak = config.spec.wall_power(Fraction::ONE, Fraction::ONE);
    onset.value() / peak.value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tts_pcm::PcmMaterial;
    use tts_server::ServerClass;
    use tts_workload::GoogleTrace;

    fn one_u_config() -> ClusterConfig {
        let spec = ServerClass::LowPower1U.spec();
        let chars = ServerWaxCharacteristics::extract(
            &spec,
            &PcmMaterial::commercial_paraffin(Celsius::new(40.0)),
        );
        ClusterConfig::paper_cluster(spec, chars)
    }

    #[test]
    fn no_wax_load_tracks_wall_power() {
        let config = one_u_config();
        let trace = GoogleTrace::default_two_day();
        let run = run_cooling_load(&config, trace.total());
        // Peak without wax = 1008 × wall(0.95) ≈ 1008 × 180 W ≈ 181 kW.
        let expected = config
            .spec
            .wall_power(Fraction::new(0.95), Fraction::ONE)
            .value()
            * 1008.0
            / 1000.0;
        assert!(
            (run.peak_no_wax.value() - expected).abs() < 1.0,
            "peak {} vs {}",
            run.peak_no_wax.value(),
            expected
        );
    }

    #[test]
    fn wax_reduces_peak_cooling_load() {
        let config = one_u_config();
        let trace = GoogleTrace::default_two_day();
        let (_, run) = select_melting_point(&config, trace.total(), default_melting_candidates());
        assert!(
            run.peak_reduction.value() > 0.03,
            "1U peak reduction {} (paper: 8.9 %)",
            run.peak_reduction
        );
        assert!(
            run.peak_reduction.value() < 0.20,
            "reduction implausibly large: {}",
            run.peak_reduction
        );
    }

    #[test]
    fn instrumented_search_records_the_winner() {
        let config = one_u_config();
        let trace = GoogleTrace::default_two_day();
        let sink = MetricsSink::fresh();
        let (_, run) =
            select_melting_point_with(&config, trace.total(), default_melting_candidates(), &sink);
        let n_candidates = default_melting_candidates().len() as u64;
        assert_eq!(
            sink.counter("cluster.candidates_evaluated").value(),
            n_candidates
        );
        assert!(sink.counter("cluster.candidates_refrozen").value() >= 1);
        // The replayed series belongs to the winner, not a candidate.
        assert_eq!(
            sink.counter("cluster.ticks").value(),
            run.melt_fraction.len() as u64
        );
        assert_eq!(
            sink.gauge("cluster.peak_with_wax_kw").value(),
            run.peak_with_wax.value()
        );
        assert_eq!(
            sink.gauge("cluster.melting_point_c").value(),
            run.melting_point.value()
        );
    }

    #[test]
    fn refreeze_tail_elevates_offpeak_load() {
        let config = one_u_config();
        let trace = GoogleTrace::default_two_day();
        let (_, run) = select_melting_point(&config, trace.total(), default_melting_candidates());
        // Paper: elevated cooling load "lasting between six and nine hours"
        // per daily cycle; two cycles here.
        assert!(
            run.elevated_hours > 3.0,
            "refreeze must take hours: {}",
            run.elevated_hours
        );
        assert!(run.refrozen_at_end, "wax must resolidify within the cycle");
    }

    #[test]
    fn energy_is_conserved_over_the_trace() {
        // ∫(load_with − load_no) dt = net wax energy change ≈ 0 once
        // refrozen.
        let config = one_u_config();
        let trace = GoogleTrace::default_two_day();
        let (_, run) = select_melting_point(&config, trace.total(), default_melting_candidates());
        let dt = trace.total().dt().value();
        let net: f64 = run
            .load_no_wax_kw
            .iter()
            .zip(&run.load_with_wax_kw)
            .map(|(nw, w)| (nw - w) * 1000.0 * dt)
            .sum();
        // Net absorbed energy ≤ one latent capacity's worth per server ×
        // remaining melt fraction; with refreeze it should be small
        // relative to total energy moved.
        let moved: f64 = run
            .load_no_wax_kw
            .iter()
            .zip(&run.load_with_wax_kw)
            .map(|(nw, w)| (nw - w).abs() * 1000.0 * dt)
            .sum();
        assert!(
            net.abs() < 0.25 * moved,
            "net {net} J vs moved {moved} J — wax should roughly return its heat"
        );
    }

    #[test]
    fn melt_onset_near_75_percent_load() {
        // §5.1: "the best wax typically begins to melt when a server
        // exceeds 75 % load".
        let config = one_u_config();
        let trace = GoogleTrace::default_two_day();
        let (material, _) =
            select_melting_point(&config, trace.total(), default_melting_candidates());
        let cfg = ClusterConfig {
            chars: config.chars.with_melting_point(material.melting_point()),
            ..config
        };
        let onset = melt_onset_load_fraction(&cfg);
        assert!(
            (0.5..1.0).contains(&onset),
            "melt onset at {:.0} % of peak power (paper: ~75 % load)",
            onset * 100.0
        );
    }

    #[test]
    fn default_candidates_are_sorted_unique_and_cover_the_paper_range() {
        // The design-search lattice and the grid must agree on the
        // candidate set: strictly ascending, no duplicates, half-degree
        // spaced, and spanning at least the paper's 34–58 °C window.
        let v = default_melting_candidates();
        assert!(!v.is_empty());
        for w in v.windows(2) {
            assert!(w[0] < w[1], "candidates must be strictly ascending: {w:?}");
            assert!(
                ((w[1] - w[0]) - 0.5).abs() < 1e-12,
                "candidates must be half-degree spaced: {w:?}"
            );
        }
        assert!(v[0] <= 34.0, "range must start at or below 34 °C");
        assert!(*v.last().unwrap() >= 58.0, "range must reach 58 °C");
    }

    #[test]
    fn more_wax_gives_more_reduction() {
        // The paper: "peak load reduction and savings correlate to the
        // quantity of wax". Double the 1U wax mass → larger reduction.
        let config = one_u_config();
        let trace = GoogleTrace::default_two_day();
        let (_, run_1x) =
            select_melting_point(&config, trace.total(), default_melting_candidates());
        let mut big = config.clone();
        big.chars.mass = big.chars.mass * 2.0;
        big.chars.latent_capacity = big.chars.latent_capacity * 2.0;
        big.chars.coupling = big.chars.coupling * 1.6; // more boxes → more area
        let (_, run_2x) = select_melting_point(&big, trace.total(), default_melting_candidates());
        assert!(
            run_2x.peak_reduction.value() > run_1x.peak_reduction.value(),
            "2× wax {} ≤ 1× wax {}",
            run_2x.peak_reduction,
            run_1x.peak_reduction
        );
    }
}
