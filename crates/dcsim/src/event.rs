//! A deterministic event queue.
//!
//! Events are ordered by time with a monotonically increasing sequence
//! number breaking ties, so simulations are exactly reproducible regardless
//! of float equality quirks.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the queue: `(time, seq, payload)`.
#[derive(Debug)]
struct Entry<E> {
    time: f64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue with FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `time`.
    ///
    /// # Panics
    /// Panics on a NaN time — a NaN would silently corrupt the ordering.
    pub fn push(&mut self, time: f64, payload: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.push(1.0, "first");
        q.push(1.0, "second");
        q.push(1.0, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(5.0, ());
        q.push(2.0, ());
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.len(), 2);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_panics() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(10.0, 10);
        q.push(1.0, 1);
        assert_eq!(q.pop(), Some((1.0, 1)));
        q.push(5.0, 5);
        q.push(0.5, 0); // earlier than everything else pending
        assert_eq!(q.pop(), Some((0.5, 0)));
        assert_eq!(q.pop(), Some((5.0, 5)));
        assert_eq!(q.pop(), Some((10.0, 10)));
    }
}
