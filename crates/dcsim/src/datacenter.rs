//! Datacenter extrapolation (§4.3).
//!
//! DCSim "extrapolates the cluster model out for the whole datacenter".
//! The paper's three 10 MW datacenters hold 55 clusters of 1U servers, 19
//! clusters of 2U servers, or 29 clusters of Open Compute blades (1008
//! servers per cluster).

use tts_server::{ServerClass, ServerSpec};
use tts_units::{Fraction, KiloWatts, MegaWatts};

/// A homogeneous datacenter built from identical 1008-server clusters.
#[derive(Debug, Clone, PartialEq)]
pub struct Datacenter {
    /// Server class deployed.
    pub class: ServerClass,
    /// Number of 1008-server clusters.
    pub clusters: usize,
    /// Critical (IT) power budget.
    pub critical_power: MegaWatts,
}

tts_units::derive_json! { struct Datacenter { class, clusters, critical_power } }

/// Servers per cluster (paper constant).
pub const SERVERS_PER_CLUSTER: usize = 1008;

impl Datacenter {
    /// The paper's 10 MW datacenter for a server class: "the first filled
    /// with 55 clusters of 1U low power servers, the second with 19
    /// clusters of 2U high throughput servers and the third with 29
    /// clusters of Open Compute blades".
    pub fn paper_10mw(class: ServerClass) -> Self {
        let clusters = match class {
            ServerClass::LowPower1U => 55,
            ServerClass::HighThroughput2U => 19,
            ServerClass::OpenComputeBlade => 29,
        };
        Self {
            class,
            clusters,
            critical_power: MegaWatts::new(10.0),
        }
    }

    /// Total server count.
    pub fn servers(&self) -> usize {
        self.clusters * SERVERS_PER_CLUSTER
    }

    /// Peak IT power of the whole datacenter (all servers at full load).
    pub fn peak_it_power(&self) -> KiloWatts {
        let spec = self.class.spec();
        let per = spec.wall_power(Fraction::ONE, Fraction::ONE);
        KiloWatts::new(per.value() * self.servers() as f64 / 1000.0)
    }

    /// Scales a per-cluster quantity to the datacenter.
    pub fn scale_from_cluster(&self, per_cluster: f64) -> f64 {
        per_cluster * self.clusters as f64
    }

    /// The spec of the deployed server.
    pub fn spec(&self) -> ServerSpec {
        self.class.spec()
    }

    /// How many additional servers (each with wax) fit under the original
    /// no-wax peak cooling load, given the with-wax per-server peak
    /// contribution: solves `N' · peak_wax ≤ N · peak_no_wax`.
    ///
    /// With every server carrying wax, each contributes `(1 − r)` of the
    /// original peak, so the headroom is `r/(1−r)` — the reason the paper
    /// can add 9.8 % more 1U servers from an 8.9 % reduction.
    pub fn added_servers_under_same_cooling(&self, peak_reduction: Fraction) -> usize {
        let r = peak_reduction.value();
        if r >= 1.0 {
            return usize::MAX;
        }
        let extra = self.servers() as f64 * r / (1.0 - r);
        extra.floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_counts() {
        assert_eq!(Datacenter::paper_10mw(ServerClass::LowPower1U).clusters, 55);
        assert_eq!(
            Datacenter::paper_10mw(ServerClass::HighThroughput2U).clusters,
            19
        );
        assert_eq!(
            Datacenter::paper_10mw(ServerClass::OpenComputeBlade).clusters,
            29
        );
    }

    #[test]
    fn cluster_counts_respect_critical_power() {
        // Each configuration's peak IT power must come in at or under the
        // 10 MW critical budget (the paper sizes cluster counts this way).
        for class in ServerClass::ALL {
            let dc = Datacenter::paper_10mw(class);
            let peak = dc.peak_it_power().megawatts().value();
            assert!(
                peak <= 10.3,
                "{class}: peak IT power {peak} MW exceeds critical power"
            );
            assert!(
                peak > 5.0,
                "{class}: datacenter implausibly empty: {peak} MW"
            );
        }
    }

    #[test]
    fn server_counts() {
        let dc = Datacenter::paper_10mw(ServerClass::LowPower1U);
        assert_eq!(dc.servers(), 55 * 1008);
    }

    #[test]
    fn added_servers_match_paper_arithmetic() {
        // 8.9 % reduction → 9.8 % more servers (1U); 12 % → ~13.6 % (2U).
        let dc = Datacenter::paper_10mw(ServerClass::LowPower1U);
        let added = dc.added_servers_under_same_cooling(Fraction::new(0.089));
        let pct = added as f64 / dc.servers() as f64;
        assert!((pct - 0.0977).abs() < 0.002, "1U added fraction {pct}");

        let dc2 = Datacenter::paper_10mw(ServerClass::HighThroughput2U);
        let added2 = dc2.added_servers_under_same_cooling(Fraction::new(0.12));
        let pct2 = added2 as f64 / dc2.servers() as f64;
        assert!((pct2 - 0.1364).abs() < 0.002, "2U added fraction {pct2}");
    }

    #[test]
    fn scale_from_cluster_multiplies() {
        let dc = Datacenter::paper_10mw(ServerClass::OpenComputeBlade);
        assert_eq!(dc.scale_from_cluster(2.0), 58.0);
    }
}
