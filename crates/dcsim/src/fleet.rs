//! The epoch-sharded fleet engine: 1M+ servers across datacenters.
//!
//! The discrete engine ([`crate::discrete`]) replays individual jobs —
//! exact, but a million servers would mean billions of events. This
//! module trades job identity for scale the way the paper trades the
//! 1008-server cluster for a datacenter extrapolation, except the fleet
//! is simulated directly: per-server *fluid* state stepped in fixed
//! epochs. ROADMAP item #1 ("simulate the fleet directly") and the
//! geo-routing formulation of "Thermal-aware Workload Distribution for
//! Data Centers with Demand Variations" (arXiv 2308.12559) both live
//! here: each datacenter has its own tariff, ambient temperature, and
//! diurnal phase, and a deferrable share of work is routed toward cheap
//! cooling headroom each epoch.
//!
//! # State layout
//!
//! Struct-of-arrays, sharded: each [`Shard`] owns flat arrays —
//! `remaining` (backlog core-seconds, the remaining-work array),
//! `offered`/`done`/`delay` (QoS accumulators), `down`, and `epoch_tag`
//! (kill counter) — for a contiguous run of whole racks. Shards step in
//! parallel over [`tts_exec::par_map_mut`]; everything that crosses a
//! shard boundary (fault actions, the reroute pool, demand planning,
//! per-DC accounting) happens serially between epochs.
//!
//! # Determinism argument (thread- AND shard-invariance)
//!
//! 1. Per-server updates are pure functions of `(seed, global index,
//!    epoch, per-DC inputs, own state)` — no neighbour reads.
//! 2. Shard boundaries are snapped to rack boundaries, so per-rack
//!    partial sums accumulate over the same servers in the same order
//!    no matter how racks are grouped into shards.
//! 3. The merge folds rack partials in global rack order on the driver
//!    thread, and `par_map_mut` returns shard results in input order.
//!
//! Hence the result is byte-identical across `TTS_THREADS` *and* across
//! shard counts — `rack_size` is the real scheduling boundary, and the
//! regression tests below pin rack-aligned vs misaligned shard counts to
//! the same bytes. Fault actions from a [`FaultHook`] pass through a
//! [`CalendarQueue`], which quantizes them to the next epoch boundary in
//! deterministic `(time, insertion)` order.

use crate::calendar::CalendarQueue;
use crate::discrete::{FaultAction, FaultHook};
use tts_obs::{Counter, Gauge, MetricsSink};
use tts_units::Seconds;
use tts_workload::TimeSeries;

/// One datacenter in the fleet: capacity plus the per-site economics the
/// geo-router trades against (tariff, ambient-driven cooling overhead,
/// diurnal phase).
#[derive(Debug, Clone, PartialEq)]
pub struct DatacenterSpec {
    /// Site name (report key).
    pub name: String,
    /// Servers at this site.
    pub servers: usize,
    /// Electricity price during local peak hours (08–20), $/kWh.
    pub tariff_peak_per_kwh: f64,
    /// Electricity price off-peak, $/kWh.
    pub tariff_offpeak_per_kwh: f64,
    /// Outside-air temperature, °C (drives the cooling overhead).
    pub ambient_c: f64,
    /// Local-time offset from the trace clock, hours (shifts both the
    /// diurnal demand phase and the tariff schedule).
    pub utc_offset_h: f64,
    /// Per-server idle power, W.
    pub idle_w: f64,
    /// Per-server power at full core occupancy, W.
    pub busy_w: f64,
}

impl DatacenterSpec {
    /// A site with `servers` machines and defaults: $0.10/$0.07 per kWh,
    /// 18 °C ambient, zero offset, 150 W idle / 300 W busy.
    pub fn new(name: &str, servers: usize) -> Self {
        Self {
            name: name.to_string(),
            servers,
            tariff_peak_per_kwh: 0.10,
            tariff_offpeak_per_kwh: 0.07,
            ambient_c: 18.0,
            utc_offset_h: 0.0,
            idle_w: 150.0,
            busy_w: 300.0,
        }
    }

    /// Sets the peak / off-peak electricity tariff ($/kWh).
    #[must_use]
    pub fn tariffs(mut self, peak: f64, offpeak: f64) -> Self {
        self.tariff_peak_per_kwh = peak;
        self.tariff_offpeak_per_kwh = offpeak;
        self
    }

    /// Sets the outside-air temperature (°C).
    #[must_use]
    pub fn ambient_c(mut self, c: f64) -> Self {
        self.ambient_c = c;
        self
    }

    /// Sets the local-time offset (hours).
    #[must_use]
    pub fn utc_offset_h(mut self, h: f64) -> Self {
        self.utc_offset_h = h;
        self
    }

    /// Sets per-server idle / busy power (W).
    #[must_use]
    pub fn power_w(mut self, idle: f64, busy: f64) -> Self {
        self.idle_w = idle;
        self.busy_w = busy;
        self
    }

    /// The tariff in force at trace time `t_s` (local peak = 08:00–20:00).
    pub fn tariff_at(&self, t_s: f64) -> f64 {
        let local_h = (t_s / 3600.0 + self.utc_offset_h).rem_euclid(24.0);
        if (8.0..20.0).contains(&local_h) {
            self.tariff_peak_per_kwh
        } else {
            self.tariff_offpeak_per_kwh
        }
    }

    /// Cooling power as a fraction of IT power: 0.10 at ≤10 °C ambient,
    /// +0.015 per °C above that (free cooling degrades as it warms).
    pub fn cooling_overhead(&self) -> f64 {
        0.10 + 0.015 * (self.ambient_c - 10.0).max(0.0)
    }
}

tts_units::derive_json! {
    struct DatacenterSpec {
        name,
        servers,
        tariff_peak_per_kwh,
        tariff_offpeak_per_kwh,
        ambient_c,
        utc_offset_h,
        idle_w,
        busy_w,
    }
}

/// Builder for [`FleetSim`].
#[derive(Debug, Clone)]
#[must_use = "a fleet config does nothing until .build()"]
pub struct FleetConfig {
    datacenters: Vec<DatacenterSpec>,
    trace: TimeSeries,
    cores_per_server: usize,
    rack_size: usize,
    epoch: f64,
    shards: usize,
    seed: u64,
    deferrable_frac: f64,
    horizon: Option<f64>,
    metrics: MetricsSink,
}

impl FleetConfig {
    /// A fleet driven by `trace` (utilization of full core capacity,
    /// sampled per site at local time). Defaults: 16 cores/server, racks
    /// of 48, 60 s epochs, 8 shards, seed 42, 25% deferrable work,
    /// horizon = trace duration.
    pub fn new(trace: TimeSeries) -> Self {
        Self {
            datacenters: Vec::new(),
            trace,
            cores_per_server: 16,
            rack_size: 48,
            epoch: 60.0,
            shards: 8,
            seed: 42,
            deferrable_frac: 0.25,
            horizon: None,
            metrics: MetricsSink::default(),
        }
    }

    /// Adds a datacenter.
    pub fn datacenter(mut self, spec: DatacenterSpec) -> Self {
        self.datacenters.push(spec);
        self
    }

    /// Concurrent job slots per server (default 16).
    pub fn cores_per_server(mut self, cores: usize) -> Self {
        self.cores_per_server = cores;
        self
    }

    /// Servers per rack (default 48) — the sharding boundary: shard cuts
    /// are snapped to whole racks, which is what makes the result
    /// shard-count-invariant.
    pub fn rack_size(mut self, servers: usize) -> Self {
        self.rack_size = servers;
        self
    }

    /// Epoch length (default 60 s).
    pub fn epoch(mut self, dt: Seconds) -> Self {
        self.epoch = dt.value();
        self
    }

    /// Requested shard count (default 8; clamped to the rack count).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Seed for the per-server demand jitter.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fraction of each site's demand the geo-router may move to another
    /// site (default 0.25; 0 disables routing).
    pub fn deferrable_frac(mut self, frac: f64) -> Self {
        self.deferrable_frac = frac;
        self
    }

    /// Simulated horizon (default: the trace duration; longer horizons
    /// wrap the trace).
    pub fn horizon(mut self, horizon: Seconds) -> Self {
        self.horizon = Some(horizon.value());
        self
    }

    /// Routes epoch-loop telemetry to `sink` (all deterministic — the
    /// control path is serial).
    pub fn metrics(mut self, sink: &MetricsSink) -> Self {
        self.metrics = sink.clone();
        self
    }

    /// Builds the simulator.
    ///
    /// # Panics
    /// Panics when no datacenter has servers, or cores / rack size /
    /// epoch / shards / deferrable fraction / trace are out of range.
    pub fn build(self) -> FleetSim {
        let total: usize = self.datacenters.iter().map(|d| d.servers).sum();
        assert!(total > 0, "fleet needs at least one server");
        assert!(self.cores_per_server > 0, "need at least one core");
        assert!(self.rack_size > 0, "need at least one server per rack");
        assert!(self.epoch > 0.0, "epoch must be positive");
        assert!(self.shards > 0, "need at least one shard");
        assert!(
            (0.0..=1.0).contains(&self.deferrable_frac),
            "deferrable fraction must be in [0, 1]"
        );
        assert!(!self.trace.is_empty(), "trace must offer some load");
        assert!(self.trace.peak() > 0.0, "trace must offer some load");

        // Racks never straddle a datacenter: each site's servers are cut
        // into rack_size chunks (last rack possibly partial).
        let mut racks: Vec<(u32, usize)> = Vec::new(); // (dc, servers)
        for (d, spec) in self.datacenters.iter().enumerate() {
            let mut left = spec.servers;
            while left > 0 {
                let n = left.min(self.rack_size);
                racks.push((d as u32, n));
                left -= n;
            }
        }
        // Shards are contiguous runs of whole racks; rack r goes to shard
        // ⌊r·S/R⌋ — deterministic, and grouping cannot change results
        // (see the module-level determinism argument).
        let effective = self.shards.min(racks.len());
        let mut shards: Vec<Shard> = Vec::with_capacity(effective);
        let mut base = 0usize;
        let mut rack_cursor = 0usize;
        for k in 0..effective {
            let hi = ((k + 1) * racks.len()).div_ceil(effective).min(racks.len());
            let mut shard_racks = Vec::new();
            let mut n = 0usize;
            let mut dc = Vec::new();
            for &(d, len) in &racks[rack_cursor..hi] {
                shard_racks.push(ShardRack {
                    start: n,
                    len,
                    dc: d,
                });
                dc.extend(std::iter::repeat_n(d, len));
                n += len;
            }
            rack_cursor = hi;
            shards.push(Shard {
                base,
                racks: shard_racks,
                dc,
                remaining: vec![0.0; n],
                offered: vec![0.0; n],
                done: vec![0.0; n],
                delay: vec![0.0; n],
                down: vec![false; n],
                epoch_tag: vec![0; n],
            });
            base += n;
        }
        debug_assert_eq!(base, total);

        let horizon = self.horizon.unwrap_or(self.trace.duration().value());
        assert!(horizon > 0.0, "horizon must be positive");
        let live: Vec<usize> = self.datacenters.iter().map(|d| d.servers).collect();
        let ndc = self.datacenters.len();
        FleetSim {
            obs: FleetObs::resolve(&self.metrics),
            datacenters: self.datacenters,
            trace: self.trace,
            cores: self.cores_per_server,
            epoch: self.epoch,
            seed: self.seed,
            deferrable_frac: self.deferrable_frac,
            horizon,
            shards,
            live,
            reroute_pool: vec![0.0; ndc],
            util_trace: vec![Vec::new(); ndc],
            control: CalendarQueue::new(),
            fault_hook: None,
            fault_events: 0,
            rescheduled_core_s: 0.0,
        }
    }
}

/// A contiguous run of whole racks within one shard.
#[derive(Debug)]
struct ShardRack {
    /// Offset of the rack's first server within the shard.
    start: usize,
    /// Servers in the rack.
    len: usize,
    /// Owning datacenter.
    dc: u32,
}

/// One shard: struct-of-arrays state for a contiguous run of whole racks.
#[derive(Debug)]
struct Shard {
    /// Global index of the shard's first server.
    base: usize,
    racks: Vec<ShardRack>,
    /// Per-server owning datacenter.
    dc: Vec<u32>,
    /// Remaining work (backlog), core-seconds.
    remaining: Vec<f64>,
    /// Fresh work credited, core-seconds (excludes rerouted deliveries —
    /// the conservation ledger counts those once, at injection).
    offered: Vec<f64>,
    /// Work completed, core-seconds.
    done: Vec<f64>,
    /// ∫ backlog dt, core-seconds² (queueing-delay accumulator).
    delay: Vec<f64>,
    /// Down due to an injected fault.
    down: Vec<bool>,
    /// Bumped on every kill.
    epoch_tag: Vec<u32>,
}

/// Per-rack partial sums from one epoch step, merged serially in global
/// rack order.
#[derive(Debug, Clone, Copy)]
struct RackPartial {
    dc: u32,
    offered: f64,
    done: f64,
    backlog: f64,
    /// Rerouted work delivered out of the pool this epoch.
    delivered: f64,
}

impl Shard {
    /// Steps every live server one epoch. Pure per-server arithmetic —
    /// see the module-level determinism argument.
    fn step(
        &mut self,
        e: u64,
        dt: f64,
        cores: usize,
        seed: u64,
        fresh_per_core: &[f64],
        reroute_per_core: &[f64],
    ) -> Vec<RackPartial> {
        let cores_f = cores as f64;
        let cap = cores_f * dt;
        let mut out = Vec::with_capacity(self.racks.len());
        for rack in &self.racks {
            let mut p = RackPartial {
                dc: rack.dc,
                offered: 0.0,
                done: 0.0,
                backlog: 0.0,
                delivered: 0.0,
            };
            for i in rack.start..rack.start + rack.len {
                if self.down[i] {
                    continue;
                }
                let d = self.dc[i] as usize;
                let g = (self.base + i) as u64;
                let fresh = fresh_per_core[d] * cores_f * jitter(seed, g, e);
                let redo = reroute_per_core[d] * cores_f;
                self.offered[i] += fresh;
                let x = self.remaining[i] + fresh + redo;
                let done = x.min(cap);
                self.remaining[i] = x - done;
                self.done[i] += done;
                self.delay[i] += self.remaining[i] * dt;
                p.offered += fresh;
                p.done += done;
                p.backlog += self.remaining[i];
                p.delivered += redo;
            }
            out.push(p);
        }
        out
    }
}

/// Deterministic per-(seed, server, epoch) demand jitter in [0.75, 1.25)
/// — a splitmix64 finalizer, so servers decorrelate without any shared
/// RNG stream to order.
fn jitter(seed: u64, server: u64, epoch: u64) -> f64 {
    let mut z = seed
        ^ server.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ epoch.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    0.75 + 0.5 * ((z >> 11) as f64 / (1u64 << 53) as f64)
}

/// Resolved epoch-loop metric handles (no-ops without a sink). The
/// control path is serial, so everything registers deterministic.
#[derive(Debug, Clone, Default)]
struct FleetObs {
    epochs: Counter,
    kills: Counter,
    revives: Counter,
    servers_down: Gauge,
}

impl FleetObs {
    fn resolve(sink: &MetricsSink) -> Self {
        Self {
            epochs: sink.counter("fleet.epochs"),
            kills: sink.counter("fleet.fault.kills"),
            revives: sink.counter("fleet.fault.revives"),
            servers_down: sink.gauge("fleet.servers_down"),
        }
    }
}

/// Per-datacenter results of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct DcMetrics {
    /// Site name.
    pub name: String,
    /// Servers at the site.
    pub servers: usize,
    /// Mean utilization of full core capacity.
    pub mean_utilization: f64,
    /// Peak per-epoch utilization.
    pub peak_utilization: f64,
    /// IT energy, kWh.
    pub it_energy_kwh: f64,
    /// Cooling energy, kWh.
    pub cooling_energy_kwh: f64,
    /// Electricity cost (IT + cooling at the local tariff), $.
    pub energy_cost_usd: f64,
}

tts_units::derive_json! {
    struct DcMetrics {
        name,
        servers,
        mean_utilization,
        peak_utilization,
        it_energy_kwh,
        cooling_energy_kwh,
        energy_cost_usd,
    }
}

/// Aggregate metrics of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetMetrics {
    /// Fleet size.
    pub servers: usize,
    /// Epochs stepped.
    pub epochs: u64,
    /// Fresh work credited, core-seconds.
    pub offered_core_s: f64,
    /// Work completed, core-seconds.
    pub done_core_s: f64,
    /// Backlog at the end of the run, core-seconds.
    pub backlog_core_s: f64,
    /// Displaced work still waiting in the reroute pool, core-seconds.
    pub reroute_pool_core_s: f64,
    /// offered − done − backlog − pool (float residue of the ledger;
    /// deterministic, and ≈0 relative to offered).
    pub conservation_error_core_s: f64,
    /// Fleet-mean utilization of full core capacity.
    pub mean_utilization: f64,
    /// Largest total backlog seen at any epoch boundary, core-seconds.
    pub peak_backlog_core_s: f64,
    /// Mean queueing delay per unit of completed work, seconds
    /// (Little's law over the backlog integral).
    pub mean_delay_s: f64,
    /// Fault actions applied (kills + revives).
    pub fault_events: u64,
    /// Work displaced off killed servers, core-seconds.
    pub rescheduled_core_s: f64,
    /// Per-site breakdown, in configuration order.
    pub per_dc: Vec<DcMetrics>,
}

tts_units::derive_json! {
    struct FleetMetrics {
        servers,
        epochs,
        offered_core_s,
        done_core_s,
        backlog_core_s,
        reroute_pool_core_s,
        conservation_error_core_s,
        mean_utilization,
        peak_backlog_core_s,
        mean_delay_s,
        fault_events,
        rescheduled_core_s,
        per_dc,
    }
}

impl FleetMetrics {
    /// Simulated-servers × epochs — the work unit of the
    /// `BENCH_fleet.json` throughput metric (servers × steps / sec once
    /// divided by wall time).
    pub fn server_steps(&self) -> u64 {
        self.servers as u64 * self.epochs
    }
}

/// The epoch-sharded fleet simulator (see the module docs).
#[derive(Debug)]
pub struct FleetSim {
    datacenters: Vec<DatacenterSpec>,
    trace: TimeSeries,
    cores: usize,
    epoch: f64,
    seed: u64,
    deferrable_frac: f64,
    horizon: f64,
    shards: Vec<Shard>,
    /// Live (not-down) servers per datacenter.
    live: Vec<usize>,
    /// Work displaced off killed servers (or sites with no live
    /// capacity), waiting for delivery, core-seconds per datacenter.
    reroute_pool: Vec<f64>,
    /// Per-epoch utilization per datacenter.
    util_trace: Vec<Vec<f64>>,
    /// Fault actions quantized to the next epoch boundary, drained in
    /// deterministic (time, insertion) order.
    control: CalendarQueue<FaultAction>,
    fault_hook: Option<Box<dyn FaultHook>>,
    obs: FleetObs,
    fault_events: u64,
    rescheduled_core_s: f64,
}

impl FleetSim {
    /// Installs a fault hook; actions fire at the first epoch boundary at
    /// or after their requested time. Call before [`Self::run`].
    pub fn set_fault_hook(&mut self, hook: Box<dyn FaultHook>) {
        self.fault_hook = Some(hook);
    }

    /// Fleet size.
    pub fn servers(&self) -> usize {
        self.shards.iter().map(|s| s.dc.len()).sum()
    }

    /// Number of shards after snapping to rack boundaries.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Servers currently down.
    pub fn servers_down(&self) -> usize {
        self.servers() - self.live.iter().sum::<usize>()
    }

    /// The recorded per-epoch utilization of datacenter `dc` (fraction of
    /// its full core capacity), available after [`Self::run`].
    pub fn utilization_trace(&self, dc: usize) -> Option<TimeSeries> {
        let values = self.util_trace.get(dc)?;
        if values.is_empty() {
            return None;
        }
        Some(TimeSeries::new(Seconds::new(self.epoch), values.clone()))
    }

    /// Applies one fault action (already quantized to an epoch boundary).
    fn apply_fault(&mut self, action: FaultAction) {
        match action {
            FaultAction::KillServer(g) => {
                let Some((s, i)) = self.locate(g) else {
                    return;
                };
                if self.shards[s].down[i] {
                    return;
                }
                self.fault_events += 1;
                self.obs.kills.incr();
                let shard = &mut self.shards[s];
                shard.down[i] = true;
                shard.epoch_tag[i] += 1;
                let d = shard.dc[i] as usize;
                let displaced = shard.remaining[i];
                shard.remaining[i] = 0.0;
                self.reroute_pool[d] += displaced;
                self.rescheduled_core_s += displaced;
                self.live[d] -= 1;
            }
            FaultAction::ReviveServer(g) => {
                let Some((s, i)) = self.locate(g) else {
                    return;
                };
                if !self.shards[s].down[i] {
                    return;
                }
                self.fault_events += 1;
                self.obs.revives.incr();
                self.shards[s].down[i] = false;
                let d = self.shards[s].dc[i] as usize;
                self.live[d] += 1;
            }
        }
        self.obs.servers_down.set(self.servers_down() as f64);
    }

    /// Global server index → (shard, local index), or `None` when out of
    /// range.
    fn locate(&self, g: usize) -> Option<(usize, usize)> {
        let s = match self.shards.binary_search_by(|sh| sh.base.cmp(&g)) {
            Ok(s) => s,
            Err(0) => return None,
            Err(s) => s - 1,
        };
        let i = g - self.shards[s].base;
        (i < self.shards[s].dc.len()).then_some((s, i))
    }

    /// Runs the configured horizon and returns the aggregate metrics.
    pub fn run(&mut self) -> FleetMetrics {
        let dt = self.epoch;
        let cores_f = self.cores as f64;
        let ndc = self.datacenters.len();
        let epochs = (self.horizon / dt).ceil() as u64;
        let trace_len = self.trace.duration().value();

        let mut offered_total = 0.0f64;
        let mut peak_backlog = 0.0f64;
        let mut dc_done = vec![0.0f64; ndc];
        let mut dc_peak_util = vec![0.0f64; ndc];
        let mut dc_it_kwh = vec![0.0f64; ndc];
        let mut dc_cool_kwh = vec![0.0f64; ndc];
        let mut dc_cost = vec![0.0f64; ndc];

        for e in 0..epochs {
            let t0 = e as f64 * dt;
            self.obs.epochs.incr();

            // 1. Control: quantize hook actions due by t0 through the
            // calendar queue, then apply in (time, insertion) order.
            while let Some(tn) = self.fault_hook.as_ref().and_then(|h| h.next_time()) {
                if tn > t0 {
                    break;
                }
                let mut hook = self.fault_hook.take().expect("hook present");
                for action in hook.pop_actions(tn) {
                    self.control.push(tn, action);
                }
                assert!(
                    hook.next_time().is_none_or(|next| next > tn),
                    "fault hook must advance past {tn}"
                );
                self.fault_hook = Some(hook);
            }
            while self.control.peek_time().is_some_and(|t| t <= t0) {
                let (_, action) = self.control.pop().expect("peeked control event");
                self.apply_fault(action);
            }

            // 2. Demand: each site samples the diurnal trace at its own
            // local time (wrapping past the trace end).
            let mut planned = vec![0.0f64; ndc];
            for (d, spec) in self.datacenters.iter().enumerate() {
                let local = (t0 + spec.utc_offset_h * 3600.0).rem_euclid(trace_len);
                let util = self.trace.at(Seconds::new(local));
                planned[d] = util * (spec.servers * self.cores) as f64 * dt;
            }

            // 3. Geo-routing: the deferrable share chases cooling
            // headroom per unit cost (tariff × (1 + cooling overhead)).
            let frac = self.deferrable_frac;
            let mut flex_total = 0.0;
            let mut weights = vec![0.0f64; ndc];
            let mut weight_sum = 0.0;
            for d in 0..ndc {
                flex_total += planned[d] * frac;
                let live_cap = (self.live[d] * self.cores) as f64 * dt;
                let keep = planned[d] * (1.0 - frac);
                let headroom = (live_cap - keep).max(0.0);
                let spec = &self.datacenters[d];
                let cost = spec.tariff_at(t0) * (1.0 + spec.cooling_overhead());
                weights[d] = headroom / cost;
                weight_sum += weights[d];
            }
            let mut fresh_per_core = vec![0.0f64; ndc];
            let mut reroute_per_core = vec![0.0f64; ndc];
            for d in 0..ndc {
                let flex = if weight_sum > 0.0 {
                    flex_total * weights[d] / weight_sum
                } else {
                    planned[d] * frac
                };
                let assign = planned[d] * (1.0 - frac) + flex;
                offered_total += assign;
                let live_cores = (self.live[d] * self.cores) as f64;
                if live_cores > 0.0 {
                    fresh_per_core[d] = assign / live_cores;
                    if self.reroute_pool[d] > 0.0 {
                        reroute_per_core[d] = self.reroute_pool[d] / live_cores;
                    }
                } else {
                    // No live capacity: the site's work waits in the
                    // pool (still in the ledger, delivered on revival).
                    self.reroute_pool[d] += assign;
                }
            }

            // 4. Parallel shard step; results arrive in shard order.
            let seed = self.seed;
            let cores = self.cores;
            let partials = tts_exec::par_map_mut(&mut self.shards, |shard| {
                shard.step(e, dt, cores, seed, &fresh_per_core, &reroute_per_core)
            });

            // 5. Serial merge in global rack order.
            let mut epoch_done = vec![0.0f64; ndc];
            let mut backlog_now = 0.0f64;
            let mut jitter_residue = vec![0.0f64; ndc];
            for p in partials.iter().flatten() {
                let d = p.dc as usize;
                jitter_residue[d] += p.offered;
                self.reroute_pool[d] -= p.delivered;
                epoch_done[d] += p.done;
                backlog_now += p.backlog;
            }
            // The jitter makes per-server credits sum to slightly more or
            // less than the plan; keep the ledger honest by booking the
            // difference (deterministic: both sides are rack-order sums).
            for d in 0..ndc {
                if (self.live[d] * self.cores) > 0 {
                    let planned_credit = fresh_per_core[d] * (self.live[d] * self.cores) as f64;
                    offered_total += jitter_residue[d] - planned_credit;
                }
            }
            peak_backlog = peak_backlog.max(backlog_now);

            // 6. Per-site accounting at the local tariff.
            for d in 0..ndc {
                let spec = &self.datacenters[d];
                let busy_cores = epoch_done[d] / dt;
                let util = busy_cores / (spec.servers * self.cores) as f64;
                self.util_trace[d].push(util);
                dc_done[d] += epoch_done[d];
                dc_peak_util[d] = dc_peak_util[d].max(util);
                let it_w = self.live[d] as f64 * spec.idle_w
                    + busy_cores / cores_f * (spec.busy_w - spec.idle_w);
                let cool_w = it_w * spec.cooling_overhead();
                let it_kwh = it_w / 1000.0 * (dt / 3600.0);
                let cool_kwh = cool_w / 1000.0 * (dt / 3600.0);
                dc_it_kwh[d] += it_kwh;
                dc_cool_kwh[d] += cool_kwh;
                dc_cost[d] += (it_kwh + cool_kwh) * spec.tariff_at(t0);
            }
        }

        // Final sums walk servers in global order — shard grouping cannot
        // change the fold order.
        let mut done_total = 0.0;
        let mut backlog_total = 0.0;
        let mut delay_total = 0.0;
        let mut offered_check = 0.0;
        for shard in &self.shards {
            for i in 0..shard.dc.len() {
                done_total += shard.done[i];
                backlog_total += shard.remaining[i];
                delay_total += shard.delay[i];
                offered_check += shard.offered[i];
            }
        }
        let _ = offered_check;
        let pool_total: f64 = self.reroute_pool.iter().sum();
        let servers = self.servers();
        let capacity = (servers * self.cores) as f64 * (epochs as f64 * dt);
        let per_dc = self
            .datacenters
            .iter()
            .enumerate()
            .map(|(d, spec)| DcMetrics {
                name: spec.name.clone(),
                servers: spec.servers,
                mean_utilization: dc_done[d]
                    / ((spec.servers * self.cores) as f64 * (epochs as f64 * dt)),
                peak_utilization: dc_peak_util[d],
                it_energy_kwh: dc_it_kwh[d],
                cooling_energy_kwh: dc_cool_kwh[d],
                energy_cost_usd: dc_cost[d],
            })
            .collect();
        FleetMetrics {
            servers,
            epochs,
            offered_core_s: offered_total,
            done_core_s: done_total,
            backlog_core_s: backlog_total,
            reroute_pool_core_s: pool_total,
            conservation_error_core_s: offered_total - done_total - backlog_total - pool_total,
            mean_utilization: done_total / capacity,
            peak_backlog_core_s: peak_backlog,
            mean_delay_s: if done_total > 0.0 {
                delay_total / done_total
            } else {
                0.0
            },
            fault_events: self.fault_events,
            rescheduled_core_s: self.rescheduled_core_s,
            per_dc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tts_units::json::ToJson;

    fn diurnal(hours: usize) -> TimeSeries {
        TimeSeries::from_fn(Seconds::new(300.0), hours * 12, |t| {
            0.45 + 0.35 * (core::f64::consts::TAU * (t / 86_400.0 - 0.25)).sin()
        })
    }

    fn two_site_config(shards: usize, seed: u64) -> FleetConfig {
        FleetConfig::new(diurnal(24))
            .datacenter(
                DatacenterSpec::new("cold-cheap", 96)
                    .tariffs(0.06, 0.04)
                    .ambient_c(8.0),
            )
            .datacenter(
                DatacenterSpec::new("hot-pricey", 96)
                    .tariffs(0.14, 0.10)
                    .ambient_c(32.0)
                    .utc_offset_h(6.0),
            )
            .cores_per_server(4)
            .rack_size(16)
            .shards(shards)
            .seed(seed)
    }

    #[test]
    fn conserves_work() {
        let m = two_site_config(4, 7).build().run();
        assert!(m.offered_core_s > 0.0 && m.done_core_s > 0.0);
        assert!(
            m.conservation_error_core_s.abs() <= 1e-6 * m.offered_core_s.max(1.0),
            "ledger drift {} of {}",
            m.conservation_error_core_s,
            m.offered_core_s
        );
        assert!((0.0..=1.0).contains(&m.mean_utilization));
    }

    #[test]
    fn shard_count_cannot_change_bytes() {
        // 12 racks of 16: shards ∈ {1, 3} divide the racks evenly
        // (rack-aligned), {5, 7} do not (misaligned) — every grouping
        // must produce identical bytes. This is the rack_size-boundary
        // regression test.
        let baseline = two_site_config(1, 11).build().run();
        let baseline_json = baseline.to_json_string();
        for shards in [3usize, 5, 7, 12, 64] {
            let mut sim = two_site_config(shards, 11).build();
            assert!(sim.shard_count() <= 12);
            let m = sim.run();
            assert_eq!(m, baseline, "shards={shards}");
            assert_eq!(m.to_json_string(), baseline_json, "shards={shards}");
            for d in 0..2 {
                assert_eq!(
                    format!("{:?}", sim.utilization_trace(d)),
                    format!("{:?}", {
                        let mut s1 = two_site_config(1, 11).build();
                        s1.run();
                        s1.utilization_trace(d)
                    }),
                    "shards={shards} dc={d}"
                );
            }
        }
    }

    #[test]
    fn geo_router_prefers_cheap_cold_headroom() {
        let m = two_site_config(4, 3).build().run();
        let cold = &m.per_dc[0];
        let hot = &m.per_dc[1];
        assert!(
            cold.mean_utilization > hot.mean_utilization,
            "router should load the cheap/cold site: {} vs {}",
            cold.mean_utilization,
            hot.mean_utilization
        );
        // Same IT fleet, hotter site → more cooling energy per IT kWh.
        assert!(
            hot.cooling_energy_kwh / hot.it_energy_kwh
                > cold.cooling_energy_kwh / cold.it_energy_kwh
        );
    }

    /// Scheduled fault hook (same shape as the discrete-engine tests).
    #[derive(Debug)]
    struct Scheduled {
        faults: Vec<(f64, FaultAction)>,
        cursor: usize,
    }

    impl FaultHook for Scheduled {
        fn next_time(&self) -> Option<f64> {
            self.faults.get(self.cursor).map(|f| f.0)
        }

        fn pop_actions(&mut self, now: f64) -> Vec<FaultAction> {
            let mut actions = Vec::new();
            while let Some(&(t, a)) = self.faults.get(self.cursor) {
                if t > now {
                    break;
                }
                actions.push(a);
                self.cursor += 1;
            }
            actions
        }
    }

    #[test]
    fn faults_displace_and_conserve_work() {
        // Overloaded fleet (demand > capacity) so every server carries
        // backlog and kills genuinely displace work.
        let mut sim = FleetConfig::new(TimeSeries::new(Seconds::new(3600.0), vec![1.2; 24]))
            .datacenter(DatacenterSpec::new("a", 96))
            .datacenter(DatacenterSpec::new("b", 96).ambient_c(30.0))
            .cores_per_server(4)
            .rack_size(16)
            .shards(4)
            .seed(5)
            .build();
        sim.set_fault_hook(Box::new(Scheduled {
            faults: vec![
                (3600.0, FaultAction::KillServer(0)),
                (3600.0, FaultAction::KillServer(1)),
                (7200.0, FaultAction::ReviveServer(0)),
                (7200.0, FaultAction::KillServer(500)), // out of range: no-op
            ],
            cursor: 0,
        }));
        let m = sim.run();
        assert_eq!(m.fault_events, 3);
        assert!(m.rescheduled_core_s > 0.0, "killed servers held backlog");
        assert_eq!(sim.servers_down(), 1);
        assert!(m.conservation_error_core_s.abs() <= 1e-6 * m.offered_core_s);
    }

    #[test]
    fn faulted_runs_are_shard_invariant_too() {
        let run = |shards: usize| {
            let mut sim = two_site_config(shards, 9).build();
            sim.set_fault_hook(Box::new(Scheduled {
                faults: (0..24)
                    .map(|i| {
                        let t = 600.0 * (i as f64 + 1.0);
                        if i % 3 == 2 {
                            (t, FaultAction::ReviveServer(i % 7))
                        } else {
                            (t, FaultAction::KillServer(i % 7))
                        }
                    })
                    .collect(),
                cursor: 0,
            }));
            sim.run()
        };
        let a = run(1);
        let b = run(5);
        assert_eq!(a, b);
        assert_eq!(a.to_json_string(), b.to_json_string());
    }

    #[test]
    fn whole_site_outage_parks_work_until_revival() {
        let mut cfg = FleetConfig::new(diurnal(24))
            .datacenter(DatacenterSpec::new("solo", 8))
            .cores_per_server(2)
            .rack_size(4)
            .shards(2)
            .deferrable_frac(0.0);
        cfg = cfg.seed(1);
        let mut sim = cfg.build();
        let mut faults: Vec<(f64, FaultAction)> = (0..8)
            .map(|s| (3600.0, FaultAction::KillServer(s)))
            .collect();
        faults.push((10_800.0, FaultAction::ReviveServer(3)));
        sim.set_fault_hook(Box::new(Scheduled { faults, cursor: 0 }));
        let m = sim.run();
        // Demand offered during the outage stayed in the ledger and was
        // (partly) worked off after the revival.
        assert!(m.conservation_error_core_s.abs() <= 1e-6 * m.offered_core_s);
        assert!(m.done_core_s > 0.0);
        assert_eq!(sim.servers_down(), 7);
    }

    #[test]
    fn telemetry_counts_epochs_and_faults() {
        let sink = MetricsSink::fresh();
        let mut sim = FleetConfig::new(diurnal(6))
            .datacenter(DatacenterSpec::new("a", 16))
            .cores_per_server(2)
            .rack_size(8)
            .metrics(&sink)
            .build();
        sim.set_fault_hook(Box::new(Scheduled {
            faults: vec![
                (600.0, FaultAction::KillServer(2)),
                (1200.0, FaultAction::ReviveServer(2)),
            ],
            cursor: 0,
        }));
        let m = sim.run();
        assert_eq!(sink.counter("fleet.epochs").value(), m.epochs);
        assert_eq!(sink.counter("fleet.fault.kills").value(), 1);
        assert_eq!(sink.counter("fleet.fault.revives").value(), 1);
    }

    #[test]
    fn horizon_wraps_the_trace() {
        let m = FleetConfig::new(diurnal(24))
            .datacenter(DatacenterSpec::new("a", 8))
            .cores_per_server(2)
            .rack_size(4)
            .horizon(Seconds::new(2.0 * 86_400.0))
            .build()
            .run();
        assert_eq!(m.epochs, 2 * 1440);
        assert!((0.0..=1.0).contains(&m.mean_utilization));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_fleet_panics() {
        let _ = FleetConfig::new(diurnal(1)).build();
    }

    #[test]
    fn utilization_trace_shows_the_diurnal_phase_shift() {
        let mut sim = FleetConfig::new(diurnal(24))
            .datacenter(DatacenterSpec::new("east", 32))
            .datacenter(DatacenterSpec::new("west", 32).utc_offset_h(12.0))
            .cores_per_server(2)
            .rack_size(8)
            .deferrable_frac(0.0)
            .build();
        sim.run();
        let east = sim.utilization_trace(0).expect("recorded");
        let west = sim.utilization_trace(1).expect("recorded");
        let peak_gap = (east.peak_time().value() - west.peak_time().value()).abs() / 3600.0;
        // 12 h offset → peaks half a day apart (mod 24 h).
        assert!(
            (10.0..=14.0).contains(&peak_gap) || peak_gap <= 2.0 && east.len() < 24,
            "peak gap {peak_gap} h"
        );
    }
}
