//! The pre-rebuild heap-based discrete engine, kept as the equivalence
//! oracle.
//!
//! This is the original `discrete` event loop — `Vec<ServerState>`
//! array-of-structs state, a [`EventQueue`] binary heap, and an O(n)
//! occupancy rebuild per dispatch — frozen verbatim (minus telemetry and
//! the flush hook, which do not affect any metric) so
//! `tests/engine_equivalence.rs` can prove the calendar-queue/SoA engine
//! byte-identical before this path is retired. Not part of the public
//! API: reach it only from tests and benchmarks.

use crate::balancer::Balancer;
use crate::discrete::{DiscreteMetrics, FaultAction, FaultHook, TypeQos};
use crate::event::EventQueue;
use std::collections::VecDeque;
use tts_units::Seconds;
use tts_workload::{Job, JobType};

/// A completion event (see `discrete::Completion`).
#[derive(Debug, Clone, Copy)]
struct Completion {
    server: usize,
    epoch: u64,
    job_id: u64,
    arrival: f64,
    job_type: JobType,
}

#[derive(Debug, Default)]
struct ServerState {
    active: usize,
    queue: VecDeque<Job>,
    running: Vec<Job>,
    busy_time: f64,
    completed: u64,
    last_change: f64,
    down: bool,
    epoch: u64,
}

impl ServerState {
    fn account(&mut self, now: f64, cores: usize) {
        self.busy_time += self.active.min(cores) as f64 * (now - self.last_change);
        self.last_change = now;
    }
}

#[derive(Debug)]
struct UtilRecorder {
    interval: f64,
    busy: Vec<f64>,
    last_change: Vec<f64>,
    active: Vec<usize>,
}

impl UtilRecorder {
    fn new(servers: usize, interval: f64) -> Self {
        Self {
            interval,
            busy: Vec::new(),
            last_change: vec![0.0; servers],
            active: vec![0; servers],
        }
    }

    fn account(&mut self, s: usize, now: f64, cores: usize) {
        let mut t = self.last_change[s];
        let active = self.active[s].min(cores) as f64;
        while t < now {
            let bucket = (t / self.interval) as usize;
            while self.busy.len() <= bucket {
                self.busy.push(0.0);
            }
            let bucket_end = (bucket as f64 + 1.0) * self.interval;
            let seg_end = bucket_end.min(now);
            self.busy[bucket] += active * (seg_end - t);
            t = seg_end;
        }
        self.last_change[s] = now;
    }
}

/// The legacy heap-based cluster simulator (oracle only; see module docs).
#[derive(Debug)]
pub struct LegacySim<B: Balancer> {
    servers: Vec<ServerState>,
    cores_per_server: usize,
    rack_size: usize,
    balancer: B,
    response_times: Vec<f64>,
    response_by_type: Vec<(JobType, f64)>,
    util_recording: Option<UtilRecorder>,
    fault_hook: Option<Box<dyn FaultHook>>,
    orphans: VecDeque<Job>,
    fault_events: u64,
    rescheduled: u64,
    stale_completions: u64,
}

impl<B: Balancer> LegacySim<B> {
    /// A legacy simulator mirroring `ClusterConfig::new(servers)
    /// .cores_per_server(cores).rack_size(rack_size).build(balancer)`.
    ///
    /// # Panics
    /// Panics on zero `servers`, `cores`, or `rack_size`.
    pub fn new(servers: usize, cores: usize, rack_size: usize, balancer: B) -> Self {
        assert!(servers > 0, "need at least one server");
        assert!(cores > 0, "need at least one core");
        assert!(rack_size > 0, "need at least one server per rack");
        Self {
            servers: (0..servers).map(|_| ServerState::default()).collect(),
            cores_per_server: cores,
            rack_size,
            balancer,
            response_times: Vec::new(),
            response_by_type: Vec::new(),
            util_recording: None,
            fault_hook: None,
            orphans: VecDeque::new(),
            fault_events: 0,
            rescheduled: 0,
            stale_completions: 0,
        }
    }

    /// Installs an event-level fault hook (see
    /// [`crate::discrete::DiscreteClusterSim::set_fault_hook`]).
    pub fn set_fault_hook(&mut self, hook: Box<dyn FaultHook>) {
        self.fault_hook = Some(hook);
    }

    /// Enables utilization recording (see
    /// [`crate::discrete::DiscreteClusterSim::record_utilization`]).
    pub fn record_utilization(&mut self, interval: Seconds) {
        assert!(interval.value() > 0.0, "interval must be positive");
        self.util_recording = Some(UtilRecorder::new(self.servers.len(), interval.value()));
    }

    /// The recorded cluster-utilization trace, if recording was enabled.
    pub fn utilization_trace(&self) -> Option<tts_workload::TimeSeries> {
        let rec = self.util_recording.as_ref()?;
        if rec.busy.is_empty() {
            return None;
        }
        let capacity = (self.servers.len() * self.cores_per_server) as f64 * rec.interval;
        let values: Vec<f64> = rec.busy.iter().map(|b| (b / capacity).min(1.0)).collect();
        Some(tts_workload::TimeSeries::new(
            Seconds::new(rec.interval),
            values,
        ))
    }

    /// Number of servers currently down.
    pub fn servers_down(&self) -> usize {
        self.servers.iter().filter(|s| s.down).count()
    }

    fn dispatch_job(&mut self, job: Job, now: f64, queue: &mut EventQueue<Completion>) {
        if self.servers.iter().all(|s| s.down) {
            self.orphans.push_back(job);
            return;
        }
        let occupancy: Vec<usize> = self
            .servers
            .iter()
            .map(|s| {
                if s.down {
                    usize::MAX
                } else {
                    s.active + s.queue.len()
                }
            })
            .collect();
        let mut target = self.balancer.pick(&occupancy);
        if target >= self.servers.len() || self.servers[target].down {
            target = occupancy
                .iter()
                .enumerate()
                .filter(|(i, _)| !self.servers[*i].down)
                .min_by_key(|(_, occ)| **occ)
                .map(|(i, _)| i)
                .expect("at least one live server");
        }
        if let Some(rec) = self.util_recording.as_mut() {
            rec.account(target, now, self.cores_per_server);
        }
        let server = &mut self.servers[target];
        server.account(now, self.cores_per_server);
        if server.active < self.cores_per_server {
            server.active += 1;
            server.running.push(job);
            queue.push(
                now + job.service_time.value(),
                Completion {
                    server: target,
                    epoch: server.epoch,
                    job_id: job.id,
                    arrival: job.arrival.value(),
                    job_type: job.job_type,
                },
            );
        } else {
            server.queue.push_back(job);
        }
        let active_now = self.servers[target].active;
        if let Some(rec) = self.util_recording.as_mut() {
            rec.active[target] = active_now;
        }
    }

    fn apply_fault(&mut self, action: FaultAction, now: f64, queue: &mut EventQueue<Completion>) {
        match action {
            FaultAction::KillServer(s) => {
                if s >= self.servers.len() || self.servers[s].down {
                    return;
                }
                self.fault_events += 1;
                if let Some(rec) = self.util_recording.as_mut() {
                    rec.account(s, now, self.cores_per_server);
                    rec.active[s] = 0;
                }
                let server = &mut self.servers[s];
                server.account(now, self.cores_per_server);
                server.down = true;
                server.epoch += 1;
                server.active = 0;
                let mut displaced: Vec<Job> = server.running.drain(..).collect();
                displaced.extend(server.queue.drain(..));
                for job in displaced {
                    self.rescheduled += 1;
                    self.dispatch_job(job, now, queue);
                }
            }
            FaultAction::ReviveServer(s) => {
                if s >= self.servers.len() || !self.servers[s].down {
                    return;
                }
                self.fault_events += 1;
                let server = &mut self.servers[s];
                server.down = false;
                server.last_change = now;
                if let Some(rec) = self.util_recording.as_mut() {
                    rec.last_change[s] = now;
                }
                let parked: Vec<Job> = self.orphans.drain(..).collect();
                for job in parked {
                    self.dispatch_job(job, now, queue);
                }
            }
        }
    }

    /// Runs the job list (see
    /// [`crate::discrete::DiscreteClusterSim::run`]).
    ///
    /// # Panics
    /// Panics if jobs are not sorted by arrival time.
    pub fn run(&mut self, jobs: &[Job], horizon: Seconds) -> DiscreteMetrics {
        let mut queue: EventQueue<Completion> = EventQueue::new();
        let horizon = horizon.value();
        let mut job_iter = jobs.iter().peekable();
        let mut last_arrival = f64::NEG_INFINITY;
        let mut now = 0.0;

        loop {
            let next_arrival = job_iter.peek().map(|j| j.arrival.value());
            let next_completion = queue.peek_time();
            let next_fault = self.fault_hook.as_ref().and_then(|h| h.next_time());
            let job_next = match (next_arrival, next_completion) {
                (Some(a), Some(c)) if a <= c => Some((a, true)),
                (Some(_), Some(c)) => Some((c, false)),
                (Some(a), None) => Some((a, true)),
                (None, Some(c)) => Some((c, false)),
                (None, None) => None,
            };
            let fault_turn = match (next_fault, job_next) {
                (Some(f), Some((t, _))) => f <= t,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let t = if fault_turn {
                next_fault.expect("fault turn has a time")
            } else {
                job_next.expect("job turn has an event").0
            };
            if t > horizon {
                break;
            }
            now = t;

            if fault_turn {
                let mut hook = self.fault_hook.take().expect("fault turn has a hook");
                for action in hook.pop_actions(now) {
                    self.apply_fault(action, now, &mut queue);
                }
                assert!(
                    hook.next_time().is_none_or(|next| next > now),
                    "fault hook must advance past {now}"
                );
                self.fault_hook = Some(hook);
                continue;
            }

            let (_, is_arrival) = job_next.expect("job turn has an event");
            if is_arrival {
                let job = *job_iter.next().expect("peeked job exists");
                assert!(
                    job.arrival.value() >= last_arrival,
                    "jobs must be sorted by arrival"
                );
                last_arrival = job.arrival.value();
                self.dispatch_job(job, now, &mut queue);
            } else {
                let (_, c) = queue.pop().expect("completion peeked");
                if self.servers[c.server].down || self.servers[c.server].epoch != c.epoch {
                    self.stale_completions += 1;
                    continue;
                }
                if let Some(rec) = self.util_recording.as_mut() {
                    rec.account(c.server, now, self.cores_per_server);
                }
                let server = &mut self.servers[c.server];
                server.account(now, self.cores_per_server);
                server.active -= 1;
                server.completed += 1;
                if let Some(pos) = server
                    .running
                    .iter()
                    .position(|j| j.id == c.job_id && j.arrival.value() == c.arrival)
                {
                    server.running.remove(pos);
                }
                self.response_times.push(now - c.arrival);
                self.response_by_type.push((c.job_type, now - c.arrival));
                if let Some(next) = server.queue.pop_front() {
                    server.active += 1;
                    server.running.push(next);
                    let epoch = server.epoch;
                    queue.push(
                        now + next.service_time.value(),
                        Completion {
                            server: c.server,
                            epoch,
                            job_id: next.id,
                            arrival: next.arrival.value(),
                            job_type: next.job_type,
                        },
                    );
                }
                let active_now = self.servers[c.server].active;
                if let Some(rec) = self.util_recording.as_mut() {
                    rec.active[c.server] = active_now;
                }
            }
        }

        let end = now.max(horizon.min(now + 1.0));
        if let Some(rec) = self.util_recording.as_mut() {
            for s in 0..self.servers.len() {
                rec.account(s, end, self.cores_per_server);
            }
        }
        let cores = self.cores_per_server;
        tts_exec::par_for_each_mut(&mut self.servers, |s| s.account(end, cores));
        self.metrics(end)
    }

    fn metrics(&self, end: f64) -> DiscreteMetrics {
        let completed: u64 = self.servers.iter().map(|s| s.completed).sum();
        let in_service: u64 = self
            .servers
            .iter()
            .map(|s| s.running.len() as u64)
            .sum::<u64>()
            + self.orphans.len() as u64;
        let queued: u64 = self.servers.iter().map(|s| s.queue.len() as u64).sum();
        let mut sorted = self.response_times.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("response times are finite"));
        let mean = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<f64>() / sorted.len() as f64
        };
        let p95 = if sorted.is_empty() {
            0.0
        } else {
            sorted[((sorted.len() as f64 * 0.95) as usize).min(sorted.len() - 1)]
        };
        let cap = self.cores_per_server as f64 * end;
        let server_utilization: Vec<f64> = self.servers.iter().map(|s| s.busy_time / cap).collect();
        let rack_utilization: Vec<f64> = server_utilization
            .chunks(self.rack_size)
            .map(|rack| rack.iter().sum::<f64>() / rack.len() as f64)
            .collect();
        let cluster_utilization =
            server_utilization.iter().sum::<f64>() / server_utilization.len() as f64;
        let response_by_type = &self.response_by_type;
        let per_type: Vec<TypeQos> = tts_exec::par_map(&JobType::ALL, |&jt| {
            let mut times: Vec<f64> = response_by_type
                .iter()
                .filter(|(t, _)| *t == jt)
                .map(|(_, r)| *r)
                .collect();
            if times.is_empty() {
                return None;
            }
            times.sort_by(|a, b| a.total_cmp(b));
            let mean = times.iter().sum::<f64>() / times.len() as f64;
            let p95 = times[((times.len() as f64 * 0.95) as usize).min(times.len() - 1)];
            Some(TypeQos {
                job_type: jt,
                completed: times.len() as u64,
                mean_response_s: mean,
                p95_response_s: p95,
            })
        })
        .into_iter()
        .flatten()
        .collect();
        DiscreteMetrics {
            completed,
            in_flight: in_service + queued,
            mean_response_s: mean,
            p95_response_s: p95,
            server_utilization,
            rack_utilization,
            cluster_utilization,
            throughput_jobs_per_s: completed as f64 / end.max(1e-9),
            per_type,
            fault_events: self.fault_events,
            rescheduled: self.rescheduled,
            stale_completions: self.stale_completions,
        }
    }
}
