//! Job relocation: the other thermal-management lever.
//!
//! §5.2 names two ways to keep an oversubscribed datacenter under its
//! thermal limit: "downclocking/DVFS or relocating work to other
//! datacenters [18–20]". The main Figure 12 experiment uses DVFS; this
//! extension models relocation — excess work ships to a remote site over
//! the WAN — and compares the two against thermal time shifting.
//!
//! Relocation serves everything (the remote site has capacity) but pays a
//! per-work cost: WAN egress, remote capacity premium, and latency-driven
//! revenue loss, folded into one `$ per server-hour of relocated work`
//! figure. The wax serves the same excess *locally* for the price of the
//! paraffin — the comparison this module quantifies.

use crate::throttle::{run_constrained, ConstrainedConfig};
use tts_obs::MetricsSink;
use tts_units::{Dollars, Fraction, Seconds};
use tts_workload::TimeSeries;

/// Cost of serving one server-hour of work at the remote site instead of
/// locally (egress + remote premium + SLA penalty), $.
pub const DEFAULT_RELOCATION_COST_PER_SERVER_HOUR: f64 = 0.12;

/// Result of the relocation analysis over a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct RelocationRun {
    /// Sample times, hours.
    pub times_h: Vec<f64>,
    /// Work served locally (normalized like Figure 12).
    pub local: Vec<f64>,
    /// Work relocated (same normalization).
    pub relocated: Vec<f64>,
    /// Total relocated work, server-hours across the whole cluster.
    pub relocated_server_hours: f64,
    /// Fraction of all offered work that had to move.
    pub relocated_fraction: Fraction,
    /// Relocation bill at the given rate.
    pub relocation_cost: Dollars,
}

tts_units::derive_json! { struct RelocationRun { times_h, local, relocated, relocated_server_hours, relocated_fraction, relocation_cost } }

/// Runs the relocation policy: the local cluster serves what its thermal
/// budget allows (with DVFS, no wax); everything else ships out.
pub fn run_relocation(
    config: &ConstrainedConfig,
    trace: &TimeSeries,
    cost_per_server_hour: Dollars,
) -> RelocationRun {
    run_relocation_with(
        config,
        trace,
        cost_per_server_hour,
        &MetricsSink::disabled(),
    )
}

/// [`run_relocation`] with telemetry: counts ticks that shipped work out
/// (`relocation.relocated_ticks` of `relocation.ticks`) and gauges the
/// relocated server-hours, fraction, and bill, recorded serially after
/// the run. Only call from serial code — gauges are last-value-wins.
pub fn run_relocation_with(
    config: &ConstrainedConfig,
    trace: &TimeSeries,
    cost_per_server_hour: Dollars,
    sink: &MetricsSink,
) -> RelocationRun {
    let run = relocation_inner(config, trace, cost_per_server_hour);
    if sink.is_enabled() {
        sink.counter("relocation.ticks")
            .add(run.times_h.len() as u64);
        let moved = run.relocated.iter().filter(|&&x| x > 1e-9).count();
        sink.counter("relocation.relocated_ticks").add(moved as u64);
        sink.gauge("relocation.server_hours")
            .set(run.relocated_server_hours);
        sink.gauge("relocation.fraction")
            .set(run.relocated_fraction.value());
        sink.gauge("relocation.cost_dollars")
            .set(run.relocation_cost.value());
    }
    run
}

fn relocation_inner(
    config: &ConstrainedConfig,
    trace: &TimeSeries,
    cost_per_server_hour: Dollars,
) -> RelocationRun {
    // The no-wax arm of the constrained run *is* the local service curve.
    let base = run_constrained(config, trace);
    let dt_h = trace.dt().value() / 3600.0;
    let n = config.servers as f64;

    let mut relocated = Vec::with_capacity(base.times_h.len());
    let mut relocated_work = 0.0; // normalized-throughput × hours
    let mut offered_work = 0.0;
    for i in 0..base.times_h.len() {
        let excess = (base.ideal[i] - base.no_wax[i]).max(0.0);
        relocated.push(excess);
        relocated_work += excess * dt_h;
        offered_work += base.ideal[i] * dt_h;
    }
    // Convert normalized work to server-hours: 1.0 of normalized
    // throughput = `norm_base` × N server-equivalents of work.
    let server_hours = relocated_work * base.norm_base * n;
    RelocationRun {
        times_h: base.times_h,
        local: base.no_wax,
        relocated,
        relocated_server_hours: server_hours,
        relocated_fraction: Fraction::new(relocated_work / offered_work.max(1e-12)),
        relocation_cost: cost_per_server_hour * server_hours,
    }
}

/// Head-to-head: what the wax saves in relocation costs over one trace.
///
/// Returns `(relocation_only_cost, relocation_cost_with_wax)`: the second
/// run still relocates whatever the *wax-assisted* cluster cannot serve.
pub fn wax_vs_relocation(
    config: &ConstrainedConfig,
    trace: &TimeSeries,
    cost_per_server_hour: Dollars,
) -> (Dollars, Dollars) {
    let base = run_constrained(config, trace);
    let dt_h = trace.dt().value() / 3600.0;
    let n = config.servers as f64;
    let mut excess_nowax = 0.0;
    let mut excess_wax = 0.0;
    for i in 0..base.times_h.len() {
        excess_nowax += (base.ideal[i] - base.no_wax[i]).max(0.0) * dt_h;
        excess_wax += (base.ideal[i] - base.with_wax[i]).max(0.0) * dt_h;
    }
    let to_dollars = |work: f64| -> Dollars { cost_per_server_hour * (work * base.norm_base * n) };
    (to_dollars(excess_nowax), to_dollars(excess_wax))
}

/// Scales a per-trace relocation saving to a yearly figure (the trace
/// covers `trace.duration()`).
pub fn yearly_saving(saving_per_trace: Dollars, trace: &TimeSeries) -> Dollars {
    let days = trace.duration() / Seconds::DAY;
    saving_per_trace * (365.25 / days)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tts_pcm::PcmMaterial;
    use tts_server::{ServerClass, ServerWaxCharacteristics};
    use tts_units::Celsius;
    use tts_workload::GoogleTrace;

    fn config() -> ConstrainedConfig {
        let spec = ServerClass::LowPower1U.spec();
        let chars = ServerWaxCharacteristics::extract(
            &spec,
            &PcmMaterial::commercial_paraffin(Celsius::new(40.0)),
        );
        ConstrainedConfig::oversubscribed(spec, 1008, chars, Fraction::new(0.71))
    }

    #[test]
    fn relocation_serves_exactly_the_excess() {
        let cfg = config();
        let trace = GoogleTrace::default_two_day();
        let run = run_relocation(
            &cfg,
            trace.total(),
            Dollars::new(DEFAULT_RELOCATION_COST_PER_SERVER_HOUR),
        );
        // local + relocated = ideal at every tick.
        let base = run_constrained(&cfg, trace.total());
        for i in 0..run.times_h.len() {
            let total = run.local[i] + run.relocated[i];
            assert!(
                (total - base.ideal[i]).abs() < 1e-9,
                "tick {i}: {total} vs ideal {}",
                base.ideal[i]
            );
        }
        assert!(run.relocated_fraction.value() > 0.0);
        assert!(run.relocation_cost.value() > 0.0);
    }

    #[test]
    fn wax_cuts_the_relocation_bill() {
        let cfg = config();
        let trace = GoogleTrace::default_two_day();
        let (without, with) = wax_vs_relocation(
            &cfg,
            trace.total(),
            Dollars::new(DEFAULT_RELOCATION_COST_PER_SERVER_HOUR),
        );
        assert!(
            with.value() < without.value(),
            "wax must absorb some excess: {with} vs {without}"
        );
        // And meaningfully so — at least 10 % of the bill.
        assert!(with.value() < 0.9 * without.value());
    }

    #[test]
    fn relocated_fraction_is_moderate() {
        // With cooling sized for 71 % throttled utilization, a 50 %-mean
        // trace mostly fits: well under half the work relocates.
        let cfg = config();
        let trace = GoogleTrace::default_two_day();
        let run = run_relocation(&cfg, trace.total(), Dollars::new(0.12));
        assert!(
            run.relocated_fraction.value() < 0.45,
            "relocated {}",
            run.relocated_fraction
        );
    }

    #[test]
    fn yearly_scaling() {
        let trace = GoogleTrace::default_two_day();
        let yearly = yearly_saving(Dollars::new(100.0), trace.total());
        assert!((yearly.value() - 100.0 * 365.25 / 2.0).abs() < 1e-6);
    }
}
