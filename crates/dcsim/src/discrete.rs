//! The discrete job-level cluster simulator.
//!
//! Models exactly what the paper attributes to DCSim: "job arrival, load
//! balancing, and work completion ... at the server, rack, and cluster
//! levels". Each server runs up to `cores` jobs concurrently; excess jobs
//! wait in a per-server FIFO. A pluggable [`Balancer`] routes arrivals.

use crate::balancer::Balancer;
use crate::event::EventQueue;
use std::collections::VecDeque;
use tts_obs::{Counter, Gauge, MetricsSink};
use tts_units::Seconds;
use tts_workload::{Job, JobType};

/// Builder for [`DiscreteClusterSim`], replacing the positional
/// four-argument constructor. Defaults: one core per server, one rack
/// spanning the whole cluster, no utilization recording, telemetry off.
///
/// ```
/// use tts_dcsim::balancer::RoundRobin;
/// use tts_dcsim::discrete::ClusterConfig;
///
/// let sim = ClusterConfig::new(8)
///     .cores_per_server(4)
///     .rack_size(4)
///     .build(RoundRobin::new());
/// # let _ = sim;
/// ```
#[derive(Debug, Clone)]
#[must_use = "a cluster config does nothing until .build(balancer)"]
pub struct ClusterConfig {
    servers: usize,
    cores_per_server: usize,
    rack_size: Option<usize>,
    record_utilization: Option<Seconds>,
    metrics: MetricsSink,
}

impl ClusterConfig {
    /// A config for a cluster of `servers` machines (validated at
    /// [`Self::build`]).
    pub fn new(servers: usize) -> Self {
        Self {
            servers,
            cores_per_server: 1,
            rack_size: None,
            record_utilization: None,
            metrics: MetricsSink::disabled(),
        }
    }

    /// Concurrent job slots per server (default 1).
    pub fn cores_per_server(mut self, cores: usize) -> Self {
        self.cores_per_server = cores;
        self
    }

    /// Servers per rack (default: one rack spanning the whole cluster).
    pub fn rack_size(mut self, servers: usize) -> Self {
        self.rack_size = Some(servers);
        self
    }

    /// Records the cluster-utilization trace with the given bucket width
    /// (see [`DiscreteClusterSim::utilization_trace`]).
    pub fn record_utilization(mut self, interval: Seconds) -> Self {
        self.record_utilization = Some(interval);
        self
    }

    /// Routes event-loop telemetry (events, arrivals, completions, queue
    /// depth gauges) to `sink`. The event loop is serial, so everything
    /// registers deterministic.
    pub fn metrics(mut self, sink: &MetricsSink) -> Self {
        self.metrics = sink.clone();
        self
    }

    /// Builds the simulator.
    ///
    /// # Panics
    /// Panics if `servers`, `cores_per_server`, `rack_size`, or the
    /// utilization-recording interval is zero/non-positive.
    pub fn build<B: Balancer>(self, balancer: B) -> DiscreteClusterSim<B> {
        assert!(self.servers > 0, "need at least one server");
        assert!(self.cores_per_server > 0, "need at least one core");
        let rack_size = self.rack_size.unwrap_or(self.servers);
        assert!(rack_size > 0, "need at least one server per rack");
        let util_recording = self.record_utilization.map(|interval| {
            assert!(interval.value() > 0.0, "interval must be positive");
            UtilRecorder::new(self.servers, interval.value())
        });
        DiscreteClusterSim {
            servers: (0..self.servers).map(|_| ServerState::default()).collect(),
            cores_per_server: self.cores_per_server,
            rack_size,
            balancer,
            response_times: Vec::new(),
            response_by_type: Vec::new(),
            util_recording,
            obs: SimObs::resolve(&self.metrics),
            flush_hook: None,
        }
    }
}

/// Resolved event-loop metric handles (no-ops when built without a sink).
/// All writes happen on the serial event loop, so every entry is
/// [`tts_obs::Determinism::Deterministic`].
#[derive(Debug, Clone, Default)]
struct SimObs {
    events: Counter,
    arrivals: Counter,
    completions: Counter,
    enqueued: Counter,
    active_jobs: Gauge,
    queued_jobs: Gauge,
}

impl SimObs {
    fn resolve(sink: &MetricsSink) -> Self {
        Self {
            events: sink.counter("dcsim.events"),
            arrivals: sink.counter("dcsim.arrivals"),
            completions: sink.counter("dcsim.completions"),
            enqueued: sink.counter("dcsim.enqueued"),
            active_jobs: sink.gauge("dcsim.active_jobs"),
            queued_jobs: sink.gauge("dcsim.queued_jobs"),
        }
    }
}

/// A periodic callback on simulated time (see
/// [`DiscreteClusterSim::set_periodic_flush`]).
struct FlushHook {
    interval: f64,
    next: f64,
    f: Box<dyn FnMut(Seconds) + Send>,
}

impl std::fmt::Debug for FlushHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlushHook")
            .field("interval", &self.interval)
            .field("next", &self.next)
            .finish_non_exhaustive()
    }
}

/// A completion event.
#[derive(Debug, Clone, Copy)]
struct Completion {
    server: usize,
    arrival: f64,
    job_type: JobType,
}

#[derive(Debug, Default)]
struct ServerState {
    active: usize,
    queue: VecDeque<Job>,
    busy_time: f64,
    completed: u64,
    last_change: f64,
}

impl ServerState {
    fn account(&mut self, now: f64, cores: usize) {
        self.busy_time += self.active.min(cores) as f64 * (now - self.last_change);
        self.last_change = now;
    }
}

/// Response-time statistics for one job type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TypeQos {
    /// The job type.
    pub job_type: JobType,
    /// Completed jobs of this type.
    pub completed: u64,
    /// Mean response time, seconds.
    pub mean_response_s: f64,
    /// 95th-percentile response time, seconds.
    pub p95_response_s: f64,
}

/// Aggregate metrics of a discrete run.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteMetrics {
    /// Jobs that finished service.
    pub completed: u64,
    /// Jobs still in the system when the run ended.
    pub in_flight: u64,
    /// Mean response (sojourn) time, seconds.
    pub mean_response_s: f64,
    /// 95th-percentile response time, seconds.
    pub p95_response_s: f64,
    /// Per-server utilization (busy core-seconds / capacity).
    pub server_utilization: Vec<f64>,
    /// Per-rack mean utilization.
    pub rack_utilization: Vec<f64>,
    /// Cluster-level mean utilization.
    pub cluster_utilization: f64,
    /// Completed jobs per second of simulated time.
    pub throughput_jobs_per_s: f64,
    /// Per-job-type response-time statistics (QoS view; interactive types
    /// suffer first when batch work monopolizes cores).
    pub per_type: Vec<TypeQos>,
}

/// The discrete event-driven cluster simulator.
#[derive(Debug)]
pub struct DiscreteClusterSim<B: Balancer> {
    servers: Vec<ServerState>,
    cores_per_server: usize,
    rack_size: usize,
    balancer: B,
    response_times: Vec<f64>,
    response_by_type: Vec<(JobType, f64)>,
    /// Busy core-seconds accumulated per recording interval (when
    /// utilization recording is enabled).
    util_recording: Option<UtilRecorder>,
    /// Event-loop metric handles (no-ops unless configured).
    obs: SimObs,
    /// Periodic simulated-time callback, fired during [`Self::run`].
    flush_hook: Option<FlushHook>,
}

#[derive(Debug)]
struct UtilRecorder {
    interval: f64,
    /// Busy core-seconds per interval bucket.
    busy: Vec<f64>,
    /// Time of the last occupancy change, per server.
    last_change: Vec<f64>,
    /// Active jobs per server at `last_change`.
    active: Vec<usize>,
}

impl UtilRecorder {
    fn new(servers: usize, interval: f64) -> Self {
        Self {
            interval,
            busy: Vec::new(),
            last_change: vec![0.0; servers],
            active: vec![0; servers],
        }
    }

    /// Accounts server `s` busy time from its last change to `now`,
    /// spreading across interval buckets.
    fn account(&mut self, s: usize, now: f64, cores: usize) {
        let mut t = self.last_change[s];
        let active = self.active[s].min(cores) as f64;
        while t < now {
            let bucket = (t / self.interval) as usize;
            while self.busy.len() <= bucket {
                self.busy.push(0.0);
            }
            let bucket_end = (bucket as f64 + 1.0) * self.interval;
            let seg_end = bucket_end.min(now);
            self.busy[bucket] += active * (seg_end - t);
            t = seg_end;
        }
        self.last_change[s] = now;
    }
}

impl<B: Balancer> DiscreteClusterSim<B> {
    /// Installs a callback fired every `interval` of *simulated* time
    /// during [`Self::run`] — the flush hook the `repro --metrics` sidecar
    /// uses to snapshot the registry periodically. Before each firing the
    /// `dcsim.active_jobs` / `dcsim.queued_jobs` gauges are refreshed, so
    /// a registry snapshot taken inside the callback sees the queue state
    /// at that boundary. Boundaries are drained up to each event's time
    /// (and the run's closing time), so firing times — and therefore any
    /// snapshot sequence — are deterministic.
    ///
    /// # Panics
    /// Panics if `interval` is not positive.
    pub fn set_periodic_flush(
        &mut self,
        interval: Seconds,
        f: impl FnMut(Seconds) + Send + 'static,
    ) {
        assert!(interval.value() > 0.0, "flush interval must be positive");
        self.flush_hook = Some(FlushHook {
            interval: interval.value(),
            next: interval.value(),
            f: Box::new(f),
        });
    }

    /// Fires the flush hook at every interval boundary ≤ `t`, refreshing
    /// the queue-depth gauges first.
    fn drain_flushes(&mut self, t: f64) {
        let Some(mut hook) = self.flush_hook.take() else {
            return;
        };
        while hook.next <= t {
            let active: usize = self.servers.iter().map(|s| s.active).sum();
            let queued: usize = self.servers.iter().map(|s| s.queue.len()).sum();
            self.obs.active_jobs.set(active as f64);
            self.obs.queued_jobs.set(queued as f64);
            (hook.f)(Seconds::new(hook.next));
            hook.next += hook.interval;
        }
        self.flush_hook = Some(hook);
    }

    /// Enables recording of the cluster's utilization as a time series
    /// with the given bucket width. Call before [`Self::run`]; retrieve
    /// with [`Self::utilization_trace`].
    pub fn record_utilization(&mut self, interval: Seconds) {
        assert!(interval.value() > 0.0, "interval must be positive");
        self.util_recording = Some(UtilRecorder::new(self.servers.len(), interval.value()));
    }

    /// The recorded cluster-utilization trace (fraction of total core
    /// capacity per bucket), or `None` if recording was not enabled.
    ///
    /// This is the bridge from the event-driven simulator to the thermal
    /// pipeline: feed the result to
    /// [`crate::cluster::run_cooling_load`] for a job-level Figure 11.
    #[must_use = "returns the recorded trace without side effects"]
    pub fn utilization_trace(&self) -> Option<tts_workload::TimeSeries> {
        let rec = self.util_recording.as_ref()?;
        if rec.busy.is_empty() {
            return None;
        }
        let capacity = (self.servers.len() * self.cores_per_server) as f64 * rec.interval;
        let values: Vec<f64> = rec.busy.iter().map(|b| (b / capacity).min(1.0)).collect();
        Some(tts_workload::TimeSeries::new(
            Seconds::new(rec.interval),
            values,
        ))
    }

    /// Runs the full job list to completion (all jobs arrive, the run ends
    /// at `horizon` — jobs still in service then count as in-flight).
    ///
    /// # Panics
    /// Panics if jobs are not sorted by arrival time.
    pub fn run(&mut self, jobs: &[Job], horizon: Seconds) -> DiscreteMetrics {
        let mut queue: EventQueue<Completion> = EventQueue::new();
        let horizon = horizon.value();
        let mut job_iter = jobs.iter().peekable();
        let mut last_arrival = f64::NEG_INFINITY;
        let mut now = 0.0;

        loop {
            // Next event: job arrival or completion, whichever is earlier.
            let next_arrival = job_iter.peek().map(|j| j.arrival.value());
            let next_completion = queue.peek_time();
            let (t, is_arrival) = match (next_arrival, next_completion) {
                (Some(a), Some(c)) if a <= c => (a, true),
                (Some(_), Some(c)) => (c, false),
                (Some(a), None) => (a, true),
                (None, Some(c)) => (c, false),
                (None, None) => break,
            };
            if t > horizon {
                break;
            }
            now = t;
            self.drain_flushes(now);
            self.obs.events.incr();

            if is_arrival {
                let job = *job_iter.next().expect("peeked job exists");
                assert!(
                    job.arrival.value() >= last_arrival,
                    "jobs must be sorted by arrival"
                );
                last_arrival = job.arrival.value();
                self.obs.arrivals.incr();
                let occupancy: Vec<usize> = self
                    .servers
                    .iter()
                    .map(|s| s.active + s.queue.len())
                    .collect();
                let target = self.balancer.pick(&occupancy);
                if let Some(rec) = self.util_recording.as_mut() {
                    rec.account(target, now, self.cores_per_server);
                }
                let server = &mut self.servers[target];
                server.account(now, self.cores_per_server);
                if server.active < self.cores_per_server {
                    server.active += 1;
                    queue.push(
                        now + job.service_time.value(),
                        Completion {
                            server: target,
                            arrival: now,
                            job_type: job.job_type,
                        },
                    );
                } else {
                    server.queue.push_back(job);
                    self.obs.enqueued.incr();
                }
                let active_now = self.servers[target].active;
                if let Some(rec) = self.util_recording.as_mut() {
                    rec.active[target] = active_now;
                }
            } else {
                let (_, c) = queue.pop().expect("completion peeked");
                if let Some(rec) = self.util_recording.as_mut() {
                    rec.account(c.server, now, self.cores_per_server);
                }
                let server = &mut self.servers[c.server];
                server.account(now, self.cores_per_server);
                server.active -= 1;
                server.completed += 1;
                self.obs.completions.incr();
                self.response_times.push(now - c.arrival);
                self.response_by_type.push((c.job_type, now - c.arrival));
                if let Some(next) = server.queue.pop_front() {
                    server.active += 1;
                    queue.push(
                        now + next.service_time.value(),
                        Completion {
                            server: c.server,
                            arrival: next.arrival.value(),
                            job_type: next.job_type,
                        },
                    );
                }
                let active_now = self.servers[c.server].active;
                if let Some(rec) = self.util_recording.as_mut() {
                    rec.active[c.server] = active_now;
                }
            }
        }

        // Close the books at the horizon (or last event).
        let end = now.max(horizon.min(now + 1.0));
        self.drain_flushes(end);
        if let Some(rec) = self.util_recording.as_mut() {
            for s in 0..self.servers.len() {
                rec.account(s, end, self.cores_per_server);
            }
        }
        // Independent per-server bookkeeping: disjoint &mut access, so the
        // parallel sweep is deterministic by construction.
        let cores = self.cores_per_server;
        tts_exec::par_for_each_mut(&mut self.servers, |s| s.account(end, cores));
        self.metrics(end, queue.len() as u64)
    }

    fn metrics(&self, end: f64, in_service: u64) -> DiscreteMetrics {
        let completed: u64 = self.servers.iter().map(|s| s.completed).sum();
        let queued: u64 = self.servers.iter().map(|s| s.queue.len() as u64).sum();
        let mut sorted = self.response_times.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("response times are finite"));
        let mean = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<f64>() / sorted.len() as f64
        };
        let p95 = if sorted.is_empty() {
            0.0
        } else {
            sorted[((sorted.len() as f64 * 0.95) as usize).min(sorted.len() - 1)]
        };
        let cap = self.cores_per_server as f64 * end;
        let server_utilization: Vec<f64> = self.servers.iter().map(|s| s.busy_time / cap).collect();
        let rack_utilization: Vec<f64> = server_utilization
            .chunks(self.rack_size)
            .map(|rack| rack.iter().sum::<f64>() / rack.len() as f64)
            .collect();
        let cluster_utilization =
            server_utilization.iter().sum::<f64>() / server_utilization.len() as f64;
        // Per-type QoS digests are independent filters over the response
        // log (sorting dominates at scale); compute them on the tts_exec
        // pool — ordered results keep the report identical to serial.
        // Borrow only the response log: the sim itself need not be Sync.
        let response_by_type = &self.response_by_type;
        let per_type = tts_exec::par_map(&JobType::ALL, |&jt| {
            let mut times: Vec<f64> = response_by_type
                .iter()
                .filter(|(t, _)| *t == jt)
                .map(|(_, r)| *r)
                .collect();
            if times.is_empty() {
                return None;
            }
            times.sort_by(|a, b| a.total_cmp(b));
            let mean = times.iter().sum::<f64>() / times.len() as f64;
            let p95 = times[((times.len() as f64 * 0.95) as usize).min(times.len() - 1)];
            Some(TypeQos {
                job_type: jt,
                completed: times.len() as u64,
                mean_response_s: mean,
                p95_response_s: p95,
            })
        })
        .into_iter()
        .flatten()
        .collect();
        DiscreteMetrics {
            completed,
            in_flight: in_service + queued,
            mean_response_s: mean,
            p95_response_s: p95,
            server_utilization,
            rack_utilization,
            cluster_utilization,
            throughput_jobs_per_s: completed as f64 / end.max(1e-9),
            per_type,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancer::{LeastLoaded, RoundRobin};
    use tts_units::Seconds;
    use tts_workload::series::TimeSeries;
    use tts_workload::{JobStream, JobType};

    fn flat_jobs(util: f64, servers: usize, hours: f64, seed: u64) -> Vec<Job> {
        let n = (hours * 60.0) as usize;
        let trace = TimeSeries::new(Seconds::new(60.0), vec![util; n]);
        JobStream::new(trace, JobType::SocialNetworking, servers, seed).collect_all()
    }

    #[test]
    fn conservation_of_jobs() {
        let jobs = flat_jobs(0.5, 8, 0.5, 1);
        let total = jobs.len() as u64;
        let mut sim = ClusterConfig::new(8)
            .cores_per_server(4)
            .rack_size(4)
            .build(RoundRobin::new());
        let m = sim.run(&jobs, Seconds::new(3600.0));
        assert_eq!(m.completed + m.in_flight, total);
        assert!(m.completed > 0);
    }

    #[test]
    fn measured_utilization_tracks_offered_load() {
        // Offered load 0.6 of cluster core capacity.
        let servers = 10;
        // JobStream offers util×servers server-equivalents of work; with
        // `cores` slots per server, the per-core utilization is util/cores.
        let jobs = flat_jobs(0.6, servers, 2.0, 2);
        let mut sim = ClusterConfig::new(servers)
            .cores_per_server(1)
            .rack_size(5)
            .build(RoundRobin::new());
        let m = sim.run(&jobs, Seconds::new(2.0 * 3600.0));
        assert!(
            (m.cluster_utilization - 0.6).abs() < 0.05,
            "measured {}",
            m.cluster_utilization
        );
    }

    #[test]
    fn round_robin_spreads_load_evenly() {
        let jobs = flat_jobs(0.5, 8, 1.0, 3);
        let mut sim = ClusterConfig::new(8)
            .cores_per_server(4)
            .rack_size(4)
            .build(RoundRobin::new());
        let m = sim.run(&jobs, Seconds::new(3600.0));
        let max = m
            .server_utilization
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max);
        let min = m
            .server_utilization
            .iter()
            .cloned()
            .fold(f64::MAX, f64::min);
        assert!(max - min < 0.08, "spread {}..{}", min, max);
    }

    #[test]
    fn rack_metrics_aggregate_servers() {
        let jobs = flat_jobs(0.5, 8, 0.5, 4);
        let mut sim = ClusterConfig::new(8)
            .cores_per_server(4)
            .rack_size(4)
            .build(RoundRobin::new());
        let m = sim.run(&jobs, Seconds::new(1800.0));
        assert_eq!(m.rack_utilization.len(), 2);
        let rack_mean = (m.rack_utilization[0] + m.rack_utilization[1]) / 2.0;
        assert!((rack_mean - m.cluster_utilization).abs() < 1e-9);
    }

    #[test]
    fn response_time_grows_under_overload() {
        let light = {
            let jobs = flat_jobs(0.3, 4, 1.0, 5);
            let mut sim = ClusterConfig::new(4)
                .cores_per_server(2)
                .rack_size(2)
                .build(RoundRobin::new());
            sim.run(&jobs, Seconds::new(3600.0)).mean_response_s
        };
        let heavy = {
            // Offered load ~1.9× core capacity → queues build.
            let n = 60;
            let trace = TimeSeries::new(Seconds::new(60.0), vec![0.95; n]);
            let jobs = JobStream::new(trace, JobType::SocialNetworking, 16, 5).collect_all();
            let mut sim = ClusterConfig::new(4)
                .cores_per_server(2)
                .rack_size(2)
                .build(RoundRobin::new());
            sim.run(&jobs, Seconds::new(3600.0)).mean_response_s
        };
        assert!(
            heavy > 3.0 * light,
            "overload must inflate response times: {light} vs {heavy}"
        );
    }

    #[test]
    fn least_loaded_beats_round_robin_under_bursts() {
        // With highly variable service times and tight capacity, JSQ should
        // not be (much) worse than blind round-robin.
        let jobs = {
            let trace = TimeSeries::new(Seconds::new(60.0), vec![0.85; 60]);
            JobStream::new(trace, JobType::MapReduce, 6, 9).collect_all()
        };
        let rr = {
            let mut sim = ClusterConfig::new(6)
                .cores_per_server(2)
                .rack_size(3)
                .build(RoundRobin::new());
            sim.run(&jobs, Seconds::new(3600.0)).mean_response_s
        };
        let ll = {
            let mut sim = ClusterConfig::new(6)
                .cores_per_server(2)
                .rack_size(3)
                .build(LeastLoaded::new());
            sim.run(&jobs, Seconds::new(3600.0)).mean_response_s
        };
        assert!(ll <= rr * 1.05, "JSQ {ll} should not lose to RR {rr}");
    }

    #[test]
    fn p95_at_least_mean() {
        let jobs = flat_jobs(0.7, 8, 1.0, 6);
        let mut sim = ClusterConfig::new(8)
            .cores_per_server(4)
            .rack_size(4)
            .build(RoundRobin::new());
        let m = sim.run(&jobs, Seconds::new(3600.0));
        assert!(m.p95_response_s >= m.mean_response_s * 0.9);
        assert!(m.throughput_jobs_per_s > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        ClusterConfig::new(0)
            .cores_per_server(1)
            .rack_size(1)
            .build(RoundRobin::new());
    }

    #[test]
    fn metrics_and_flush_hook_observe_the_event_loop() {
        use std::sync::{Arc, Mutex};
        let jobs = flat_jobs(0.5, 8, 0.5, 1);
        let sink = MetricsSink::fresh();
        let mut sim = ClusterConfig::new(8)
            .cores_per_server(4)
            .rack_size(4)
            .metrics(&sink)
            .build(RoundRobin::new());
        let fired: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
        let log = Arc::clone(&fired);
        sim.set_periodic_flush(Seconds::new(300.0), move |t| {
            log.lock().unwrap().push(t.value());
        });
        let m = sim.run(&jobs, Seconds::new(1800.0));
        assert_eq!(sink.counter("dcsim.completions").value(), m.completed);
        assert_eq!(
            sink.counter("dcsim.arrivals").value(),
            m.completed + m.in_flight
        );
        assert_eq!(
            sink.counter("dcsim.events").value(),
            sink.counter("dcsim.arrivals").value() + m.completed
        );
        // Flush boundaries are exact multiples of the interval, in order.
        let fired = fired.lock().unwrap();
        assert!(!fired.is_empty(), "flush hook never fired");
        for (i, t) in fired.iter().enumerate() {
            assert_eq!(*t, 300.0 * (i as f64 + 1.0));
        }
    }

    #[test]
    fn per_type_qos_separates_interactive_from_batch() {
        // Offer a mix of short (search) and long (MapReduce) jobs; the
        // per-type stats must reflect their service-time scales.
        let trace = TimeSeries::new(Seconds::new(60.0), vec![0.35; 60]);
        let mut jobs = JobStream::new(trace.clone(), JobType::WebSearch, 16, 1).collect_all();
        jobs.extend(JobStream::new(trace, JobType::MapReduce, 16, 2).collect_all());
        jobs.sort_by(|a, b| a.arrival.value().total_cmp(&b.arrival.value()));
        let mut sim = ClusterConfig::new(16)
            .cores_per_server(4)
            .rack_size(8)
            .build(RoundRobin::new());
        let m = sim.run(&jobs, Seconds::new(3600.0));
        let qos: std::collections::HashMap<_, _> =
            m.per_type.iter().map(|q| (q.job_type, q)).collect();
        let search = qos.get(&JobType::WebSearch).expect("search jobs ran");
        let mapreduce = qos.get(&JobType::MapReduce).expect("batch jobs ran");
        assert!(
            mapreduce.mean_response_s > 10.0 * search.mean_response_s,
            "batch {} vs interactive {}",
            mapreduce.mean_response_s,
            search.mean_response_s
        );
        assert!(search.completed > 0 && mapreduce.completed > 0);
        assert!(search.p95_response_s >= search.mean_response_s * 0.5);
        // Per-type counts sum to the total.
        let type_sum: u64 = m.per_type.iter().map(|q| q.completed).sum();
        assert_eq!(type_sum, m.completed);
    }

    #[test]
    fn recorded_utilization_matches_aggregate_metric() {
        let jobs = flat_jobs(0.6, 10, 2.0, 8);
        let mut sim = ClusterConfig::new(10)
            .cores_per_server(1)
            .rack_size(5)
            .build(RoundRobin::new());
        sim.record_utilization(Seconds::new(300.0));
        let horizon = Seconds::new(2.0 * 3600.0);
        let m = sim.run(&jobs, horizon);
        let trace = sim.utilization_trace().expect("recording enabled");
        // The trace's mean must agree with the run's aggregate utilization.
        assert!(
            (trace.mean() - m.cluster_utilization).abs() < 0.03,
            "trace mean {} vs aggregate {}",
            trace.mean(),
            m.cluster_utilization
        );
        // Samples are valid utilizations.
        assert!(trace.values().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(trace.len() >= 23, "expected ~24 five-minute buckets");
    }

    #[test]
    fn utilization_trace_requires_recording() {
        let jobs = flat_jobs(0.5, 4, 0.5, 9);
        let mut sim = ClusterConfig::new(4)
            .cores_per_server(2)
            .rack_size(2)
            .build(RoundRobin::new());
        sim.run(&jobs, Seconds::new(1800.0));
        assert!(sim.utilization_trace().is_none());
    }

    #[test]
    fn recorded_trace_follows_a_varying_offered_load() {
        // Low hour then high hour: the recorded trace must show the step.
        let mut vals = vec![0.2; 60];
        vals.extend(vec![0.8; 60]);
        let trace_in = TimeSeries::new(Seconds::new(60.0), vals);
        let jobs = JobStream::new(trace_in, JobType::SocialNetworking, 20, 4).collect_all();
        let mut sim = ClusterConfig::new(20)
            .cores_per_server(1)
            .rack_size(10)
            .build(RoundRobin::new());
        sim.record_utilization(Seconds::new(600.0));
        sim.run(&jobs, Seconds::new(7200.0));
        let out = sim.utilization_trace().unwrap();
        let first_hour: f64 = out.values()[..6].iter().sum::<f64>() / 6.0;
        let second_hour: f64 = out.values()[6..12].iter().sum::<f64>() / 6.0;
        assert!(
            second_hour > 2.5 * first_hour,
            "step not visible: {first_hour} vs {second_hour}"
        );
    }
}
