//! The discrete job-level cluster simulator.
//!
//! Models exactly what the paper attributes to DCSim: "job arrival, load
//! balancing, and work completion ... at the server, rack, and cluster
//! levels". Each server runs up to `cores` jobs concurrently; excess jobs
//! wait in a per-server FIFO. A pluggable [`Balancer`] routes arrivals.
//!
//! # Engine layout (fleet-scale rebuild)
//!
//! Server state lives in struct-of-arrays form ([`ServerArrays`]): core
//! occupancy, kill epoch, and the QoS accumulators (busy time, completion
//! counts) are parallel flat arrays, so the hot dispatch/completion loop
//! walks cache-linear memory, and the balancer's occupancy view is
//! maintained incrementally instead of rebuilt O(n) per arrival. The
//! event queue is the bucketed [`CalendarQueue`] (O(1) amortized) rather
//! than a binary heap. Both changes preserve the exact event order and
//! float-operation order of the original engine — the old heap engine is
//! frozen in [`crate::legacy`] and `tests/engine_equivalence.rs` proves
//! the two byte-identical. For epoch-sharded fleet scale (1M+ servers)
//! see [`crate::fleet`].

use crate::balancer::Balancer;
use crate::calendar::CalendarQueue;
use std::collections::VecDeque;
use tts_obs::{Counter, Gauge, MetricsSink};
use tts_units::Seconds;
use tts_workload::{Job, JobType};

/// Builder for [`DiscreteClusterSim`], replacing the positional
/// four-argument constructor. Defaults: one core per server, one rack
/// spanning the whole cluster, no utilization recording, telemetry off.
///
/// ```
/// use tts_dcsim::balancer::RoundRobin;
/// use tts_dcsim::discrete::ClusterConfig;
///
/// let sim = ClusterConfig::new(8)
///     .cores_per_server(4)
///     .rack_size(4)
///     .build(RoundRobin::new());
/// # let _ = sim;
/// ```
#[derive(Debug, Clone)]
#[must_use = "a cluster config does nothing until .build(balancer)"]
pub struct ClusterConfig {
    servers: usize,
    cores_per_server: usize,
    rack_size: Option<usize>,
    record_utilization: Option<Seconds>,
    metrics: MetricsSink,
}

impl ClusterConfig {
    /// A config for a cluster of `servers` machines (validated at
    /// [`Self::build`]).
    pub fn new(servers: usize) -> Self {
        Self {
            servers,
            cores_per_server: 1,
            rack_size: None,
            record_utilization: None,
            metrics: MetricsSink::disabled(),
        }
    }

    /// Concurrent job slots per server (default 1).
    pub fn cores_per_server(mut self, cores: usize) -> Self {
        self.cores_per_server = cores;
        self
    }

    /// Servers per rack (default: one rack spanning the whole cluster).
    pub fn rack_size(mut self, servers: usize) -> Self {
        self.rack_size = Some(servers);
        self
    }

    /// Records the cluster-utilization trace with the given bucket width
    /// (see [`DiscreteClusterSim::utilization_trace`]).
    pub fn record_utilization(mut self, interval: Seconds) -> Self {
        self.record_utilization = Some(interval);
        self
    }

    /// Routes event-loop telemetry (events, arrivals, completions, queue
    /// depth gauges) to `sink`. The event loop is serial, so everything
    /// registers deterministic.
    pub fn metrics(mut self, sink: &MetricsSink) -> Self {
        self.metrics = sink.clone();
        self
    }

    /// Builds the simulator.
    ///
    /// # Panics
    /// Panics if `servers`, `cores_per_server`, `rack_size`, or the
    /// utilization-recording interval is zero/non-positive.
    pub fn build<B: Balancer>(self, balancer: B) -> DiscreteClusterSim<B> {
        assert!(self.servers > 0, "need at least one server");
        assert!(self.cores_per_server > 0, "need at least one core");
        let rack_size = self.rack_size.unwrap_or(self.servers);
        assert!(rack_size > 0, "need at least one server per rack");
        let util_recording = self.record_utilization.map(|interval| {
            assert!(interval.value() > 0.0, "interval must be positive");
            UtilRecorder::new(self.servers, interval.value())
        });
        DiscreteClusterSim {
            soa: ServerArrays::new(self.servers),
            cores_per_server: self.cores_per_server,
            rack_size,
            balancer,
            response_times: Vec::new(),
            response_by_type: Vec::new(),
            util_recording,
            obs: SimObs::resolve(&self.metrics),
            flush_hook: None,
            fault_hook: None,
            orphans: VecDeque::new(),
            fault_events: 0,
            rescheduled: 0,
            stale_completions: 0,
        }
    }
}

/// Resolved event-loop metric handles (no-ops when built without a sink).
/// All writes happen on the serial event loop, so every entry is
/// [`tts_obs::Determinism::Deterministic`] — including the fault
/// counters, which is what keeps chaos-run snapshots byte-identical
/// across thread counts.
#[derive(Debug, Clone, Default)]
struct SimObs {
    events: Counter,
    arrivals: Counter,
    completions: Counter,
    enqueued: Counter,
    fault_kills: Counter,
    fault_revives: Counter,
    fault_rescheduled: Counter,
    fault_stale: Counter,
    active_jobs: Gauge,
    queued_jobs: Gauge,
    servers_down: Gauge,
}

impl SimObs {
    fn resolve(sink: &MetricsSink) -> Self {
        Self {
            events: sink.counter("dcsim.events"),
            arrivals: sink.counter("dcsim.arrivals"),
            completions: sink.counter("dcsim.completions"),
            enqueued: sink.counter("dcsim.enqueued"),
            fault_kills: sink.counter("dcsim.fault.kills"),
            fault_revives: sink.counter("dcsim.fault.revives"),
            fault_rescheduled: sink.counter("dcsim.fault.rescheduled"),
            fault_stale: sink.counter("dcsim.fault.stale_completions"),
            active_jobs: sink.gauge("dcsim.active_jobs"),
            queued_jobs: sink.gauge("dcsim.queued_jobs"),
            servers_down: sink.gauge("dcsim.servers_down"),
        }
    }
}

/// An event-level fault action requested by a [`FaultHook`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Take a server down. Its in-service and queued jobs are
    /// re-dispatched through the balancer (service restarts from
    /// scratch — no partial credit), so no job is lost or duplicated.
    /// A kill of an already-down or unknown server is a no-op.
    KillServer(usize),
    /// Bring a downed server back. Jobs orphaned while the whole
    /// cluster was down are re-dispatched immediately. A revive of an
    /// up or unknown server is a no-op.
    ReviveServer(usize),
}

/// An event-level fault hook polled by [`DiscreteClusterSim::run`] —
/// the `chaos` crate's entry point into the simulator. The event loop
/// treats hook firings as first-class events: it wakes at
/// [`FaultHook::next_time`] even when no arrival or completion is due.
///
/// Contract: after [`FaultHook::pop_actions`]`(now)` returns, the next
/// [`FaultHook::next_time`] must be strictly greater than `now` (the
/// loop panics otherwise — a stuck hook would spin forever).
pub trait FaultHook: Send + std::fmt::Debug {
    /// The next simulated time this hook wants control, if any.
    fn next_time(&self) -> Option<f64>;
    /// The actions to apply at `now`; must advance the hook's cursor
    /// past `now`.
    fn pop_actions(&mut self, now: f64) -> Vec<FaultAction>;
}

/// A periodic callback on simulated time (see
/// [`DiscreteClusterSim::set_periodic_flush`]).
struct FlushHook {
    interval: f64,
    next: f64,
    f: Box<dyn FnMut(Seconds) + Send>,
}

impl std::fmt::Debug for FlushHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlushHook")
            .field("interval", &self.interval)
            .field("next", &self.next)
            .finish_non_exhaustive()
    }
}

/// A completion event. `epoch` snapshots the target server's kill
/// epoch at dispatch: the event queue has no cancellation, so killing a
/// server instead bumps its epoch and completions from an older epoch
/// are discarded as stale when popped.
#[derive(Debug, Clone, Copy)]
struct Completion {
    server: usize,
    epoch: u64,
    job_id: u64,
    arrival: f64,
    job_type: JobType,
}

/// Struct-of-arrays server state: one flat array per field instead of a
/// `Vec<ServerState>` of structs. The dispatch/completion hot loop reads
/// `occupancy` (and nothing else) for routing, so arrivals touch one
/// contiguous array; the per-server QoS accumulators (`busy_time`,
/// `completed`) are equally flat for the closing sweep.
#[derive(Debug)]
struct ServerArrays {
    /// Jobs in service (≤ cores), per server.
    active: Vec<usize>,
    /// Waiting jobs, per server.
    queue: Vec<VecDeque<Job>>,
    /// Jobs currently in service (mirrors `active`); kept so a kill can
    /// re-dispatch them. Original arrival times ride along, so sojourn
    /// accounting spans the interruption.
    running: Vec<Vec<Job>>,
    /// Busy core-seconds accumulated, per server.
    busy_time: Vec<f64>,
    /// Completed jobs, per server.
    completed: Vec<u64>,
    /// Time of the last occupancy change, per server.
    last_change: Vec<f64>,
    /// Down due to an injected fault.
    down: Vec<bool>,
    /// Bumped on every kill; stale completions carry an older value.
    epoch: Vec<u64>,
    /// The balancer's routing view: `active + queue.len()` per server,
    /// `usize::MAX` when down. Maintained incrementally at every
    /// transition — exactly the vector the legacy engine rebuilt O(n)
    /// per dispatch, so every balancer sees identical input.
    occupancy: Vec<usize>,
    /// Count of not-down servers (0 ⇒ arrivals park in the orphan
    /// buffer).
    live: usize,
}

impl ServerArrays {
    fn new(n: usize) -> Self {
        Self {
            active: vec![0; n],
            queue: (0..n).map(|_| VecDeque::new()).collect(),
            running: (0..n).map(|_| Vec::new()).collect(),
            busy_time: vec![0.0; n],
            completed: vec![0; n],
            last_change: vec![0.0; n],
            down: vec![false; n],
            epoch: vec![0; n],
            occupancy: vec![0; n],
            live: n,
        }
    }

    fn len(&self) -> usize {
        self.active.len()
    }

    /// Accrues server `s` busy time from its last change to `now`
    /// (same arithmetic, same order as the legacy `ServerState::account`).
    fn account(&mut self, s: usize, now: f64, cores: usize) {
        self.busy_time[s] += self.active[s].min(cores) as f64 * (now - self.last_change[s]);
        self.last_change[s] = now;
    }
}

/// Response-time statistics for one job type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TypeQos {
    /// The job type.
    pub job_type: JobType,
    /// Completed jobs of this type.
    pub completed: u64,
    /// Mean response time, seconds.
    pub mean_response_s: f64,
    /// 95th-percentile response time, seconds.
    pub p95_response_s: f64,
}

/// Aggregate metrics of a discrete run.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteMetrics {
    /// Jobs that finished service.
    pub completed: u64,
    /// Jobs still in the system when the run ended.
    pub in_flight: u64,
    /// Mean response (sojourn) time, seconds.
    pub mean_response_s: f64,
    /// 95th-percentile response time, seconds.
    pub p95_response_s: f64,
    /// Per-server utilization (busy core-seconds / capacity).
    pub server_utilization: Vec<f64>,
    /// Per-rack mean utilization.
    pub rack_utilization: Vec<f64>,
    /// Cluster-level mean utilization.
    pub cluster_utilization: f64,
    /// Completed jobs per second of simulated time.
    pub throughput_jobs_per_s: f64,
    /// Per-job-type response-time statistics (QoS view; interactive types
    /// suffer first when batch work monopolizes cores).
    pub per_type: Vec<TypeQos>,
    /// Fault actions applied during the run (kills + revives).
    pub fault_events: u64,
    /// Jobs re-dispatched because their server was killed.
    pub rescheduled: u64,
    /// Completion events discarded because their server died first.
    pub stale_completions: u64,
}

/// The discrete event-driven cluster simulator.
#[derive(Debug)]
pub struct DiscreteClusterSim<B: Balancer> {
    soa: ServerArrays,
    cores_per_server: usize,
    rack_size: usize,
    balancer: B,
    response_times: Vec<f64>,
    response_by_type: Vec<(JobType, f64)>,
    /// Busy core-seconds accumulated per recording interval (when
    /// utilization recording is enabled).
    util_recording: Option<UtilRecorder>,
    /// Event-loop metric handles (no-ops unless configured).
    obs: SimObs,
    /// Periodic simulated-time callback, fired during [`Self::run`].
    flush_hook: Option<FlushHook>,
    /// Event-level fault hook (see [`Self::set_fault_hook`]).
    fault_hook: Option<Box<dyn FaultHook>>,
    /// Jobs with nowhere to go because every server was down; drained
    /// on the next revive. Still in-flight for conservation purposes.
    orphans: VecDeque<Job>,
    fault_events: u64,
    rescheduled: u64,
    stale_completions: u64,
}

#[derive(Debug)]
struct UtilRecorder {
    interval: f64,
    /// Busy core-seconds per interval bucket.
    busy: Vec<f64>,
    /// Time of the last occupancy change, per server.
    last_change: Vec<f64>,
    /// Active jobs per server at `last_change`.
    active: Vec<usize>,
}

impl UtilRecorder {
    fn new(servers: usize, interval: f64) -> Self {
        Self {
            interval,
            busy: Vec::new(),
            last_change: vec![0.0; servers],
            active: vec![0; servers],
        }
    }

    /// Accounts server `s` busy time from its last change to `now`,
    /// spreading across interval buckets.
    fn account(&mut self, s: usize, now: f64, cores: usize) {
        let mut t = self.last_change[s];
        let active = self.active[s].min(cores) as f64;
        while t < now {
            let bucket = (t / self.interval) as usize;
            while self.busy.len() <= bucket {
                self.busy.push(0.0);
            }
            let bucket_end = (bucket as f64 + 1.0) * self.interval;
            let seg_end = bucket_end.min(now);
            self.busy[bucket] += active * (seg_end - t);
            t = seg_end;
        }
        self.last_change[s] = now;
    }
}

impl<B: Balancer> DiscreteClusterSim<B> {
    /// Installs a callback fired every `interval` of *simulated* time
    /// during [`Self::run`] — the flush hook the `repro --metrics` sidecar
    /// uses to snapshot the registry periodically. Before each firing the
    /// `dcsim.active_jobs` / `dcsim.queued_jobs` gauges are refreshed, so
    /// a registry snapshot taken inside the callback sees the queue state
    /// at that boundary. Boundaries are drained up to each event's time
    /// (and the run's closing time), so firing times — and therefore any
    /// snapshot sequence — are deterministic.
    ///
    /// # Panics
    /// Panics if `interval` is not positive.
    pub fn set_periodic_flush(
        &mut self,
        interval: Seconds,
        f: impl FnMut(Seconds) + Send + 'static,
    ) {
        assert!(interval.value() > 0.0, "flush interval must be positive");
        self.flush_hook = Some(FlushHook {
            interval: interval.value(),
            next: interval.value(),
            f: Box::new(f),
        });
    }

    /// Fires the flush hook at every interval boundary ≤ `t`, refreshing
    /// the queue-depth gauges first.
    fn drain_flushes(&mut self, t: f64) {
        let Some(mut hook) = self.flush_hook.take() else {
            return;
        };
        while hook.next <= t {
            let active: usize = self.soa.active.iter().sum();
            let queued: usize = self.soa.queue.iter().map(|q| q.len()).sum();
            self.obs.active_jobs.set(active as f64);
            self.obs.queued_jobs.set(queued as f64);
            (hook.f)(Seconds::new(hook.next));
            hook.next += hook.interval;
        }
        self.flush_hook = Some(hook);
    }

    /// Installs an event-level fault hook, polled by [`Self::run`] as a
    /// third event source next to arrivals and completions. Call before
    /// [`Self::run`].
    pub fn set_fault_hook(&mut self, hook: Box<dyn FaultHook>) {
        self.fault_hook = Some(hook);
    }

    /// Number of servers currently taken down by faults.
    pub fn servers_down(&self) -> usize {
        self.soa.len() - self.soa.live
    }

    /// Routes `job` to a live server through the balancer; used for both
    /// fresh arrivals and fault re-dispatch. If the balancer picks a
    /// downed server, falls back to the least-occupied live one (lowest
    /// index on ties) — deterministic for every balancer. With the whole
    /// cluster down the job is parked in the orphan buffer.
    fn dispatch_job(&mut self, job: Job, now: f64, queue: &mut CalendarQueue<Completion>) {
        if self.soa.live == 0 {
            self.orphans.push_back(job);
            return;
        }
        let mut target = self.balancer.pick(&self.soa.occupancy);
        if target >= self.soa.len() || self.soa.down[target] {
            target = self
                .soa
                .occupancy
                .iter()
                .enumerate()
                .filter(|(i, _)| !self.soa.down[*i])
                .min_by_key(|(_, occ)| **occ)
                .map(|(i, _)| i)
                .expect("at least one live server");
        }
        if let Some(rec) = self.util_recording.as_mut() {
            rec.account(target, now, self.cores_per_server);
        }
        self.soa.account(target, now, self.cores_per_server);
        if self.soa.active[target] < self.cores_per_server {
            self.soa.active[target] += 1;
            self.soa.running[target].push(job);
            queue.push(
                now + job.service_time.value(),
                Completion {
                    server: target,
                    epoch: self.soa.epoch[target],
                    job_id: job.id,
                    arrival: job.arrival.value(),
                    job_type: job.job_type,
                },
            );
        } else {
            self.soa.queue[target].push_back(job);
            self.obs.enqueued.incr();
        }
        // Both branches added one job to the server (in service or
        // queued), so the routing view moves by exactly one.
        self.soa.occupancy[target] += 1;
        if let Some(rec) = self.util_recording.as_mut() {
            rec.active[target] = self.soa.active[target];
        }
    }

    /// Applies one fault action at simulated time `now`.
    fn apply_fault(
        &mut self,
        action: FaultAction,
        now: f64,
        queue: &mut CalendarQueue<Completion>,
    ) {
        match action {
            FaultAction::KillServer(s) => {
                if s >= self.soa.len() || self.soa.down[s] {
                    return;
                }
                self.fault_events += 1;
                self.obs.fault_kills.incr();
                if let Some(rec) = self.util_recording.as_mut() {
                    rec.account(s, now, self.cores_per_server);
                    rec.active[s] = 0;
                }
                self.soa.account(s, now, self.cores_per_server);
                self.soa.down[s] = true;
                self.soa.epoch[s] += 1;
                self.soa.active[s] = 0;
                self.soa.occupancy[s] = usize::MAX;
                self.soa.live -= 1;
                let mut displaced: Vec<Job> = self.soa.running[s].drain(..).collect();
                displaced.extend(self.soa.queue[s].drain(..));
                for job in displaced {
                    self.rescheduled += 1;
                    self.obs.fault_rescheduled.incr();
                    self.dispatch_job(job, now, queue);
                }
            }
            FaultAction::ReviveServer(s) => {
                if s >= self.soa.len() || !self.soa.down[s] {
                    return;
                }
                self.fault_events += 1;
                self.obs.fault_revives.incr();
                self.soa.down[s] = false;
                self.soa.last_change[s] = now;
                self.soa.live += 1;
                self.soa.occupancy[s] = self.soa.active[s] + self.soa.queue[s].len();
                if let Some(rec) = self.util_recording.as_mut() {
                    rec.last_change[s] = now;
                }
                let parked: Vec<Job> = self.orphans.drain(..).collect();
                for job in parked {
                    self.dispatch_job(job, now, queue);
                }
            }
        }
        self.obs.servers_down.set(self.servers_down() as f64);
    }

    /// Enables recording of the cluster's utilization as a time series
    /// with the given bucket width. Call before [`Self::run`]; retrieve
    /// with [`Self::utilization_trace`].
    pub fn record_utilization(&mut self, interval: Seconds) {
        assert!(interval.value() > 0.0, "interval must be positive");
        self.util_recording = Some(UtilRecorder::new(self.soa.len(), interval.value()));
    }

    /// The recorded cluster-utilization trace (fraction of total core
    /// capacity per bucket), or `None` if recording was not enabled.
    ///
    /// This is the bridge from the event-driven simulator to the thermal
    /// pipeline: feed the result to
    /// [`crate::cluster::run_cooling_load`] for a job-level Figure 11.
    #[must_use = "returns the recorded trace without side effects"]
    pub fn utilization_trace(&self) -> Option<tts_workload::TimeSeries> {
        let rec = self.util_recording.as_ref()?;
        if rec.busy.is_empty() {
            return None;
        }
        let capacity = (self.soa.len() * self.cores_per_server) as f64 * rec.interval;
        let values: Vec<f64> = rec.busy.iter().map(|b| (b / capacity).min(1.0)).collect();
        Some(tts_workload::TimeSeries::new(
            Seconds::new(rec.interval),
            values,
        ))
    }

    /// Runs the full job list to completion (all jobs arrive, the run ends
    /// at `horizon` — jobs still in service then count as in-flight).
    ///
    /// # Panics
    /// Panics if jobs are not sorted by arrival time.
    pub fn run(&mut self, jobs: &[Job], horizon: Seconds) -> DiscreteMetrics {
        let mut queue: CalendarQueue<Completion> = CalendarQueue::new();
        let horizon = horizon.value();
        let mut job_iter = jobs.iter().peekable();
        let mut last_arrival = f64::NEG_INFINITY;
        let mut now = 0.0;

        loop {
            // Next event: fault, job arrival, or completion — earliest
            // wins; at ties, faults fire first (a kill at t affects the
            // job arriving at t), then arrivals before completions (the
            // pre-fault ordering, unchanged).
            let next_arrival = job_iter.peek().map(|j| j.arrival.value());
            let next_completion = queue.peek_time();
            let next_fault = self.fault_hook.as_ref().and_then(|h| h.next_time());
            let job_next = match (next_arrival, next_completion) {
                (Some(a), Some(c)) if a <= c => Some((a, true)),
                (Some(_), Some(c)) => Some((c, false)),
                (Some(a), None) => Some((a, true)),
                (None, Some(c)) => Some((c, false)),
                (None, None) => None,
            };
            let fault_turn = match (next_fault, job_next) {
                (Some(f), Some((t, _))) => f <= t,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let t = if fault_turn {
                next_fault.expect("fault turn has a time")
            } else {
                job_next.expect("job turn has an event").0
            };
            if t > horizon {
                break;
            }
            now = t;
            self.drain_flushes(now);

            if fault_turn {
                let mut hook = self.fault_hook.take().expect("fault turn has a hook");
                for action in hook.pop_actions(now) {
                    self.apply_fault(action, now, &mut queue);
                }
                assert!(
                    hook.next_time().is_none_or(|next| next > now),
                    "fault hook must advance past {now}"
                );
                self.fault_hook = Some(hook);
                continue;
            }
            self.obs.events.incr();

            let (_, is_arrival) = job_next.expect("job turn has an event");
            if is_arrival {
                let job = *job_iter.next().expect("peeked job exists");
                assert!(
                    job.arrival.value() >= last_arrival,
                    "jobs must be sorted by arrival"
                );
                last_arrival = job.arrival.value();
                self.obs.arrivals.incr();
                self.dispatch_job(job, now, &mut queue);
            } else {
                let (_, c) = queue.pop().expect("completion peeked");
                if self.soa.down[c.server] || self.soa.epoch[c.server] != c.epoch {
                    // The server died after this completion was
                    // scheduled; the job was already re-dispatched.
                    self.stale_completions += 1;
                    self.obs.fault_stale.incr();
                    continue;
                }
                if let Some(rec) = self.util_recording.as_mut() {
                    rec.account(c.server, now, self.cores_per_server);
                }
                self.soa.account(c.server, now, self.cores_per_server);
                self.soa.active[c.server] -= 1;
                self.soa.completed[c.server] += 1;
                if let Some(pos) = self.soa.running[c.server]
                    .iter()
                    .position(|j| j.id == c.job_id && j.arrival.value() == c.arrival)
                {
                    self.soa.running[c.server].remove(pos);
                }
                self.obs.completions.incr();
                self.response_times.push(now - c.arrival);
                self.response_by_type.push((c.job_type, now - c.arrival));
                if let Some(next) = self.soa.queue[c.server].pop_front() {
                    self.soa.active[c.server] += 1;
                    self.soa.running[c.server].push(next);
                    queue.push(
                        now + next.service_time.value(),
                        Completion {
                            server: c.server,
                            epoch: self.soa.epoch[c.server],
                            job_id: next.id,
                            arrival: next.arrival.value(),
                            job_type: next.job_type,
                        },
                    );
                }
                // One job left the server (a queued one may have moved
                // into service, which keeps the count): occupancy −1.
                self.soa.occupancy[c.server] -= 1;
                if let Some(rec) = self.util_recording.as_mut() {
                    rec.active[c.server] = self.soa.active[c.server];
                }
            }
        }

        // Close the books at the horizon (or last event).
        let end = now.max(horizon.min(now + 1.0));
        self.drain_flushes(end);
        if let Some(rec) = self.util_recording.as_mut() {
            for s in 0..self.soa.len() {
                rec.account(s, end, self.cores_per_server);
            }
        }
        // Per-server close-out over the flat arrays. Each server's update
        // is independent, so this sweep is byte-identical to the legacy
        // engine's parallel one.
        for s in 0..self.soa.len() {
            self.soa.account(s, end, self.cores_per_server);
        }
        self.metrics(end)
    }

    fn metrics(&self, end: f64) -> DiscreteMetrics {
        let completed: u64 = self.soa.completed.iter().sum();
        // In-service jobs are counted from server state, not the event
        // queue — stale completions of killed servers still sit in the
        // queue and must not inflate the in-flight count.
        let in_service: u64 = self.soa.running.iter().map(|r| r.len() as u64).sum::<u64>()
            + self.orphans.len() as u64;
        let queued: u64 = self.soa.queue.iter().map(|q| q.len() as u64).sum();
        let mut sorted = self.response_times.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("response times are finite"));
        let mean = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<f64>() / sorted.len() as f64
        };
        let p95 = if sorted.is_empty() {
            0.0
        } else {
            sorted[((sorted.len() as f64 * 0.95) as usize).min(sorted.len() - 1)]
        };
        let cap = self.cores_per_server as f64 * end;
        let server_utilization: Vec<f64> = self.soa.busy_time.iter().map(|b| b / cap).collect();
        let rack_utilization: Vec<f64> = server_utilization
            .chunks(self.rack_size)
            .map(|rack| rack.iter().sum::<f64>() / rack.len() as f64)
            .collect();
        let cluster_utilization =
            server_utilization.iter().sum::<f64>() / server_utilization.len() as f64;
        // Per-type QoS digests are independent filters over the response
        // log (sorting dominates at scale); compute them on the tts_exec
        // pool — ordered results keep the report identical to serial.
        // Borrow only the response log: the sim itself need not be Sync.
        let response_by_type = &self.response_by_type;
        let per_type = tts_exec::par_map(&JobType::ALL, |&jt| {
            let mut times: Vec<f64> = response_by_type
                .iter()
                .filter(|(t, _)| *t == jt)
                .map(|(_, r)| *r)
                .collect();
            if times.is_empty() {
                return None;
            }
            times.sort_by(|a, b| a.total_cmp(b));
            let mean = times.iter().sum::<f64>() / times.len() as f64;
            let p95 = times[((times.len() as f64 * 0.95) as usize).min(times.len() - 1)];
            Some(TypeQos {
                job_type: jt,
                completed: times.len() as u64,
                mean_response_s: mean,
                p95_response_s: p95,
            })
        })
        .into_iter()
        .flatten()
        .collect();
        DiscreteMetrics {
            completed,
            in_flight: in_service + queued,
            mean_response_s: mean,
            p95_response_s: p95,
            server_utilization,
            rack_utilization,
            cluster_utilization,
            throughput_jobs_per_s: completed as f64 / end.max(1e-9),
            per_type,
            fault_events: self.fault_events,
            rescheduled: self.rescheduled,
            stale_completions: self.stale_completions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancer::{LeastLoaded, RoundRobin};
    use tts_units::Seconds;
    use tts_workload::series::TimeSeries;
    use tts_workload::{JobStream, JobType};

    fn flat_jobs(util: f64, servers: usize, hours: f64, seed: u64) -> Vec<Job> {
        let n = (hours * 60.0) as usize;
        let trace = TimeSeries::new(Seconds::new(60.0), vec![util; n]);
        JobStream::new(trace, JobType::SocialNetworking, servers, seed).collect_all()
    }

    #[test]
    fn conservation_of_jobs() {
        let jobs = flat_jobs(0.5, 8, 0.5, 1);
        let total = jobs.len() as u64;
        let mut sim = ClusterConfig::new(8)
            .cores_per_server(4)
            .rack_size(4)
            .build(RoundRobin::new());
        let m = sim.run(&jobs, Seconds::new(3600.0));
        assert_eq!(m.completed + m.in_flight, total);
        assert!(m.completed > 0);
    }

    #[test]
    fn measured_utilization_tracks_offered_load() {
        // Offered load 0.6 of cluster core capacity.
        let servers = 10;
        // JobStream offers util×servers server-equivalents of work; with
        // `cores` slots per server, the per-core utilization is util/cores.
        let jobs = flat_jobs(0.6, servers, 2.0, 2);
        let mut sim = ClusterConfig::new(servers)
            .cores_per_server(1)
            .rack_size(5)
            .build(RoundRobin::new());
        let m = sim.run(&jobs, Seconds::new(2.0 * 3600.0));
        assert!(
            (m.cluster_utilization - 0.6).abs() < 0.05,
            "measured {}",
            m.cluster_utilization
        );
    }

    #[test]
    fn round_robin_spreads_load_evenly() {
        let jobs = flat_jobs(0.5, 8, 1.0, 3);
        let mut sim = ClusterConfig::new(8)
            .cores_per_server(4)
            .rack_size(4)
            .build(RoundRobin::new());
        let m = sim.run(&jobs, Seconds::new(3600.0));
        let max = m
            .server_utilization
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max);
        let min = m
            .server_utilization
            .iter()
            .cloned()
            .fold(f64::MAX, f64::min);
        assert!(max - min < 0.08, "spread {}..{}", min, max);
    }

    #[test]
    fn rack_metrics_aggregate_servers() {
        let jobs = flat_jobs(0.5, 8, 0.5, 4);
        let mut sim = ClusterConfig::new(8)
            .cores_per_server(4)
            .rack_size(4)
            .build(RoundRobin::new());
        let m = sim.run(&jobs, Seconds::new(1800.0));
        assert_eq!(m.rack_utilization.len(), 2);
        let rack_mean = (m.rack_utilization[0] + m.rack_utilization[1]) / 2.0;
        assert!((rack_mean - m.cluster_utilization).abs() < 1e-9);
    }

    #[test]
    fn response_time_grows_under_overload() {
        let light = {
            let jobs = flat_jobs(0.3, 4, 1.0, 5);
            let mut sim = ClusterConfig::new(4)
                .cores_per_server(2)
                .rack_size(2)
                .build(RoundRobin::new());
            sim.run(&jobs, Seconds::new(3600.0)).mean_response_s
        };
        let heavy = {
            // Offered load ~1.9× core capacity → queues build.
            let n = 60;
            let trace = TimeSeries::new(Seconds::new(60.0), vec![0.95; n]);
            let jobs = JobStream::new(trace, JobType::SocialNetworking, 16, 5).collect_all();
            let mut sim = ClusterConfig::new(4)
                .cores_per_server(2)
                .rack_size(2)
                .build(RoundRobin::new());
            sim.run(&jobs, Seconds::new(3600.0)).mean_response_s
        };
        assert!(
            heavy > 3.0 * light,
            "overload must inflate response times: {light} vs {heavy}"
        );
    }

    #[test]
    fn least_loaded_beats_round_robin_under_bursts() {
        // With highly variable service times and tight capacity, JSQ should
        // not be (much) worse than blind round-robin.
        let jobs = {
            let trace = TimeSeries::new(Seconds::new(60.0), vec![0.85; 60]);
            JobStream::new(trace, JobType::MapReduce, 6, 9).collect_all()
        };
        let rr = {
            let mut sim = ClusterConfig::new(6)
                .cores_per_server(2)
                .rack_size(3)
                .build(RoundRobin::new());
            sim.run(&jobs, Seconds::new(3600.0)).mean_response_s
        };
        let ll = {
            let mut sim = ClusterConfig::new(6)
                .cores_per_server(2)
                .rack_size(3)
                .build(LeastLoaded::new());
            sim.run(&jobs, Seconds::new(3600.0)).mean_response_s
        };
        assert!(ll <= rr * 1.05, "JSQ {ll} should not lose to RR {rr}");
    }

    #[test]
    fn p95_at_least_mean() {
        let jobs = flat_jobs(0.7, 8, 1.0, 6);
        let mut sim = ClusterConfig::new(8)
            .cores_per_server(4)
            .rack_size(4)
            .build(RoundRobin::new());
        let m = sim.run(&jobs, Seconds::new(3600.0));
        assert!(m.p95_response_s >= m.mean_response_s * 0.9);
        assert!(m.throughput_jobs_per_s > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        ClusterConfig::new(0)
            .cores_per_server(1)
            .rack_size(1)
            .build(RoundRobin::new());
    }

    #[test]
    fn metrics_and_flush_hook_observe_the_event_loop() {
        use std::sync::{Arc, Mutex};
        let jobs = flat_jobs(0.5, 8, 0.5, 1);
        let sink = MetricsSink::fresh();
        let mut sim = ClusterConfig::new(8)
            .cores_per_server(4)
            .rack_size(4)
            .metrics(&sink)
            .build(RoundRobin::new());
        let fired: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
        let log = Arc::clone(&fired);
        sim.set_periodic_flush(Seconds::new(300.0), move |t| {
            log.lock().unwrap().push(t.value());
        });
        let m = sim.run(&jobs, Seconds::new(1800.0));
        assert_eq!(sink.counter("dcsim.completions").value(), m.completed);
        assert_eq!(
            sink.counter("dcsim.arrivals").value(),
            m.completed + m.in_flight
        );
        assert_eq!(
            sink.counter("dcsim.events").value(),
            sink.counter("dcsim.arrivals").value() + m.completed
        );
        // Flush boundaries are exact multiples of the interval, in order.
        let fired = fired.lock().unwrap();
        assert!(!fired.is_empty(), "flush hook never fired");
        for (i, t) in fired.iter().enumerate() {
            assert_eq!(*t, 300.0 * (i as f64 + 1.0));
        }
    }

    #[test]
    fn per_type_qos_separates_interactive_from_batch() {
        // Offer a mix of short (search) and long (MapReduce) jobs; the
        // per-type stats must reflect their service-time scales.
        let trace = TimeSeries::new(Seconds::new(60.0), vec![0.35; 60]);
        let mut jobs = JobStream::new(trace.clone(), JobType::WebSearch, 16, 1).collect_all();
        jobs.extend(JobStream::new(trace, JobType::MapReduce, 16, 2).collect_all());
        jobs.sort_by(|a, b| a.arrival.value().total_cmp(&b.arrival.value()));
        let mut sim = ClusterConfig::new(16)
            .cores_per_server(4)
            .rack_size(8)
            .build(RoundRobin::new());
        let m = sim.run(&jobs, Seconds::new(3600.0));
        let qos: std::collections::HashMap<_, _> =
            m.per_type.iter().map(|q| (q.job_type, q)).collect();
        let search = qos.get(&JobType::WebSearch).expect("search jobs ran");
        let mapreduce = qos.get(&JobType::MapReduce).expect("batch jobs ran");
        assert!(
            mapreduce.mean_response_s > 10.0 * search.mean_response_s,
            "batch {} vs interactive {}",
            mapreduce.mean_response_s,
            search.mean_response_s
        );
        assert!(search.completed > 0 && mapreduce.completed > 0);
        assert!(search.p95_response_s >= search.mean_response_s * 0.5);
        // Per-type counts sum to the total.
        let type_sum: u64 = m.per_type.iter().map(|q| q.completed).sum();
        assert_eq!(type_sum, m.completed);
    }

    #[test]
    fn recorded_utilization_matches_aggregate_metric() {
        let jobs = flat_jobs(0.6, 10, 2.0, 8);
        let mut sim = ClusterConfig::new(10)
            .cores_per_server(1)
            .rack_size(5)
            .build(RoundRobin::new());
        sim.record_utilization(Seconds::new(300.0));
        let horizon = Seconds::new(2.0 * 3600.0);
        let m = sim.run(&jobs, horizon);
        let trace = sim.utilization_trace().expect("recording enabled");
        // The trace's mean must agree with the run's aggregate utilization.
        assert!(
            (trace.mean() - m.cluster_utilization).abs() < 0.03,
            "trace mean {} vs aggregate {}",
            trace.mean(),
            m.cluster_utilization
        );
        // Samples are valid utilizations.
        assert!(trace.values().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(trace.len() >= 23, "expected ~24 five-minute buckets");
    }

    #[test]
    fn utilization_trace_requires_recording() {
        let jobs = flat_jobs(0.5, 4, 0.5, 9);
        let mut sim = ClusterConfig::new(4)
            .cores_per_server(2)
            .rack_size(2)
            .build(RoundRobin::new());
        sim.run(&jobs, Seconds::new(1800.0));
        assert!(sim.utilization_trace().is_none());
    }

    /// Minimal scheduled fault hook for the in-module tests (the chaos
    /// crate builds the real one from sampled plans).
    #[derive(Debug)]
    struct Scheduled {
        faults: Vec<(f64, FaultAction)>,
        cursor: usize,
    }

    impl Scheduled {
        fn new(mut faults: Vec<(f64, FaultAction)>) -> Self {
            faults.sort_by(|a, b| a.0.total_cmp(&b.0));
            Self { faults, cursor: 0 }
        }
    }

    impl FaultHook for Scheduled {
        fn next_time(&self) -> Option<f64> {
            self.faults.get(self.cursor).map(|f| f.0)
        }

        fn pop_actions(&mut self, now: f64) -> Vec<FaultAction> {
            let mut actions = Vec::new();
            while let Some(&(t, a)) = self.faults.get(self.cursor) {
                if t > now {
                    break;
                }
                actions.push(a);
                self.cursor += 1;
            }
            actions
        }
    }

    #[test]
    fn server_kill_conserves_jobs() {
        let jobs = flat_jobs(0.6, 8, 1.0, 7);
        let total = jobs.len() as u64;
        let mut sim = ClusterConfig::new(8)
            .cores_per_server(2)
            .rack_size(4)
            .build(RoundRobin::new());
        sim.set_fault_hook(Box::new(Scheduled::new(vec![
            (600.0, FaultAction::KillServer(0)),
            (900.0, FaultAction::KillServer(3)),
            (1800.0, FaultAction::ReviveServer(0)),
        ])));
        let m = sim.run(&jobs, Seconds::new(3600.0));
        assert_eq!(
            m.completed + m.in_flight,
            total,
            "kill/revive must not lose or duplicate jobs"
        );
        assert_eq!(m.fault_events, 3);
        assert!(m.rescheduled > 0, "busy servers had jobs to displace");
        assert!(m.stale_completions > 0, "in-service work was interrupted");
        assert_eq!(sim.servers_down(), 1, "server 3 stays down");
    }

    #[test]
    fn whole_cluster_outage_parks_and_recovers_jobs() {
        let jobs = flat_jobs(0.5, 2, 1.0, 11);
        let total = jobs.len() as u64;
        let mut sim = ClusterConfig::new(2)
            .cores_per_server(2)
            .rack_size(2)
            .build(RoundRobin::new());
        sim.set_fault_hook(Box::new(Scheduled::new(vec![
            (300.0, FaultAction::KillServer(0)),
            (300.0, FaultAction::KillServer(1)),
            (1200.0, FaultAction::ReviveServer(1)),
        ])));
        let m = sim.run(&jobs, Seconds::new(3600.0));
        assert_eq!(m.completed + m.in_flight, total);
        // Work resumed after the revive: more completions than could
        // have finished before the 300 s outage.
        assert!(
            m.completed > total / 2,
            "completed {} of {total}",
            m.completed
        );
    }

    #[test]
    fn flapping_server_converges_and_redundant_actions_are_noops() {
        let jobs = flat_jobs(0.5, 4, 1.0, 13);
        let total = jobs.len() as u64;
        let mut faults = Vec::new();
        for i in 0..10 {
            let t = 200.0 + 300.0 * i as f64;
            faults.push((t, FaultAction::KillServer(1)));
            faults.push((t + 150.0, FaultAction::ReviveServer(1)));
        }
        // Redundant / out-of-range actions must be ignored.
        faults.push((250.0, FaultAction::KillServer(1)));
        faults.push((260.0, FaultAction::ReviveServer(2)));
        faults.push((270.0, FaultAction::KillServer(99)));
        let mut sim = ClusterConfig::new(4)
            .cores_per_server(2)
            .rack_size(2)
            .build(LeastLoaded::new());
        sim.set_fault_hook(Box::new(Scheduled::new(faults)));
        let m = sim.run(&jobs, Seconds::new(3600.0));
        assert_eq!(m.completed + m.in_flight, total);
        assert_eq!(m.fault_events, 20, "only real transitions count");
        assert_eq!(sim.servers_down(), 0);
    }

    #[test]
    fn killed_server_accrues_no_utilization_while_down() {
        let jobs = flat_jobs(0.7, 4, 2.0, 17);
        let mut sim = ClusterConfig::new(4)
            .cores_per_server(1)
            .rack_size(2)
            .build(RoundRobin::new());
        // Server 2 is down for the second half of the run.
        sim.set_fault_hook(Box::new(Scheduled::new(vec![(
            3600.0,
            FaultAction::KillServer(2),
        )])));
        let m = sim.run(&jobs, Seconds::new(7200.0));
        let healthy_min = m
            .server_utilization
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 2)
            .map(|(_, u)| *u)
            .fold(f64::MAX, f64::min);
        assert!(
            m.server_utilization[2] < 0.75 * healthy_min,
            "down server must sit idle: {:?}",
            m.server_utilization
        );
        assert!(m.server_utilization.iter().all(|u| (0.0..=1.0).contains(u)));
    }

    #[test]
    fn fault_counters_reach_the_metrics_sink() {
        let jobs = flat_jobs(0.6, 4, 1.0, 19);
        let sink = MetricsSink::fresh();
        let mut sim = ClusterConfig::new(4)
            .cores_per_server(2)
            .rack_size(2)
            .metrics(&sink)
            .build(RoundRobin::new());
        sim.set_fault_hook(Box::new(Scheduled::new(vec![
            (400.0, FaultAction::KillServer(0)),
            (800.0, FaultAction::ReviveServer(0)),
        ])));
        let m = sim.run(&jobs, Seconds::new(3600.0));
        assert_eq!(sink.counter("dcsim.fault.kills").value(), 1);
        assert_eq!(sink.counter("dcsim.fault.revives").value(), 1);
        assert_eq!(
            sink.counter("dcsim.fault.rescheduled").value(),
            m.rescheduled
        );
        assert_eq!(
            sink.counter("dcsim.fault.stale_completions").value(),
            m.stale_completions
        );
        // Conservation also holds through the sink's view.
        assert_eq!(
            sink.counter("dcsim.arrivals").value(),
            m.completed + m.in_flight
        );
    }

    #[test]
    fn recorded_trace_follows_a_varying_offered_load() {
        // Low hour then high hour: the recorded trace must show the step.
        let mut vals = vec![0.2; 60];
        vals.extend(vec![0.8; 60]);
        let trace_in = TimeSeries::new(Seconds::new(60.0), vals);
        let jobs = JobStream::new(trace_in, JobType::SocialNetworking, 20, 4).collect_all();
        let mut sim = ClusterConfig::new(20)
            .cores_per_server(1)
            .rack_size(10)
            .build(RoundRobin::new());
        sim.record_utilization(Seconds::new(600.0));
        sim.run(&jobs, Seconds::new(7200.0));
        let out = sim.utilization_trace().unwrap();
        let first_hour: f64 = out.values()[..6].iter().sum::<f64>() / 6.0;
        let second_hour: f64 = out.values()[6..12].iter().sum::<f64>() / 6.0;
        assert!(
            second_hour > 2.5 * first_hour,
            "step not visible: {first_hour} vs {second_hour}"
        );
    }

    #[test]
    fn matches_legacy_engine_on_a_faulted_run() {
        // Spot check (the full matrix lives in tests/engine_equivalence.rs):
        // same jobs + same fault plan through both engines, byte-equal
        // metrics.
        let jobs = flat_jobs(0.6, 8, 1.0, 23);
        let faults = vec![
            (500.0, FaultAction::KillServer(2)),
            (700.0, FaultAction::KillServer(5)),
            (1500.0, FaultAction::ReviveServer(2)),
        ];
        let mut new_sim = ClusterConfig::new(8)
            .cores_per_server(2)
            .rack_size(4)
            .build(LeastLoaded::new());
        new_sim.set_fault_hook(Box::new(Scheduled::new(faults.clone())));
        new_sim.record_utilization(Seconds::new(300.0));
        let new_m = new_sim.run(&jobs, Seconds::new(3600.0));
        let mut old_sim = crate::legacy::LegacySim::new(8, 2, 4, LeastLoaded::new());
        old_sim.set_fault_hook(Box::new(Scheduled::new(faults)));
        old_sim.record_utilization(Seconds::new(300.0));
        let old_m = old_sim.run(&jobs, Seconds::new(3600.0));
        assert_eq!(new_m, old_m);
        assert_eq!(
            format!("{:?}", new_sim.utilization_trace()),
            format!("{:?}", old_sim.utilization_trace())
        );
    }
}
