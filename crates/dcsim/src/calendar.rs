//! A bucketed calendar queue with deterministic ordering.
//!
//! Drop-in replacement for the binary-heap [`crate::event::EventQueue`] on
//! the discrete engine's hot path. Events are hashed by time into a ring
//! of buckets (one "day" per bucket, the ring is a "year"); a cursor
//! sweeps the ring one day at a time, so with a well-chosen bucket width
//! both enqueue and dequeue are O(1) amortized (R. Brown, CACM 1988).
//!
//! # Determinism contract
//!
//! The queue realises **exactly** the same total order as the heap queue:
//! ascending `(time, insertion sequence)`. Within the cursor's current day
//! the next event is selected by a full `(time, seq)` scan — never by
//! storage position — so bucket layout, resize history, and float-boundary
//! quirks cannot leak into pop order. The property suite in
//! `tests/calendar_props.rs` drives this against the heap as an oracle.
//!
//! # Parameters
//!
//! The ring starts at [`CalendarQueue::MIN_BUCKETS`] buckets of width 1 s
//! and rebuilds when the population crosses 2× the bucket count (grow) or
//! ¼ of it (shrink). Each rebuild re-estimates the width as the mean gap
//! between the earliest and latest pending event — a pure function of the
//! pending set, so rebuilds are as deterministic as everything else.

/// An entry in the queue: `(time, seq, payload)`.
#[derive(Debug)]
struct Entry<E> {
    time: f64,
    seq: u64,
    payload: E,
}

/// A time-ordered event queue with FIFO tie-breaking, backed by a bucket
/// ring instead of a heap. Same observable contract as
/// [`crate::event::EventQueue`]; `peek_time` takes `&mut self` because it
/// may advance the cursor past empty days (it never skips an event).
#[derive(Debug)]
pub struct CalendarQueue<E> {
    /// The ring. `buckets[w.rem_euclid(n)]` holds every pending event
    /// whose day index is `w` (mod n). Buckets are unsorted; order is
    /// decided at pop time.
    buckets: Vec<Vec<Entry<E>>>,
    /// Bucket width in seconds (one "day").
    width: f64,
    /// Day index the sweep cursor is in. Every pending event lives in day
    /// `>= window` — pushes into an earlier day move the cursor back.
    window: i64,
    len: usize,
    next_seq: u64,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// Smallest (and initial) ring size.
    pub const MIN_BUCKETS: usize = 16;
    /// Smallest permitted bucket width (s); guards the day-index math
    /// against degenerate all-ties populations.
    pub const MIN_WIDTH: f64 = 1e-9;

    /// An empty queue (16 buckets of 1 s until the first rebuild).
    pub fn new() -> Self {
        Self {
            buckets: (0..Self::MIN_BUCKETS).map(|_| Vec::new()).collect(),
            width: 1.0,
            window: 0,
            len: 0,
            next_seq: 0,
        }
    }

    /// The day index of time `t` (monotone non-decreasing in `t`).
    fn day_of(&self, t: f64) -> i64 {
        (t / self.width).floor() as i64
    }

    fn bucket_of(&self, day: i64) -> usize {
        day.rem_euclid(self.buckets.len() as i64) as usize
    }

    /// Schedules `payload` at `time`.
    ///
    /// # Panics
    /// Panics on a NaN time — a NaN would silently corrupt the ordering.
    pub fn push(&mut self, time: f64, payload: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        let seq = self.next_seq;
        self.next_seq += 1;
        let day = self.day_of(time);
        if day < self.window {
            // The new event is earlier than the cursor's day: rewind so
            // the sweep cannot miss it. Popped events are gone from the
            // buckets, so rewinding never re-delivers.
            self.window = day;
        }
        let b = self.bucket_of(day);
        self.buckets[b].push(Entry { time, seq, payload });
        self.len += 1;
        if self.len > self.buckets.len() * 2 {
            self.rebuild(self.buckets.len() * 2);
        }
    }

    /// Locates the next event — `(bucket, position)` of the pending entry
    /// minimizing `(time, seq)` — advancing the cursor past empty days.
    fn locate_next(&mut self) -> Option<(usize, usize)> {
        if self.len == 0 {
            return None;
        }
        // Sweep at most one full year; day ordering equals time ordering
        // (distinct days never hold tied times), so the first non-empty
        // day contains the global minimum.
        for _ in 0..self.buckets.len() {
            let b = self.bucket_of(self.window);
            let hit = self.buckets[b]
                .iter()
                .enumerate()
                .filter(|(_, e)| self.day_of(e.time) == self.window)
                .min_by(|(_, x), (_, y)| {
                    x.time
                        .partial_cmp(&y.time)
                        .unwrap_or(core::cmp::Ordering::Equal)
                        .then(x.seq.cmp(&y.seq))
                });
            if let Some((pos, _)) = hit {
                return Some((b, pos));
            }
            self.window += 1;
        }
        // A whole year was empty — the next event is far in the future.
        // Jump straight to the global minimum instead of spinning.
        let mut best: Option<(usize, usize)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (pos, e) in bucket.iter().enumerate() {
                let better = match best {
                    None => true,
                    Some((bb, bp)) => {
                        let cur = &self.buckets[bb][bp];
                        e.time < cur.time || (e.time == cur.time && e.seq < cur.seq)
                    }
                };
                if better {
                    best = Some((b, pos));
                }
            }
        }
        let (b, pos) = best.expect("len > 0 but no entry found");
        self.window = self.day_of(self.buckets[b][pos].time);
        Some((b, pos))
    }

    /// Removes and returns the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let (b, pos) = self.locate_next()?;
        // swap_remove is safe: selection is by (time, seq), never by
        // storage position.
        let e = self.buckets[b].swap_remove(pos);
        self.len -= 1;
        if self.buckets.len() > Self::MIN_BUCKETS && self.len < self.buckets.len() / 4 {
            self.rebuild((self.buckets.len() / 2).max(Self::MIN_BUCKETS));
        }
        Some((e.time, e.payload))
    }

    /// The time of the earliest pending event. May advance the cursor
    /// (hence `&mut`), but never removes or reorders anything.
    pub fn peek_time(&mut self) -> Option<f64> {
        self.locate_next().map(|(b, pos)| self.buckets[b][pos].time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Re-buckets every pending event into a ring of `n` buckets, picking
    /// a fresh width from the pending population. Pure function of the
    /// pending set + `n`, so the rebuilt layout is deterministic.
    fn rebuild(&mut self, n: usize) {
        let mut entries: Vec<Entry<E>> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            entries.append(bucket);
        }
        if entries.len() >= 2 {
            let mut min_t = f64::INFINITY;
            let mut max_t = f64::NEG_INFINITY;
            for e in &entries {
                min_t = min_t.min(e.time);
                max_t = max_t.max(e.time);
            }
            let spread = max_t - min_t;
            if spread > 0.0 && spread.is_finite() {
                self.width = (spread / entries.len() as f64).max(Self::MIN_WIDTH);
            }
        }
        self.buckets = (0..n).map(|_| Vec::new()).collect();
        // The cursor must sit at (or before) the earliest pending day in
        // the *new* width.
        self.window = entries
            .iter()
            .map(|e| self.day_of(e.time))
            .min()
            .unwrap_or(0);
        for e in entries {
            let b = self.bucket_of(self.day_of(e.time));
            self.buckets[b].push(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = CalendarQueue::new();
        q.push(1.0, "first");
        q.push(1.0, "second");
        q.push(1.0, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn peek_and_len() {
        let mut q = CalendarQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(5.0, ());
        q.push(2.0, ());
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.len(), 2);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_panics() {
        let mut q = CalendarQueue::new();
        q.push(f64::NAN, ());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = CalendarQueue::new();
        q.push(10.0, 10);
        q.push(1.0, 1);
        assert_eq!(q.pop(), Some((1.0, 1)));
        q.push(5.0, 5);
        q.push(0.5, 0); // earlier than everything else pending
        assert_eq!(q.pop(), Some((0.5, 0)));
        assert_eq!(q.pop(), Some((5.0, 5)));
        assert_eq!(q.pop(), Some((10.0, 10)));
    }

    #[test]
    fn matches_heap_through_grow_and_shrink() {
        // Push far past the grow threshold, drain past the shrink
        // threshold, and check the full drain against the heap oracle.
        let mut cal = CalendarQueue::new();
        let mut heap = crate::event::EventQueue::new();
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut times = Vec::new();
        for _ in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            times.push((x % 100_000) as f64 / 10.0);
        }
        for (i, &t) in times.iter().enumerate() {
            cal.push(t, i);
            heap.push(t, i);
        }
        while let Some(expected) = heap.pop() {
            assert_eq!(cal.pop(), Some(expected));
        }
        assert!(cal.is_empty());
    }

    #[test]
    fn sparse_far_future_event_is_found() {
        // One event a million "years" past the cursor: the rotation
        // fallback must jump to it rather than sweep day by day.
        let mut q = CalendarQueue::new();
        q.push(0.5, "soon");
        q.push(9.0e9, "later");
        assert_eq!(q.pop(), Some((0.5, "soon")));
        assert_eq!(q.pop(), Some((9.0e9, "later")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_before_cursor_after_pops_is_delivered_first() {
        let mut q = CalendarQueue::new();
        for i in 0..100 {
            q.push(i as f64 * 7.0, i);
        }
        for _ in 0..50 {
            q.pop();
        }
        q.push(0.25, 1000); // far earlier than the cursor's day
        assert_eq!(q.pop(), Some((0.25, 1000)));
    }
}
