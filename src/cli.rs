//! Dependency-free argument parsing for the `tts` binary.

use tts_server::ServerClass;

/// A parsed `tts` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `tts cooling-load` — the Figure 11 study.
    CoolingLoad {
        /// Server class.
        class: ServerClass,
        /// Fixed melting point (°C); `None` = optimize.
        melting_c: Option<f64>,
        /// Cluster size.
        servers: usize,
        /// Use the one-week trace instead of the two-day trace.
        week: bool,
    },
    /// `tts constrained` — the Figure 12 study.
    Constrained {
        /// Server class.
        class: ServerClass,
        /// Cooling sized for this throttled utilization.
        sustainable: f64,
    },
    /// `tts validate` — the Figure 4 experiment.
    Validate,
    /// `tts blockage` — the Figure 7 sweep.
    Blockage {
        /// Server class.
        class: ServerClass,
    },
    /// `tts materials` — Table 1 and the suitability screen.
    Materials,
    /// `tts help` or `--help`.
    Help,
}

/// A fully parsed invocation: the command plus run-wide options.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// What to run.
    pub command: Command,
    /// `--threads N`: pin the executor worker budget for this run, the
    /// CLI face of the same lease (`tts_exec::with_thread_budget`) the
    /// service scheduler grants per request. Results are byte-identical
    /// at any value; only wall-clock changes.
    pub threads: Option<usize>,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

fn parse_class(s: &str) -> Result<ServerClass, ParseError> {
    match s.to_ascii_lowercase().as_str() {
        "1u" | "low-power" | "rd330" => Ok(ServerClass::LowPower1U),
        "2u" | "high-throughput" | "x4470" => Ok(ServerClass::HighThroughput2U),
        "ocp" | "open-compute" | "blade" => Ok(ServerClass::OpenComputeBlade),
        other => Err(ParseError(format!(
            "unknown server class '{other}' (expected 1u, 2u or ocp)"
        ))),
    }
}

fn take_value<'a>(
    flag: &str,
    it: &mut impl Iterator<Item = &'a str>,
) -> Result<&'a str, ParseError> {
    it.next()
        .ok_or_else(|| ParseError(format!("flag {flag} needs a value")))
}

/// Parses an argument list (without the program name), discarding the
/// run-wide options. Prefer [`parse_invocation`].
pub fn parse_args<'a>(args: impl IntoIterator<Item = &'a str>) -> Result<Command, ParseError> {
    parse_invocation(args).map(|inv| inv.command)
}

/// Parses an argument list (without the program name).
pub fn parse_invocation<'a>(
    args: impl IntoIterator<Item = &'a str>,
) -> Result<Invocation, ParseError> {
    let mut it = args.into_iter();
    let sub = match it.next() {
        None => {
            return Ok(Invocation {
                command: Command::Help,
                threads: None,
            })
        }
        Some(s) => s,
    };
    if sub == "help" || sub == "--help" || sub == "-h" {
        return Ok(Invocation {
            command: Command::Help,
            threads: None,
        });
    }

    let mut class = ServerClass::LowPower1U;
    let mut melting_c: Option<f64> = None;
    let mut servers: usize = 1008;
    let mut sustainable: f64 = 0.71;
    let mut week = false;
    let mut threads: Option<usize> = None;

    while let Some(flag) = it.next() {
        match flag {
            "--class" => class = parse_class(take_value(flag, &mut it)?)?,
            "--threads" => {
                let v = take_value(flag, &mut it)?;
                let n: usize = v
                    .parse()
                    .map_err(|_| ParseError(format!("--threads: '{v}' is not a count")))?;
                if n == 0 {
                    return Err(ParseError("--threads must be positive".into()));
                }
                threads = Some(n);
            }
            "--melting" => {
                let v = take_value(flag, &mut it)?;
                let c: f64 = v
                    .parse()
                    .map_err(|_| ParseError(format!("--melting: '{v}' is not a number")))?;
                if !(20.0..=80.0).contains(&c) {
                    return Err(ParseError(format!(
                        "--melting {c} °C outside the plausible 20–80 °C range"
                    )));
                }
                melting_c = Some(c);
            }
            "--servers" => {
                let v = take_value(flag, &mut it)?;
                servers = v
                    .parse()
                    .map_err(|_| ParseError(format!("--servers: '{v}' is not a count")))?;
                if servers == 0 {
                    return Err(ParseError("--servers must be positive".into()));
                }
            }
            "--sustainable" => {
                let v = take_value(flag, &mut it)?;
                sustainable = v
                    .parse()
                    .map_err(|_| ParseError(format!("--sustainable: '{v}' is not a number")))?;
                if !(0.05..=1.0).contains(&sustainable) {
                    return Err(ParseError("--sustainable must be in (0.05, 1.0]".into()));
                }
            }
            "--week" => week = true,
            other => {
                return Err(ParseError(format!("unknown flag '{other}'")));
            }
        }
    }

    let command = match sub {
        "cooling-load" => Command::CoolingLoad {
            class,
            melting_c,
            servers,
            week,
        },
        "constrained" => Command::Constrained { class, sustainable },
        "validate" => Command::Validate,
        "blockage" => Command::Blockage { class },
        "materials" => Command::Materials,
        other => {
            return Err(ParseError(format!(
                "unknown command '{other}' (try 'tts help')"
            )))
        }
    };
    Ok(Invocation { command, threads })
}

/// The help text.
pub const HELP: &str = "\
tts — thermal time shifting studies (ISCA 2015 reproduction)

USAGE:
    tts <command> [flags]

COMMANDS:
    cooling-load   Figure 11: peak cooling-load reduction for one cluster
    constrained    Figure 12: throughput under an undersized cooling plant
    validate       Figure 4: model-vs-reference validation run
    blockage       Figure 7: airflow blockage sweep
    materials      Table 1: PCM candidates and the datacenter screen
    help           This text

FLAGS:
    --class <1u|2u|ocp>     server platform            [default: 1u]
    --melting <°C>          fix the wax melting point  [default: optimize]
    --servers <n>           cluster size               [default: 1008]
    --sustainable <0..1>    constrained-cooling level  [default: 0.71]
    --week                  use the 7-day weekday/weekend trace
    --threads <n>           pin the worker budget      [default: auto]
                            (results are byte-identical at any value)
";

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Command, ParseError> {
        parse_args(s.split_whitespace())
    }

    #[test]
    fn defaults() {
        assert_eq!(
            parse("cooling-load").unwrap(),
            Command::CoolingLoad {
                class: ServerClass::LowPower1U,
                melting_c: None,
                servers: 1008,
                week: false,
            }
        );
    }

    #[test]
    fn full_cooling_load_invocation() {
        assert_eq!(
            parse("cooling-load --class 2u --melting 45.5 --servers 504 --week").unwrap(),
            Command::CoolingLoad {
                class: ServerClass::HighThroughput2U,
                melting_c: Some(45.5),
                servers: 504,
                week: true,
            }
        );
    }

    #[test]
    fn class_aliases() {
        for (alias, class) in [
            ("1u", ServerClass::LowPower1U),
            ("rd330", ServerClass::LowPower1U),
            ("2U", ServerClass::HighThroughput2U),
            ("x4470", ServerClass::HighThroughput2U),
            ("ocp", ServerClass::OpenComputeBlade),
            ("blade", ServerClass::OpenComputeBlade),
        ] {
            match parse(&format!("blockage --class {alias}")).unwrap() {
                Command::Blockage { class: c } => assert_eq!(c, class, "{alias}"),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn constrained_flags() {
        assert_eq!(
            parse("constrained --class ocp --sustainable 0.6").unwrap(),
            Command::Constrained {
                class: ServerClass::OpenComputeBlade,
                sustainable: 0.6,
            }
        );
    }

    #[test]
    fn help_variants() {
        for s in ["", "help", "--help", "-h"] {
            assert_eq!(parse(s).unwrap(), Command::Help, "{s:?}");
        }
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse("frobnicate")
            .unwrap_err()
            .0
            .contains("unknown command"));
        assert!(parse("cooling-load --class 3u")
            .unwrap_err()
            .0
            .contains("unknown server class"));
        assert!(parse("cooling-load --melting")
            .unwrap_err()
            .0
            .contains("needs a value"));
        assert!(parse("cooling-load --melting hot")
            .unwrap_err()
            .0
            .contains("not a number"));
        assert!(parse("cooling-load --melting 5")
            .unwrap_err()
            .0
            .contains("20–80"));
        assert!(parse("cooling-load --servers 0")
            .unwrap_err()
            .0
            .contains("positive"));
        assert!(parse("constrained --sustainable 7")
            .unwrap_err()
            .0
            .contains("sustainable"));
        assert!(parse("cooling-load --bogus")
            .unwrap_err()
            .0
            .contains("unknown flag"));
    }

    #[test]
    fn simple_commands() {
        assert_eq!(parse("validate").unwrap(), Command::Validate);
        assert_eq!(parse("materials").unwrap(), Command::Materials);
    }

    #[test]
    fn threads_pin_rides_any_command() {
        let inv = parse_invocation("blockage --class ocp --threads 4".split_whitespace()).unwrap();
        assert_eq!(inv.threads, Some(4));
        assert_eq!(
            inv.command,
            Command::Blockage {
                class: ServerClass::OpenComputeBlade
            }
        );
        // Unpinned invocations leave the budget to the executor.
        let bare = parse_invocation("validate".split_whitespace()).unwrap();
        assert_eq!(bare.threads, None);
        assert!(parse("validate --threads 0")
            .unwrap_err()
            .0
            .contains("positive"));
        assert!(parse("validate --threads many")
            .unwrap_err()
            .0
            .contains("not a count"));
    }
}
