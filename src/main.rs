//! `tts` — the thermal time shifting command-line tool.

use thermal_time_shifting::chart::ascii_chart;
use thermal_time_shifting::scenario::MeltingPointChoice;
use thermal_time_shifting::Scenario;
use tts_repro::cli::{parse_invocation, Command, Invocation, HELP};
use tts_server::blockage::default_sweep;
use tts_server::validation::{run as run_validation, ValidationConfig};
use tts_units::{Celsius, Fraction};
use tts_workload::{weekly_trace, WeeklyTraceConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Invocation { command, threads } = match parse_invocation(args.iter().map(String::as_str)) {
        Ok(inv) => inv,
        Err(e) => {
            eprintln!("error: {e}\n\n{HELP}");
            std::process::exit(2);
        }
    };
    // `--threads N` runs the whole command under a leased worker budget —
    // the same primitive the service scheduler grants per request.
    let run = || run_command(command);
    match threads {
        Some(n) => tts_exec::with_thread_budget(n, run),
        None => run(),
    }
}

fn run_command(command: Command) {
    match command {
        Command::Help => println!("{HELP}"),
        Command::CoolingLoad {
            class,
            melting_c,
            servers,
            week,
        } => {
            let mut scenario = Scenario::new(class).servers(servers);
            if let Some(c) = melting_c {
                scenario = scenario.melting_point(MeltingPointChoice::Fixed(Celsius::new(c)));
            }
            if week {
                scenario = scenario.trace(weekly_trace(&WeeklyTraceConfig::default()));
            }
            let study = scenario.cooling_load_study();
            println!("{class}, {servers} servers, wax {}:", study.material.name());
            println!(
                "  peak {:.0} kW -> {:.0} kW  ({:.2} % reduction); refreeze tail {:.1} h/day",
                study.run.peak_no_wax.value(),
                study.run.peak_with_wax.value(),
                study.run.peak_reduction.percent(),
                study.run.elevated_hours
                    / (study.run.times_h.last().copied().unwrap_or(24.0) / 24.0)
            );
            let chart = ascii_chart(
                &[
                    ("cooling load kW", &study.run.load_no_wax_kw),
                    ("with PCM", &study.run.load_with_wax_kw),
                ],
                72,
                12,
            );
            println!("{chart}");
        }
        Command::Constrained { class, sustainable } => {
            let study = Scenario::new(class)
                .sustainable_util(Fraction::new(sustainable))
                .constrained_study();
            println!(
                "{class}, cooling sized for {sustainable:.2} throttled utilization ({:.0} kW):",
                study.limit_kw
            );
            println!(
                "  peak throughput gain {:.1} %; throttle delayed {:.2} h; boosted {:.1} h; wax {}",
                study.run.peak_gain.percent(),
                study.run.delay_hours,
                study.run.boosted_hours,
                study.material.name()
            );
            let chart = ascii_chart(
                &[
                    ("ideal", &study.run.ideal),
                    ("no wax", &study.run.no_wax),
                    ("with wax", &study.run.with_wax),
                ],
                72,
                12,
            );
            println!("{chart}");
        }
        Command::Validate => {
            let r = run_validation(&ValidationConfig::default());
            println!(
                "steady-state mean difference: wax {:+.2} K, placebo {:+.2} K; transient r = {:.3}",
                r.steady_wax.mean_difference,
                r.steady_placebo.mean_difference,
                r.transient_wax.correlation
            );
            let chart = ascii_chart(
                &[
                    ("real wax", &r.real_wax),
                    ("real placebo", &r.real_placebo),
                    ("model wax", &r.icepak_wax),
                    ("model placebo", &r.icepak_placebo),
                ],
                72,
                14,
            );
            println!("{chart}");
        }
        Command::Blockage { class } => {
            println!("{class}: outlet / wax-zone / hottest-socket temperatures vs. blockage");
            for row in default_sweep(&class.spec()) {
                let hottest = row
                    .sockets
                    .iter()
                    .map(|t| t.value())
                    .fold(f64::MIN, f64::max);
                println!(
                    "  {:>3.0} %: {:>6.1} °C / {:>6.1} °C / {:>6.1} °C  ({:.1} CFM)",
                    row.blockage.percent(),
                    row.outlet.value(),
                    row.wax_zone.value(),
                    hottest,
                    row.flow.cfm()
                );
            }
        }
        Command::Materials => {
            for m in tts_pcm::PcmMaterial::table1() {
                let verdict = if m.is_datacenter_suitable() {
                    "suitable".to_string()
                } else {
                    let issues: Vec<String> = m
                        .datacenter_suitability()
                        .iter()
                        .map(|i| i.to_string())
                        .collect();
                    format!("rejected: {}", issues.join(", "))
                };
                println!(
                    "{:<24} Tm {:>5.1} °C  ΔH {:>3.0} J/g  {:>9}  -> {verdict}",
                    m.class().to_string(),
                    m.melting_point().value(),
                    m.heat_of_fusion().value(),
                    m.stability().to_string()
                );
            }
        }
    }
}
