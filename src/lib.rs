//! Command-line front end for the thermal time shifting toolkit.
//!
//! The `tts` binary (see `src/main.rs`) wraps the high-level
//! [`thermal_time_shifting::Scenario`] API:
//!
//! ```text
//! tts cooling-load  [--class 1u|2u|ocp] [--melting <°C>] [--servers <n>] [--week]
//! tts constrained   [--class 1u|2u|ocp] [--sustainable <0..1>]
//! tts validate
//! tts blockage      [--class 1u|2u|ocp]
//! tts materials
//! ```
//!
//! This crate hosts the argument parsing (kept dependency-free and unit
//! tested here) and the command implementations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

pub use cli::{parse_args, Command, ParseError};
