#!/usr/bin/env bash
# Hermetic CI gate: every step runs offline against the in-repo substrate
# (no crates.io access — the workspace has zero external dependencies).
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> bench targets compile"
cargo bench --offline --no-run -q

echo "==> smoke benches (thermal_solver, fig7_blockage)"
# Three samples apiece: enough to catch a hot-path regression or panic,
# cheap enough to run on every push. The thermal_solver report is kept
# and gated against BENCH_baseline.json below.
TMPDIR_CI="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_CI"' EXIT
TTS_BENCH_SAMPLES=3 TTS_BENCH_OUT="$TMPDIR_CI/thermal_solver.json" \
  cargo bench --offline -q -p tts-bench --bench thermal_solver
TTS_BENCH_SAMPLES=3 cargo bench --offline -q -p tts-bench --bench fig7_blockage

echo "==> metrics sidecar smoke (fig7, byte-identical across thread counts)"
# The observability layer must not perturb determinism: the same run at
# 1 and 4 workers has to produce byte-identical sidecars, and the
# sidecar must parse through the in-repo JSON layer (repro also
# round-trips it before writing; a parse failure aborts the run).
REPRO=target/release/repro
TTS_THREADS=1 "$REPRO" fig7 --metrics "$TMPDIR_CI/fig7.t1.json" > /dev/null
TTS_THREADS=4 "$REPRO" fig7 --metrics "$TMPDIR_CI/fig7.t4.json" > /dev/null
cmp "$TMPDIR_CI/fig7.t1.json" "$TMPDIR_CI/fig7.t4.json"

echo "==> bench gate (disabled-metrics thermal_solver within 5% of baseline)"
# Metrics are off by default; the solver hot path must stay within the
# pre-observability envelope recorded in BENCH_baseline.json.
"$REPRO" bench-check "$TMPDIR_CI/thermal_solver.json" BENCH_baseline.json 5

echo "ci.sh: all gates passed"
