#!/usr/bin/env bash
# Hermetic CI gate: every step runs offline against the in-repo substrate
# (no crates.io access — the workspace has zero external dependencies).
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> bench targets compile"
cargo bench --offline --no-run -q

echo "==> smoke benches (thermal_solver, fig7_blockage)"
# Three samples apiece: enough to catch a hot-path regression or panic,
# cheap enough to run on every push. The thermal_solver report is kept
# and gated against BENCH_baseline.json below.
TMPDIR_CI="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_CI"' EXIT
TTS_BENCH_SAMPLES=3 TTS_BENCH_OUT="$TMPDIR_CI/thermal_solver.json" \
  cargo bench --offline -q -p tts-bench --bench thermal_solver
TTS_BENCH_SAMPLES=3 cargo bench --offline -q -p tts-bench --bench fig7_blockage

echo "==> metrics sidecar smoke (fig7, byte-identical across thread counts)"
# The observability layer must not perturb determinism: the same run at
# 1 and 4 workers has to produce byte-identical sidecars, and the
# sidecar must parse through the in-repo JSON layer (repro also
# round-trips it before writing; a parse failure aborts the run).
REPRO=target/release/repro
TTS_THREADS=1 "$REPRO" fig7 --metrics "$TMPDIR_CI/fig7.t1.json" > /dev/null
TTS_THREADS=4 "$REPRO" fig7 --metrics "$TMPDIR_CI/fig7.t4.json" > /dev/null
cmp "$TMPDIR_CI/fig7.t1.json" "$TMPDIR_CI/fig7.t4.json"

echo "==> bench gate (disabled-metrics thermal_solver within 5% of baseline)"
# Metrics are off by default; the solver hot path must stay within the
# pre-observability envelope recorded in BENCH_baseline.json. Exit 3
# means a report/baseline was absent or malformed: the gate degrades to
# a warning instead of masquerading as a perf regression or a crash.
bench_rc=0
"$REPRO" bench-check "$TMPDIR_CI/thermal_solver.json" BENCH_baseline.json 5 || bench_rc=$?
if [ "$bench_rc" -eq 3 ]; then
  echo "ci.sh: WARNING: bench gate skipped (no usable baseline; exit 3)"
elif [ "$bench_rc" -ne 0 ]; then
  exit "$bench_rc"
fi

echo "==> ttsd smoke (serve fig7, byte-identical to repro, cold and cached, 1 and 4 threads)"
# The serving layer must answer exactly the bytes repro files as
# results/fig7.summary.json — whether computed or cached, at any thread
# count — then drain gracefully and flush its final metrics snapshot.
TTSD=target/release/ttsd
REPRO_ABS="$(pwd)/$REPRO"
(cd "$TMPDIR_CI" && "$REPRO_ABS" fig7 --write > /dev/null)
for T in 1 4; do
  PORT_FILE="$TMPDIR_CI/ttsd.t$T.port"
  METRICS_FILE="$TMPDIR_CI/ttsd.t$T.metrics.json"
  TTS_THREADS=$T "$TTSD" --addr 127.0.0.1:0 --no-stdin-watch \
    --port-file "$PORT_FILE" --metrics-out "$METRICS_FILE" &
  TTSD_PID=$!
  for _ in $(seq 1 100); do [ -s "$PORT_FILE" ] && break; sleep 0.1; done
  [ -s "$PORT_FILE" ] || { echo "ttsd never wrote its port file"; exit 1; }
  ADDR="$(cat "$PORT_FILE")"
  "$TTSD" req "$ADDR" GET /healthz > /dev/null
  "$TTSD" req "$ADDR" POST /v1/experiments/fig7 --body '{}' > "$TMPDIR_CI/fig7.t$T.cold.body"
  "$TTSD" req "$ADDR" POST /v1/experiments/fig7 --body '{}' > "$TMPDIR_CI/fig7.t$T.cached.body"
  # The async job lifecycle over ONE keep-alive connection: submit
  # (fresh daemon, so the id is 1), then consume the chunked progress
  # stream until the job is terminal. The stored result must be the
  # same bytes as the synchronous answer (determinism: the thread pin
  # cannot change them).
  "$TTSD" req "$ADDR" \
    POST /v1/jobs --body '{"experiment": "fig7", "params": {"threads": 3}}' \
    GET /v1/jobs/1/events > /dev/null
  "$TTSD" req "$ADDR" GET /v1/jobs/1/result > "$TMPDIR_CI/fig7.t$T.job.body"
  "$TTSD" req "$ADDR" POST /admin/shutdown > /dev/null
  wait "$TTSD_PID"
  [ -s "$METRICS_FILE" ] || { echo "ttsd did not flush metrics on shutdown"; exit 1; }
  cmp "$TMPDIR_CI/results/fig7.summary.json" "$TMPDIR_CI/fig7.t$T.cold.body"
  cmp "$TMPDIR_CI/results/fig7.summary.json" "$TMPDIR_CI/fig7.t$T.cached.body"
  cmp "$TMPDIR_CI/results/fig7.summary.json" "$TMPDIR_CI/fig7.t$T.job.body"
done

echo "==> ttsd loadgen gate (keep-alive+pipelining vs serial close, zero errors, p99 bound)"
# The mixed-traffic load generator embeds a server and drives cached,
# cold, and async-job traffic. Its own exit code enforces the serving
# acceptance bars: zero transport/status errors, keep-alive throughput
# at least 5x the close-delimited serial baseline, cached p99 under
# 50 ms. The recorded per-request means are then gated against
# BENCH_ttsd.json (wide tolerance: loopback rps is noisy on a shared
# CI box; a transport regression — say, losing pipelining or reverting
# to per-request connections — overshoots 60% by multiples).
"$TTSD" loadgen --duration-ms 1500 --out "$TMPDIR_CI/ttsd_bench.json"
bench_rc=0
"$REPRO" bench-check "$TMPDIR_CI/ttsd_bench.json" BENCH_ttsd.json 60 || bench_rc=$?
if [ "$bench_rc" -eq 3 ]; then
  echo "ci.sh: WARNING: ttsd bench gate skipped (no usable baseline; exit 3)"
elif [ "$bench_rc" -ne 0 ]; then
  exit "$bench_rc"
fi

echo "==> chaos gate (8 seeded fault scenarios, zero violations, byte-identical at 1 and 4 threads)"
# The fault-injection batch must come back green and its summary JSON
# must not depend on the worker count: a fixed base seed, run serially
# and with 4 workers, has to produce byte-identical bytes. The storm
# section only carries plan-determined fields, so the cmp is sound.
TTS_THREADS=1 "$REPRO" chaos --seeds 8 --summary "$TMPDIR_CI/chaos.t1.json"
TTS_THREADS=4 "$REPRO" chaos --seeds 8 --summary "$TMPDIR_CI/chaos.t4.json"
cmp "$TMPDIR_CI/chaos.t1.json" "$TMPDIR_CI/chaos.t4.json"
# The batch must actually exercise the cooling-backend faults: at the
# default base seed the sampler draws each of the three backend kinds at
# least once across the 8 plans, and their invariant phases run with
# zero violations (already enforced by the exit code above).
for kind in EconomizerDamperStuck PumpDerate ReuseDropout; do
  n=$(grep -o "\"$kind\": *[0-9]*" "$TMPDIR_CI/chaos.t1.json" | head -n 1 | awk '{print $2}')
  [ -n "$n" ] || { echo "chaos gate: summary lacks fault count for $kind"; exit 1; }
  awk -v n="$n" 'BEGIN { exit !(n >= 1) }' || {
    echo "chaos gate: $kind never injected across the batch"; exit 1; }
done
echo "chaos gate: all three cooling-backend fault kinds injected"

echo "==> fleet gate (100k servers, 6 h horizon, byte-identical at 1 and 4 threads)"
# The epoch-sharded fleet engine must not let the worker count leak into
# results: the same 100k-server run at 1 and 4 threads has to produce
# byte-identical summary AND raw-metrics JSON.
for T in 1 4; do
  (cd "$TMPDIR_CI" && TTS_THREADS=$T "$REPRO_ABS" fleet \
    --servers 100000 --horizon-h 6 --write > /dev/null)
  cp "$TMPDIR_CI/results/fleet.summary.json" "$TMPDIR_CI/fleet.t$T.summary.json"
  cp "$TMPDIR_CI/results/fleet.json" "$TMPDIR_CI/fleet.t$T.raw.json"
done
cmp "$TMPDIR_CI/fleet.t1.summary.json" "$TMPDIR_CI/fleet.t4.summary.json"
cmp "$TMPDIR_CI/fleet.t1.raw.json" "$TMPDIR_CI/fleet.t4.raw.json"

echo "==> fleet bench gate (server-step throughput within 20% of BENCH_fleet.json)"
# Same degradation contract as the thermal gate above: exit 3 (missing or
# malformed baseline) warns instead of failing. The tolerance is wide
# because the quantity being protected is architectural — the fleet
# engine clears the legacy engine by ~3,000x, so a 20% drift is noise
# while any real regression (say, falling back to per-job events)
# overshoots it by orders of magnitude.
TTS_BENCH_SAMPLES=3 TTS_BENCH_OUT="$TMPDIR_CI/fleet_engine.json" \
  cargo bench --offline -q -p tts-bench --bench fleet_engine
bench_rc=0
"$REPRO" bench-check "$TMPDIR_CI/fleet_engine.json" BENCH_fleet.json 20 || bench_rc=$?
if [ "$bench_rc" -eq 3 ]; then
  echo "ci.sh: WARNING: fleet bench gate skipped (no usable baseline; exit 3)"
elif [ "$bench_rc" -ne 0 ]; then
  exit "$bench_rc"
fi

echo "==> schedule gate (co-optimizer beats passive baseline, byte-identical at 1 and 4 threads)"
# The receding-horizon PCM/job co-optimizer must strictly beat the
# passive run-on-arrival baseline on the default two-day diurnal trace,
# and — like every other result surface — its summary bytes must not
# depend on the worker count.
for T in 1 4; do
  (cd "$TMPDIR_CI" && TTS_THREADS=$T "$REPRO_ABS" schedule --write > /dev/null)
  cp "$TMPDIR_CI/results/schedule.summary.json" "$TMPDIR_CI/schedule.t$T.summary.json"
done
cmp "$TMPDIR_CI/schedule.t1.summary.json" "$TMPDIR_CI/schedule.t4.summary.json"
opt_cost=$(grep -o '"cost_optimized_usd": *[0-9.eE+-]*' "$TMPDIR_CI/schedule.t1.summary.json" | awk '{print $2}')
pas_cost=$(grep -o '"cost_passive_usd": *[0-9.eE+-]*' "$TMPDIR_CI/schedule.t1.summary.json" | awk '{print $2}')
[ -n "$opt_cost" ] && [ -n "$pas_cost" ] || { echo "schedule summary lacks cost fields"; exit 1; }
awk -v o="$opt_cost" -v p="$pas_cost" 'BEGIN { exit !(o < p) }' || {
  echo "schedule gate: optimizer did not beat passive ($opt_cost vs $pas_cost)"; exit 1; }
echo "schedule gate: optimized \$$opt_cost < passive \$$pas_cost"

echo "==> schedule bench gate (plan latency within 25% of BENCH_schedule.json)"
# Plan latency is the controller's cost of doing business: one dense
# 108-slot LP solve per re-plan. The 25% tolerance rides out shared-box
# noise; a real regression (pivot-rule breakage, tableau blow-up) is
# multiples, not percent.
TTS_BENCH_SAMPLES=3 TTS_BENCH_OUT="$TMPDIR_CI/schedule_plan.json" \
  cargo bench --offline -q -p tts-bench --bench schedule_plan
bench_rc=0
"$REPRO" bench-check "$TMPDIR_CI/schedule_plan.json" BENCH_schedule.json 25 || bench_rc=$?
if [ "$bench_rc" -eq 3 ]; then
  echo "ci.sh: WARNING: schedule bench gate skipped (no usable baseline; exit 3)"
elif [ "$bench_rc" -ne 0 ]; then
  exit "$bench_rc"
fi

echo "==> design gate (surrogate search matches the grid optimum in <= 1/10 evals, byte-identical at 1/4/8 threads)"
# The tts-design search must reproduce the paper's melting-point optimum
# exactly (same lattice point, bit-identical objective) while paying at
# most a tenth of the exhaustive grid's simulator evaluations, the joint
# class x melt x mass x tariff x ambient search must end with a finite,
# strictly improved best-objective trace, and — like every result
# surface — the summary bytes must not depend on the worker count.
for T in 1 4 8; do
  (cd "$TMPDIR_CI" && TTS_THREADS=$T "$REPRO_ABS" design --write > /dev/null)
  cp "$TMPDIR_CI/results/design.summary.json" "$TMPDIR_CI/design.t$T.summary.json"
done
cmp "$TMPDIR_CI/design.t1.summary.json" "$TMPDIR_CI/design.t4.summary.json"
cmp "$TMPDIR_CI/design.t1.summary.json" "$TMPDIR_CI/design.t8.summary.json"
dkey() { grep -o "\"$1\": *[0-9.eE+-]*" "$TMPDIR_CI/design.t1.summary.json" | awk '{print $2}'; }
d_match=$(dkey design_matches_grid)
d_evals=$(dkey design_evals)
g_evals=$(dkey grid_evals)
j_finite=$(dkey joint_trace_finite)
j_delta=$(dkey joint_trace_delta_usd)
[ -n "$d_match" ] && [ -n "$d_evals" ] && [ -n "$g_evals" ] \
  && [ -n "$j_finite" ] && [ -n "$j_delta" ] \
  || { echo "design summary lacks gate fields"; exit 1; }
awk -v m="$d_match" 'BEGIN { exit !(m == 1) }' || {
  echo "design gate: search did not match the grid optimum"; exit 1; }
awk -v d="$d_evals" -v g="$g_evals" 'BEGIN { exit !(d * 10 <= g) }' || {
  echo "design gate: eval budget blown ($d_evals vs grid $g_evals)"; exit 1; }
awk -v f="$j_finite" -v d="$j_delta" 'BEGIN { exit !(f == 1 && d > 0) }' || {
  echo "design gate: joint trace not finite+improving (finite=$j_finite delta=$j_delta)"; exit 1; }
echo "design gate: grid optimum matched with $d_evals/$g_evals evals; joint search improved \$$j_delta"

echo "==> design bench gate (search latency within 25% of BENCH_design.json)"
# Two quantities: pure optimizer overhead per evaluation (analytic
# objective) and the end-to-end paper-space search against the real
# dcsim oracle. 25% rides out shared-box noise; a real regression
# (surrogate refit blow-up, memo miss storm) lands in multiples.
TTS_BENCH_SAMPLES=3 TTS_BENCH_OUT="$TMPDIR_CI/design_search.json" \
  cargo bench --offline -q -p tts-bench --bench design_search
bench_rc=0
"$REPRO" bench-check "$TMPDIR_CI/design_search.json" BENCH_design.json 25 || bench_rc=$?
if [ "$bench_rc" -eq 3 ]; then
  echo "ci.sh: WARNING: design bench gate skipped (no usable baseline; exit 3)"
elif [ "$bench_rc" -ne 0 ]; then
  exit "$bench_rc"
fi

echo "==> scenarios gate (backend x site x trace matrix: byte-identical at 1 and 4 threads, reuse win, served bytes)"
# The smoke matrix (1 site x 2 backends x 2 traces = 4 cells) must not
# let the worker count leak into its summary bytes.
for T in 1 4; do
  (cd "$TMPDIR_CI" && TTS_THREADS=$T "$REPRO_ABS" scenarios \
    --sites 1 --backends 2 --traces 2 --write > /dev/null)
  cp "$TMPDIR_CI/results/scenarios.summary.json" "$TMPDIR_CI/scenarios.t$T.summary.json"
done
cmp "$TMPDIR_CI/scenarios.t1.summary.json" "$TMPDIR_CI/scenarios.t4.summary.json"
# With the hot-water backend in the catalogue, selling the rejected heat
# must strictly lower the bill on at least one matrix cell.
(cd "$TMPDIR_CI" && "$REPRO_ABS" scenarios --sites 1 --backends 3 --traces 1 --write > /dev/null)
wins=$(grep -o '"hotwater_reuse_win_cells": *[0-9.eE+-]*' \
  "$TMPDIR_CI/results/scenarios.summary.json" | awk '{print $2}')
[ -n "$wins" ] || { echo "scenarios summary lacks hotwater_reuse_win_cells"; exit 1; }
awk -v w="$wins" 'BEGIN { exit !(w >= 1) }' || {
  echo "scenarios gate: hot-water reuse never beat the plain bill ($wins win cells)"; exit 1; }
echo "scenarios gate: hot-water reuse wins on $wins cell(s)"
# The serving layer must answer the same bytes repro filed — cold
# (computed on demand) and cached — for the same parameter set.
PORT_FILE="$TMPDIR_CI/ttsd.scen.port"
"$TTSD" --addr 127.0.0.1:0 --no-stdin-watch --port-file "$PORT_FILE" &
TTSD_PID=$!
for _ in $(seq 1 100); do [ -s "$PORT_FILE" ] && break; sleep 0.1; done
[ -s "$PORT_FILE" ] || { echo "ttsd never wrote its port file"; exit 1; }
ADDR="$(cat "$PORT_FILE")"
"$TTSD" req "$ADDR" POST /v1/experiments/scenarios \
  --body '{"sites": 1, "backends": 3, "traces": 1}' > "$TMPDIR_CI/scenarios.cold.body"
"$TTSD" req "$ADDR" POST /v1/experiments/scenarios \
  --body '{"sites": 1, "backends": 3, "traces": 1}' > "$TMPDIR_CI/scenarios.cached.body"
"$TTSD" req "$ADDR" POST /admin/shutdown > /dev/null
wait "$TTSD_PID"
cmp "$TMPDIR_CI/results/scenarios.summary.json" "$TMPDIR_CI/scenarios.cold.body"
cmp "$TMPDIR_CI/results/scenarios.summary.json" "$TMPDIR_CI/scenarios.cached.body"

echo "ci.sh: all gates passed"
