#!/usr/bin/env bash
# Hermetic CI gate: every step runs offline against the in-repo substrate
# (no crates.io access — the workspace has zero external dependencies).
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> bench targets compile"
cargo bench --offline --no-run -q

echo "==> smoke benches (thermal_solver, fig7_blockage)"
# Three samples apiece: enough to catch a hot-path regression or panic,
# cheap enough to run on every push. BENCH_baseline.json holds the
# pre-optimization reference for manual comparison.
TTS_BENCH_SAMPLES=3 cargo bench --offline -q -p tts-bench --bench thermal_solver
TTS_BENCH_SAMPLES=3 cargo bench --offline -q -p tts-bench --bench fig7_blockage

echo "ci.sh: all gates passed"
