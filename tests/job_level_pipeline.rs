//! The fully event-driven variant of the Figure 11 pipeline: discrete jobs
//! → measured per-interval utilization → wax/cooling simulation — the
//! end-to-end path the paper attributes to DCSim, without the fluid
//! shortcut.

use tts_dcsim::balancer::RoundRobin;
use tts_dcsim::cluster::{run_cooling_load, ClusterConfig};
use tts_dcsim::discrete::ClusterConfig as DiscreteConfig;
use tts_pcm::PcmMaterial;
use tts_server::{ServerClass, ServerWaxCharacteristics};
use tts_units::{Celsius, Seconds};
use tts_workload::{GoogleTrace, JobStream, JobType};

#[test]
fn job_level_and_fluid_cooling_loads_agree() {
    // 48 h of MapReduce-class jobs offered to a 50-server core-granular
    // cluster following the Google trace.
    let trace = GoogleTrace::default_two_day();
    let servers = 50;
    let jobs = JobStream::new(trace.total().clone(), JobType::MapReduce, servers, 17).collect_all();
    assert!(jobs.len() > 10_000, "expected a substantial job stream");

    let mut sim = DiscreteConfig::new(servers)
        .rack_size(10)
        .record_utilization(Seconds::from_minutes(5.0))
        .build(RoundRobin::new());
    let metrics = sim.run(&jobs, trace.total().duration());
    let measured = sim.utilization_trace().expect("recording enabled");

    // The measured utilization reproduces the offered trace.
    assert!(
        (measured.mean() - trace.total().mean()).abs() < 0.05,
        "measured mean {} vs offered {}",
        measured.mean(),
        trace.total().mean()
    );
    assert!(metrics.completed > 0);

    // Drive the wax/cooling model with both traces and compare.
    let spec = ServerClass::LowPower1U.spec();
    let chars = ServerWaxCharacteristics::extract(
        &spec,
        &PcmMaterial::commercial_paraffin(Celsius::new(48.0)),
    );
    let config = ClusterConfig::paper_cluster(spec, chars);
    let fluid = run_cooling_load(&config, trace.total());
    let job_level = run_cooling_load(&config, &measured);

    let fluid_red = fluid.peak_reduction.value();
    let job_red = job_level.peak_reduction.value();
    assert!(job_red > 0.0, "job-level run must still shave the peak");
    assert!(
        (fluid_red - job_red).abs() < 0.6 * fluid_red.max(job_red),
        "fluid {fluid_red} vs job-level {job_red} peak reduction"
    );

    // Peak magnitudes agree (queueing adds noise; 15 % tolerance).
    assert!(
        (fluid.peak_no_wax.value() - job_level.peak_no_wax.value()).abs()
            < 0.15 * fluid.peak_no_wax.value(),
        "fluid peak {} vs job-level peak {}",
        fluid.peak_no_wax.value(),
        job_level.peak_no_wax.value()
    );
}

#[test]
fn mixed_job_types_fill_the_cluster_proportionally() {
    // All three job types, offered by their Figure 10 components, land on
    // one cluster; measured utilization ≈ the total trace.
    let trace = GoogleTrace::default_two_day();
    let servers = 30;
    // One day only, for runtime.
    let day: Vec<f64> = trace.total().values()[..288].to_vec();
    let sub = tts_workload::TimeSeries::new(Seconds::from_minutes(5.0), day);

    let mut all_jobs = Vec::new();
    for (i, jt) in JobType::ALL.iter().enumerate() {
        // Each type offers a third of the load.
        let third = sub.map(|v| v / 3.0);
        let stream = JobStream::new(third, *jt, servers, 100 + i as u64);
        all_jobs.extend(stream.collect_all());
    }
    all_jobs.sort_by(|a, b| a.arrival.value().total_cmp(&b.arrival.value()));
    // Re-id to satisfy the simulator's ordering assertion (ids are
    // informational here).
    let mut sim = DiscreteConfig::new(servers)
        .rack_size(10)
        .record_utilization(Seconds::from_minutes(10.0))
        .build(RoundRobin::new());
    sim.run(&all_jobs, sub.duration());
    let measured = sim.utilization_trace().expect("recorded");
    assert!(
        (measured.mean() - sub.mean()).abs() < 0.06,
        "measured {} vs offered {}",
        measured.mean(),
        sub.mean()
    );
}
