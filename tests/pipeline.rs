//! Cross-crate pipeline coherence: each substrate's outputs feed the next
//! stage with consistent physics.

use tts_pcm::{PcmMaterial, PcmState};
use tts_server::{ServerClass, ServerThermalModel, ServerWaxCharacteristics};
use tts_units::{Celsius, Fraction, Seconds, Watts};
use tts_workload::GoogleTrace;

/// The aggregate characteristics must reproduce the full thermal model's
/// steady-state wax-zone temperatures (that is their whole job).
#[test]
fn characteristics_match_the_full_model() {
    for class in ServerClass::ALL {
        let spec = class.spec();
        let material = PcmMaterial::commercial_paraffin(Celsius::new(45.0));
        let chars = ServerWaxCharacteristics::extract(&spec, &material);

        let mut placebo = ServerThermalModel::with_placebo(spec.clone());
        for u in [0.3, 0.65, 0.9] {
            placebo.set_load(Fraction::new(u), Fraction::ONE);
            placebo
                .run_to_steady_state(Seconds::new(30.0), 1e-5, Seconds::new(1e6))
                .expect("steady state");
            let full_model = placebo.wax_air_temp().value();
            let aggregate = chars
                .air_temp_model
                .at(spec.wall_power(Fraction::new(u), Fraction::ONE))
                .value();
            assert!(
                (full_model - aggregate).abs() < 2.5,
                "{class} at u={u}: full model {full_model:.1} °C vs aggregate {aggregate:.1} °C"
            );
        }
    }
}

/// The aggregate wax state and the in-network PCM element agree on melt
/// behaviour under the same forcing.
#[test]
fn aggregate_and_network_wax_agree_qualitatively() {
    let spec = ServerClass::LowPower1U.spec();
    let material = PcmMaterial::validation_wax();
    let chars = ServerWaxCharacteristics::extract(&spec, &material);

    // Full network, full load, two hours.
    let mut model = ServerThermalModel::with_wax(spec.clone(), &material);
    model.set_load(Fraction::ZERO, Fraction::ONE);
    model
        .run_to_steady_state(Seconds::new(30.0), 1e-5, Seconds::new(1e6))
        .expect("idle steady state");
    model.set_load(Fraction::ONE, Fraction::ONE);
    for _ in 0..240 {
        model.step(Seconds::new(30.0));
    }
    let network_melt = model.melt_fraction().value();

    // Aggregate model under the same story.
    let mut agg = PcmState::new(&chars.material, chars.mass, chars.idle_air_temp);
    let t_air = chars
        .air_temp_model
        .at(spec.wall_power(Fraction::ONE, Fraction::ONE));
    for _ in 0..240 {
        agg.step(t_air, chars.effective_coupling(), Seconds::new(30.0));
    }
    let aggregate_melt = agg.melt_fraction().value();

    assert!(
        network_melt > 0.02 && aggregate_melt > 0.02,
        "both models must start melting: network {network_melt}, aggregate {aggregate_melt}"
    );
    assert!(
        (network_melt - aggregate_melt).abs() < 0.45,
        "melt fractions diverge: network {network_melt} vs aggregate {aggregate_melt}"
    );
}

/// Cluster cooling-load energy bookkeeping: what the wax absorbs at peak
/// equals what it returns off-peak (within the end-state residual).
#[test]
fn cluster_energy_shift_balances() {
    let spec = ServerClass::HighThroughput2U.spec();
    let chars = ServerWaxCharacteristics::extract(
        &spec,
        &PcmMaterial::commercial_paraffin(Celsius::new(48.0)),
    );
    let config = tts_dcsim::cluster::ClusterConfig::paper_cluster(spec, chars);
    let trace = GoogleTrace::default_two_day();
    let run = tts_dcsim::cluster::run_cooling_load(&config, trace.total());

    let dt = trace.total().dt().value();
    let absorbed: f64 = run
        .load_no_wax_kw
        .iter()
        .zip(&run.load_with_wax_kw)
        .map(|(nw, w)| (nw - w).max(0.0) * 1e3 * dt)
        .sum();
    let released: f64 = run
        .load_no_wax_kw
        .iter()
        .zip(&run.load_with_wax_kw)
        .map(|(nw, w)| (w - nw).max(0.0) * 1e3 * dt)
        .sum();
    assert!(absorbed > 0.0 && released > 0.0);
    let imbalance = (absorbed - released).abs() / absorbed;
    assert!(
        imbalance < 0.30,
        "absorbed {absorbed:.2e} J vs released {released:.2e} J"
    );
}

/// The workload stream drives the discrete simulator to the trace's mean
/// utilization — job-level and fluid views agree.
#[test]
fn discrete_and_fluid_utilization_agree() {
    use tts_dcsim::balancer::RoundRobin;
    use tts_dcsim::discrete::ClusterConfig;
    use tts_workload::{JobStream, JobType};

    let trace = GoogleTrace::default_two_day();
    // Six simulated hours at 1-core granularity on a small cluster.
    let six_hours: Vec<f64> = trace.total().values()[..72].to_vec();
    let sub_trace = tts_workload::TimeSeries::new(Seconds::new(300.0), six_hours.clone());
    let mean_offered = sub_trace.mean();
    let jobs = JobStream::new(sub_trace, JobType::SocialNetworking, 24, 11).collect_all();
    let mut sim = ClusterConfig::new(24)
        .rack_size(12)
        .build(RoundRobin::new());
    let m = sim.run(&jobs, Seconds::new(6.0 * 3600.0));
    assert!(
        (m.cluster_utilization - mean_offered).abs() < 0.08,
        "discrete {} vs offered {}",
        m.cluster_utilization,
        mean_offered
    );
}

/// Wax cost from the pcm crate lands inside Table 2's WaxCapEx band.
#[test]
fn wax_capex_crosses_crates_consistently() {
    use tts_pcm::cost::WaxCapEx;
    use tts_tco::Table2;

    let table = Table2::paper();
    for class in ServerClass::ALL {
        let spec = class.spec();
        let bank = spec.default_wax().bank();
        let capex = WaxCapEx::price(&bank, &PcmMaterial::commercial_paraffin(Celsius::new(48.0)));
        let monthly = capex.per_month().value();
        assert!(
            monthly > 0.03 && monthly < 0.35,
            "{class}: wax {monthly} $/server/month vs Table 2 {}",
            table.wax_capex_per_server
        );
    }
}

/// Sanity: a zero-utilization cluster presents its idle power as cooling
/// load and nothing melts.
#[test]
fn idle_cluster_is_thermally_quiet() {
    let spec = ServerClass::LowPower1U.spec();
    let chars = ServerWaxCharacteristics::extract(
        &spec,
        &PcmMaterial::commercial_paraffin(Celsius::new(48.0)),
    );
    let config = tts_dcsim::cluster::ClusterConfig::paper_cluster(spec.clone(), chars);
    let flat = tts_workload::TimeSeries::new(Seconds::new(300.0), vec![0.0; 288]);
    let run = tts_dcsim::cluster::run_cooling_load(&config, &flat);
    let idle_kw = spec.wall_power(Fraction::ZERO, Fraction::ONE).value() * 1008.0 / 1e3;
    assert!((run.peak_no_wax.value() - idle_kw).abs() < 0.5);
    assert!(run.melt_fraction.iter().all(|&m| m < 0.05));
    // Tiny sensible exchange from the linear fit's residual is allowed;
    // on average the idle cluster moves < 0.1 W per server into the wax.
    let mean_abs_kw: f64 = run
        .load_no_wax_kw
        .iter()
        .zip(&run.load_with_wax_kw)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / run.load_no_wax_kw.len() as f64;
    assert!(
        mean_abs_kw < 0.1,
        "idle cluster should exchange ~nothing with the wax: {mean_abs_kw} kW mean"
    );
    let _ = Watts::ZERO;
}
