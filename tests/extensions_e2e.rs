//! Cross-crate integration of the beyond-the-paper extensions: each study
//! pulls real characteristics from the server thermal model rather than
//! synthetic constants.

use thermal_time_shifting::extensions::{
    cooling_opex_study, flash_crowd_study, lifetime_study, partial_deployment_study,
    relocation_study, supercooling_study,
};
use thermal_time_shifting::Scenario;
use tts_cooling::emergency::{ride_through, RoomModel};
use tts_server::ServerClass;
use tts_units::{Celsius, Joules, Watts, WattsPerKelvin};

#[test]
fn ride_through_with_real_server_characteristics() {
    // Pull the 1U's actual coupling and latent budget out of the thermal
    // pipeline and feed them to the emergency model.
    let study = Scenario::new(ServerClass::LowPower1U).cooling_load_study();
    let n = 1008.0;
    let coupling = WattsPerKelvin::new(study.chars.effective_coupling().value() * n);
    let budget = Joules::new(study.chars.latent_capacity.value() * n);
    let it_power = Watts::new(
        ServerClass::LowPower1U
            .spec()
            .wall_power(tts_units::Fraction::ONE, tts_units::Fraction::ONE)
            .value()
            * n,
    );
    let room = RoomModel::cluster_room();

    let bare = ride_through(
        &room,
        it_power,
        WattsPerKelvin::ZERO,
        Joules::ZERO,
        Celsius::new(30.0),
    );
    let waxed = ride_through(&room, it_power, coupling, budget, Celsius::new(30.0));
    let bare_t = bare.time_to_critical.expect("bare room overheats");
    let waxed_t = waxed
        .time_to_critical
        .expect("waxed room overheats eventually");
    assert!(
        waxed_t.value() > bare_t.value(),
        "real-chars wax must extend ride-through"
    );
    // And the extension is bounded (the rate limit is real physics).
    assert!(waxed_t.value() < 5.0 * bare_t.value());
    // The report carries the peak the room actually saw.
    assert!(waxed.peak_room_temp.value() >= room.critical.value());
    assert!(waxed.wax_energy_absorbed.value() > 0.0);
}

#[test]
fn extension_studies_cover_all_server_classes() {
    // The extension suite must not be 1U-only: spot-check the other two
    // classes through the same entry points.
    for class in [ServerClass::HighThroughput2U, ServerClass::OpenComputeBlade] {
        let opex = cooling_opex_study(class);
        assert!(
            opex.with_pcm_per_year.value() < opex.without_pcm_per_year.value(),
            "{class}: opex"
        );
        let life = lifetime_study(class);
        assert!(
            life.capacity_after_server_life.value() > 0.85,
            "{class}: lifetime"
        );
        let deploy = partial_deployment_study(class, 3);
        assert!(
            deploy[2].peak_reduction.value() > deploy[0].peak_reduction.value(),
            "{class}: deployment"
        );
    }
}

#[test]
fn supercooling_and_flash_crowd_are_consistent_for_the_2u() {
    let s = supercooling_study(ServerClass::HighThroughput2U, 2.0);
    assert!(s.supercooled_reduction.value() > 0.0);
    let f = flash_crowd_study(ServerClass::HighThroughput2U);
    assert!(f.surge_reduction.value() > 0.0);
}

#[test]
fn relocation_bills_are_per_machine_hour_not_per_watt() {
    // Both clusters have 1008 machines, the same trace shape and the same
    // oversubscription level, so at a flat $/server-hour rate their no-wax
    // relocation bills coincide — the machine-hours of displaced work are
    // identical even though a 2U hour carries more computation. (Pricing
    // relocated *computation* would need a per-class rate; the default
    // models WAN/SLA costs, which follow sessions, not FLOPs.)
    let one_u = relocation_study(ServerClass::LowPower1U);
    let two_u = relocation_study(ServerClass::HighThroughput2U);
    let rel = (two_u.without_pcm_per_year.value() - one_u.without_pcm_per_year.value()).abs()
        / one_u.without_pcm_per_year.value();
    assert!(rel < 0.05, "bills should nearly coincide: {rel}");
    // The wax, however, helps the two classes by different amounts.
    let helped_1u = one_u.without_pcm_per_year.value() - one_u.with_pcm_per_year.value();
    let helped_2u = two_u.without_pcm_per_year.value() - two_u.with_pcm_per_year.value();
    assert!(helped_1u > 0.0 && helped_2u > 0.0);
    assert!(
        (helped_1u - helped_2u).abs() > 1.0,
        "wax benefits should differ across classes"
    );
}
