//! End-to-end reproduction criteria: the paper's headline claims, checked
//! through the full public API (thermal model → characteristics →
//! datacenter simulation → cost model).

use thermal_time_shifting::experiments::{self, Fig11Result, Fig12Result};
use thermal_time_shifting::Scenario;
use tts_server::ServerClass;

fn fig11_all() -> Vec<Fig11Result> {
    ServerClass::ALL
        .iter()
        .map(|&c| experiments::fig11(c))
        .collect()
}

fn fig12_all() -> Vec<Fig12Result> {
    ServerClass::ALL
        .iter()
        .map(|&c| experiments::fig12(c))
        .collect()
}

#[test]
fn headline_claim_peak_cooling_reduction() {
    // "PCM can reduce the necessary cooling system size by up to 12 %":
    // every class lands within 0.5–1.5× of its paper number, and the best
    // class shaves ≥ 7 %.
    let results = fig11_all();
    let mut best: f64 = 0.0;
    for r in &results {
        let measured = r.peak_reduction.measured;
        let paper = r.peak_reduction.paper;
        assert!(
            measured > 0.5 * paper && measured < 1.5 * paper,
            "{}: {measured}% vs paper {paper}%",
            r.class
        );
        best = best.max(measured);
    }
    assert!(best >= 7.0, "best reduction only {best}%");
}

#[test]
fn headline_claim_2u_shaves_the_most() {
    // Figure 11's ordering: the 2U (most wax per server) wins.
    let results = fig11_all();
    let r = |i: usize| results[i].peak_reduction.measured;
    assert!(r(1) >= r(0), "2U {} vs 1U {}", r(1), r(0));
    assert!(r(1) >= r(2), "2U {} vs OCP {}", r(1), r(2));
}

#[test]
fn headline_claim_constrained_throughput() {
    // "PCM can increase peak throughput up to 69 % while delaying the
    // onset of thermal limits by over 3 hours": gains in the tens of
    // percent, 2U leading, boosts lasting hours.
    let results = fig12_all();
    for r in &results {
        assert!(
            r.peak_gain.measured >= 15.0,
            "{}: gain {}%",
            r.class,
            r.peak_gain.measured
        );
        assert!(
            r.study.run.boosted_hours >= 1.0,
            "{}: boosted only {} h",
            r.class,
            r.study.run.boosted_hours
        );
    }
    assert!(
        results[1].peak_gain.measured > results[0].peak_gain.measured
            && results[1].peak_gain.measured > results[2].peak_gain.measured,
        "2U must gain the most"
    );
}

#[test]
fn refreeze_completes_within_the_daily_cycle() {
    // §5.1: "there is sufficient cooling capacity to completely resolidify
    // before the end of a 24 hour cycle", with the elevated tail lasting
    // 6–9 h.
    for class in ServerClass::ALL {
        let study = Scenario::new(class).cooling_load_study();
        assert!(study.run.refrozen_at_end, "{class}: wax still molten");
        let per_day = study.run.elevated_hours / 2.0;
        assert!(
            (2.0..14.0).contains(&per_day),
            "{class}: refreeze tail {per_day} h/day (paper: 6-9 h)"
        );
    }
}

#[test]
fn melt_onset_in_the_upper_load_range() {
    // §5.1: "the best wax typically begins to melt when a server exceeds
    // 75 % load" — accept 50–100 % of peak power.
    for class in ServerClass::ALL {
        let study = Scenario::new(class).cooling_load_study();
        let onset = study.chars.melt_onset_power();
        let peak = class
            .spec()
            .wall_power(tts_units::Fraction::ONE, tts_units::Fraction::ONE);
        let frac = onset.value() / peak.value();
        assert!(
            (0.5..=1.05).contains(&frac),
            "{class}: melt onset at {:.0}% of peak power",
            frac * 100.0
        );
    }
}

#[test]
fn tco_analyses_scale_with_the_reductions() {
    let f11 = fig11_all();
    let f12 = fig12_all();
    for ((class, f11), f12) in ServerClass::ALL.iter().zip(&f11).zip(&f12) {
        let s = experiments::tco_summary(*class, f11, f12);
        // Six-figure downsizing savings, seven-figure retrofit savings.
        assert!(
            (5e4..6e5).contains(&s.downsize_savings_per_year.measured),
            "{class}: downsize {}",
            s.downsize_savings_per_year.measured
        );
        assert!(
            (1e6..6e6).contains(&s.retrofit_savings_per_year.measured),
            "{class}: retrofit {}",
            s.retrofit_savings_per_year.measured
        );
        // Thousands of added servers in a 10 MW datacenter.
        assert!(
            s.added_servers.measured > 1000.0,
            "{class}: added {}",
            s.added_servers.measured
        );
        // Double-digit TCO efficiency.
        assert!(
            (10.0..50.0).contains(&s.tco_efficiency_pct.measured),
            "{class}: efficiency {}",
            s.tco_efficiency_pct.measured
        );
    }
}

#[test]
fn validation_agrees_sub_kelvin_at_steady_state() {
    // Figure 4's bottom line (paper: 0.22 °C mean difference).
    let r = experiments::fig4_with(&tts_server::validation::ValidationConfig {
        idle_before_h: 0.5,
        load_h: 6.0,
        idle_after_h: 6.0,
        sample_period: tts_units::Seconds::new(120.0),
        ..Default::default()
    });
    assert!(
        r.steady_wax.mean_difference.abs() < 1.5,
        "steady-state mean difference {} K",
        r.steady_wax.mean_difference
    );
    assert!(r.transient_wax.correlation > 0.95);
}
