//! Every experiment must be exactly reproducible: seeded randomness only.

use thermal_time_shifting::experiments::{fig11, fig12, fig7};
use thermal_time_shifting::Scenario;
use tts_server::validation::{run, ValidationConfig};
use tts_server::ServerClass;
use tts_units::json::ToJson;
use tts_units::Seconds;
use tts_workload::{GoogleTrace, JobStream, JobType};

#[test]
fn workload_generation_is_bit_identical() {
    let a = GoogleTrace::default_two_day();
    let b = GoogleTrace::default_two_day();
    assert_eq!(a, b);
}

#[test]
fn job_streams_are_bit_identical() {
    let t = GoogleTrace::default_two_day();
    let mk = || {
        JobStream::new(t.total().clone(), JobType::WebSearch, 16, 99)
            .collect_all()
            .iter()
            .map(|j| (j.arrival.value(), j.service_time.value()))
            .collect::<Vec<_>>()
    };
    assert_eq!(mk(), mk());
}

#[test]
fn cooling_load_study_is_bit_identical() {
    let a = Scenario::new(ServerClass::LowPower1U).cooling_load_study();
    let b = Scenario::new(ServerClass::LowPower1U).cooling_load_study();
    assert_eq!(a.run, b.run);
    assert_eq!(a.material, b.material);
}

#[test]
fn validation_experiment_is_bit_identical() {
    let cfg = ValidationConfig {
        idle_before_h: 0.25,
        load_h: 2.0,
        idle_after_h: 2.0,
        sample_period: Seconds::new(120.0),
        ..Default::default()
    };
    let a = run(&cfg);
    let b = run(&cfg);
    assert_eq!(a, b);
}

#[test]
fn cooling_load_pipeline_json_is_byte_identical() {
    // The whole seeded pipeline — trace generation, melting-point grid
    // search, cluster simulation — run twice, serialized, and compared as
    // raw bytes. Any hidden nondeterminism (map iteration order, float
    // formatting, unseeded randomness) breaks this.
    let a = fig11(ServerClass::LowPower1U).to_json_pretty();
    let b = fig11(ServerClass::LowPower1U).to_json_pretty();
    assert_eq!(a.as_bytes(), b.as_bytes());
}

#[test]
fn constrained_pipeline_json_is_byte_identical() {
    let a = fig12(ServerClass::HighThroughput2U).to_json_pretty();
    let b = fig12(ServerClass::HighThroughput2U).to_json_pretty();
    assert_eq!(a.as_bytes(), b.as_bytes());
}

/// Runs `f` with the `tts_exec` worker count pinned to `threads`,
/// restoring the default afterwards even on panic. The override is
/// process-global, so a mutex keeps concurrently running tests from
/// clobbering each other's setting.
fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let guard = LOCK.lock();
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            tts_exec::set_thread_override(None);
        }
    }
    let _reset = Reset;
    tts_exec::set_thread_override(Some(threads));
    let out = f();
    drop(guard);
    out
}

#[test]
fn fig7_json_is_byte_identical_across_thread_counts() {
    // The tentpole determinism contract: the parallel execution engine
    // must make thread count unobservable. The full Figure 7 pipeline
    // (three servers × ten blockage steady-states) serialized at 1 worker
    // and at 8 workers must agree byte for byte.
    let serial = with_threads(1, || {
        fig7()
            .iter()
            .map(|(c, rows)| format!("{c}:{}", rows.to_json_pretty()))
            .collect::<Vec<_>>()
            .join("\n")
    });
    let parallel = with_threads(8, || {
        fig7()
            .iter()
            .map(|(c, rows)| format!("{c}:{}", rows.to_json_pretty()))
            .collect::<Vec<_>>()
            .join("\n")
    });
    assert_eq!(serial.as_bytes(), parallel.as_bytes());
}

#[test]
fn fig11_json_is_byte_identical_across_thread_counts() {
    // The melting-point grid search fans out per candidate; its in-order
    // reduction must pick the same winner (and produce the same bytes)
    // at any worker count.
    let serial = with_threads(1, || fig11(ServerClass::LowPower1U).to_json_pretty());
    let parallel = with_threads(8, || fig11(ServerClass::LowPower1U).to_json_pretty());
    assert_eq!(serial.as_bytes(), parallel.as_bytes());
}

/// Runs a registered experiment with a fresh metrics registry at the
/// given worker count and returns the rendered sidecar bytes.
fn sidecar_bytes(name: &str, threads: usize) -> String {
    with_threads(threads, || {
        let exp = thermal_time_shifting::experiment::find(name).expect("registered experiment");
        let ctx = thermal_time_shifting::ExecCtx::with_metrics();
        let _fig = exp.run(&ctx);
        ctx.sidecar(None, None)
            .expect("metrics enabled")
            .to_string_pretty()
    })
}

#[test]
fn fig7_metrics_sidecar_is_byte_identical_across_thread_counts() {
    // The observability contract: deterministic metrics (tick counters,
    // solver histograms, replayed gauges) must be as thread-invariant as
    // the physics. The whole Figure 7 pipeline instrumented and snapshotted
    // at 1, 4, and 8 workers must serialize byte for byte.
    let one = sidecar_bytes("fig7", 1);
    let four = sidecar_bytes("fig7", 4);
    let eight = sidecar_bytes("fig7", 8);
    assert_eq!(one.as_bytes(), four.as_bytes());
    assert_eq!(one.as_bytes(), eight.as_bytes());
}

#[test]
fn discrete_sim_metrics_sidecar_is_byte_identical_across_thread_counts() {
    // Same contract for the event-driven simulator, including the periodic
    // flush snapshots stamped with simulated time.
    let one = sidecar_bytes("dcsim", 1);
    let four = sidecar_bytes("dcsim", 4);
    let eight = sidecar_bytes("dcsim", 8);
    assert_eq!(one.as_bytes(), four.as_bytes());
    assert_eq!(one.as_bytes(), eight.as_bytes());
}

#[test]
fn scenarios_matrix_json_is_byte_identical_across_thread_counts() {
    // The scenario matrix fans its (site × backend × trace) cells out
    // through the ordered executor; the golden contract is that the
    // machine-readable summary — the same bytes `--write` files and
    // `ttsd` serves — is identical at 1, 4, and 8 workers.
    let render = |threads: usize| -> String {
        with_threads(threads, || {
            let exp = thermal_time_shifting::experiment::find("scenarios").expect("registered");
            let ctx = thermal_time_shifting::ExecCtx::disabled();
            let params = thermal_time_shifting::experiment::Params {
                sites: Some(2),
                backends: Some(3),
                traces: Some(2),
                seed: Some(42),
                ..Default::default()
            };
            let fig = exp.run_with(&ctx, &params).expect("supported params");
            exp.emit_json(&fig).to_string_pretty()
        })
    };
    let one = render(1);
    let four = render(4);
    let eight = render(8);
    assert_eq!(one.as_bytes(), four.as_bytes());
    assert_eq!(one.as_bytes(), eight.as_bytes());
    // The summary carries the matrix aggregate the CI gate checks.
    assert!(one.contains("hotwater_reuse_win_cells"));
}

#[test]
fn different_seeds_change_the_noise_not_the_physics() {
    let base = ValidationConfig {
        idle_before_h: 0.25,
        load_h: 2.0,
        idle_after_h: 2.0,
        sample_period: Seconds::new(120.0),
        ..Default::default()
    };
    let other = ValidationConfig {
        seed: 0xfeed,
        ..base.clone()
    };
    let a = run(&base);
    let b = run(&other);
    // Reference ("real") traces differ (noise + perturbation) ...
    assert_ne!(a.real_wax, b.real_wax);
    // ... but the production model is seed-free and identical.
    assert_eq!(a.icepak_wax, b.icepak_wax);
}
