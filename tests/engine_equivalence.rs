//! The engine-equivalence lockdown: the rebuilt discrete engine
//! (struct-of-arrays state + calendar queue) must produce *byte-identical*
//! metrics and utilization traces to the frozen legacy heap engine
//! (`tts_dcsim::legacy`) on every seeded (workload, cluster-size,
//! fault-plan) combination, at every thread count.
//!
//! Everything lives in ONE `#[test]` because `tts_exec::set_thread_override`
//! is process-global: parallel test threads in the same binary would race
//! on it. This binary is its own process, so the override is safe here.

use tts_chaos::{FaultPlan, PlanConfig, PlanFaultHook};
use tts_dcsim::balancer::{Balancer, LeastLoaded, RandomBalancer, RoundRobin};
use tts_dcsim::discrete::ClusterConfig;
use tts_dcsim::legacy::LegacySim;
use tts_units::Seconds;
use tts_workload::series::TimeSeries;
use tts_workload::{Job, JobStream, JobType};

/// One seeded combination of the spaces the two engines must agree on.
struct Combo {
    label: &'static str,
    servers: usize,
    cores: usize,
    rack_size: usize,
    seed: u64,
    util: f64,
    job_type: JobType,
    max_faults: usize,
}

fn jobs_for(c: &Combo) -> Vec<Job> {
    let trace = TimeSeries::new(Seconds::new(60.0), vec![c.util; 60]);
    JobStream::new(trace, c.job_type, c.servers, c.seed).collect_all()
}

fn plan_for(c: &Combo) -> FaultPlan {
    FaultPlan::sample(
        c.seed ^ 0xfa17,
        &PlanConfig {
            window_s: 3_600.0,
            servers: c.servers,
            max_faults: c.max_faults,
        },
    )
}

/// Runs the combo through both engines with identical inputs and asserts
/// byte-level agreement of the metrics and the utilization traces.
fn assert_engines_agree<B: Balancer + 'static>(c: &Combo, mk_balancer: impl Fn() -> B) {
    let jobs = jobs_for(c);
    let plan = plan_for(c);
    let horizon = Seconds::new(3_600.0);
    let cadence = Seconds::new(300.0);

    let mut legacy = LegacySim::new(c.servers, c.cores, c.rack_size, mk_balancer());
    legacy.set_fault_hook(Box::new(PlanFaultHook::from_plan(&plan)));
    legacy.record_utilization(cadence);
    let legacy_m = legacy.run(&jobs, horizon);

    let mut sim = ClusterConfig::new(c.servers)
        .cores_per_server(c.cores)
        .rack_size(c.rack_size)
        .record_utilization(cadence)
        .build(mk_balancer());
    sim.set_fault_hook(Box::new(PlanFaultHook::from_plan(&plan)));
    let new_m = sim.run(&jobs, horizon);

    // PartialEq first (clear diff on failure), then the Debug rendering,
    // which pins every f64 bit pattern — `assert_eq!` on floats admits
    // -0.0 == 0.0, the Debug string does not.
    assert_eq!(new_m, legacy_m, "{}: metrics diverged", c.label);
    assert_eq!(
        format!("{new_m:?}"),
        format!("{legacy_m:?}"),
        "{}: metrics bit patterns diverged",
        c.label
    );
    assert_eq!(
        format!("{:?}", sim.utilization_trace()),
        format!("{:?}", legacy.utilization_trace()),
        "{}: utilization traces diverged",
        c.label
    );
    assert_eq!(
        sim.servers_down(),
        legacy.servers_down(),
        "{}: down-server counts diverged",
        c.label
    );
}

/// ONE test on purpose — see the module docs. Ten combos × two thread
/// counts, all three balancer families, faulted and fault-free.
#[test]
fn rebuilt_engine_matches_legacy_heap_engine_bytewise() {
    let combos = [
        Combo {
            label: "tiny-underloaded",
            servers: 3,
            cores: 1,
            rack_size: 1,
            seed: 1,
            util: 0.3,
            job_type: JobType::WebSearch,
            max_faults: 0,
        },
        Combo {
            label: "small-faulted",
            servers: 4,
            cores: 2,
            rack_size: 2,
            seed: 2,
            util: 0.55,
            job_type: JobType::SocialNetworking,
            max_faults: 10,
        },
        Combo {
            label: "rack-misaligned",
            servers: 10,
            cores: 2,
            rack_size: 3,
            seed: 3,
            util: 0.6,
            job_type: JobType::SocialNetworking,
            max_faults: 6,
        },
        Combo {
            label: "mapreduce-heavy",
            servers: 8,
            cores: 4,
            rack_size: 4,
            seed: 4,
            util: 0.8,
            job_type: JobType::MapReduce,
            max_faults: 4,
        },
        Combo {
            label: "overloaded",
            servers: 6,
            cores: 1,
            rack_size: 2,
            seed: 5,
            util: 0.95,
            job_type: JobType::WebSearch,
            max_faults: 8,
        },
        Combo {
            label: "mid-cluster",
            servers: 16,
            cores: 2,
            rack_size: 8,
            seed: 6,
            util: 0.5,
            job_type: JobType::SocialNetworking,
            max_faults: 10,
        },
        Combo {
            label: "wide-cluster",
            servers: 32,
            cores: 2,
            rack_size: 8,
            seed: 7,
            util: 0.45,
            job_type: JobType::WebSearch,
            max_faults: 12,
        },
        Combo {
            label: "single-server",
            servers: 1,
            cores: 2,
            rack_size: 1,
            seed: 8,
            util: 0.7,
            job_type: JobType::MapReduce,
            max_faults: 3,
        },
        Combo {
            label: "idle-trickle",
            servers: 12,
            cores: 2,
            rack_size: 6,
            seed: 9,
            util: 0.05,
            job_type: JobType::WebSearch,
            max_faults: 10,
        },
        Combo {
            label: "kill-happy",
            servers: 5,
            cores: 2,
            rack_size: 5,
            seed: 10,
            util: 0.65,
            job_type: JobType::SocialNetworking,
            max_faults: 16,
        },
    ];

    for threads in [1usize, 4] {
        tts_exec::set_thread_override(Some(threads));
        for c in &combos {
            assert_engines_agree(c, LeastLoaded::new);
            assert_engines_agree(c, RoundRobin::new);
            assert_engines_agree(c, || RandomBalancer::new(c.seed ^ 0xb0b));
        }
    }
    tts_exec::set_thread_override(None);
}
