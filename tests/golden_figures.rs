//! Golden-value regression tests for the headline figure pipelines.
//!
//! These pin the current (seed-locked) outputs of the Figure 7 blockage
//! sweep, the Figure 11 cooling-load study, and the Figure 12 constrained
//! throughput study. The tolerances are tight — the pipelines are fully
//! deterministic, so anything beyond float noise means the physics or the
//! seeding changed and the fixture must be re-derived deliberately (run
//! `cargo run --release --example golden_scan` equivalent logic and update
//! the constants below, explaining why in the commit).

use thermal_time_shifting::experiments::{fig11, fig12, fig7};
use tts_server::ServerClass;

/// Relative tolerance for deterministic pipelines: float noise only.
const REL_TOL: f64 = 1e-9;

fn assert_close(actual: f64, expected: f64, what: &str) {
    let tol = REL_TOL * (1.0 + expected.abs());
    assert!(
        (actual - expected).abs() <= tol,
        "{what}: got {actual}, pinned {expected} (tol {tol:e})"
    );
}

/// Figure 7 fixture: (class, first/last row of the 10-point sweep).
/// Columns: blockage, outlet °C, wax-zone °C, airflow m³/s.
struct BlockageFixture {
    class: ServerClass,
    first: [f64; 4],
    last: [f64; 4],
}

const FIG7_GOLD: [BlockageFixture; 3] = [
    BlockageFixture {
        class: ServerClass::LowPower1U,
        first: [0.0, 34.945020, 48.787406, 0.016133550],
        last: [0.9, 50.565686, 86.150310, 0.006275938],
    },
    BlockageFixture {
        class: ServerClass::HighThroughput2U,
        first: [0.0, 35.429635, 49.961602, 0.041578133],
        last: [0.9, 48.018779, 80.091599, 0.018838764],
    },
    BlockageFixture {
        class: ServerClass::OpenComputeBlade,
        first: [0.0, 68.752366, 73.252714, 0.007708688],
        last: [0.9, 256.586585, 286.131515, 0.001174200],
    },
];

// The fig7 fixtures above are printed to 6/9 decimals; use a matching
// tolerance there instead of REL_TOL.
const FIG7_TOL: f64 = 5e-6;

#[test]
fn fig7_blockage_sweep_matches_golden_values() {
    let sweeps = fig7();
    assert_eq!(sweeps.len(), 3, "three server classes");
    for gold in &FIG7_GOLD {
        let (_, rows) = sweeps
            .iter()
            .find(|(c, _)| *c == gold.class)
            .expect("class present in fig7 output");
        assert_eq!(rows.len(), 10, "10-point sweep");
        for (row, pin) in [(&rows[0], &gold.first), (&rows[9], &gold.last)] {
            let got = [
                row.blockage.value(),
                row.outlet.value(),
                row.wax_zone.value(),
                row.flow.value(),
            ];
            for (g, p) in got.iter().zip(pin) {
                let tol = FIG7_TOL * (1.0 + p.abs());
                assert!(
                    (g - p).abs() <= tol,
                    "fig7 {:?}: got {g}, pinned {p}",
                    gold.class
                );
            }
        }
    }
}

#[test]
fn fig7_sweep_is_monotone_in_blockage() {
    // Structural invariant alongside the point pins: more blockage means
    // less flow and hotter wax-zone air, for every class.
    for (class, rows) in fig7() {
        for w in rows.windows(2) {
            assert!(
                w[1].flow.value() < w[0].flow.value(),
                "{class:?}: flow must fall with blockage"
            );
            assert!(
                w[1].wax_zone.value() > w[0].wax_zone.value(),
                "{class:?}: wax-zone temperature must rise with blockage"
            );
        }
    }
}

const FIG11_GOLD: [(ServerClass, f64); 3] = [
    (ServerClass::LowPower1U, 7.344114075480334),
    (ServerClass::HighThroughput2U, 8.836171055798314),
    (ServerClass::OpenComputeBlade, 6.0791419240973426),
];

#[test]
fn fig11_peak_cooling_reduction_matches_golden_values() {
    for (class, pinned) in FIG11_GOLD {
        let r = fig11(class);
        assert_close(
            r.study.run.peak_reduction.percent(),
            pinned,
            &format!("fig11 {class:?} peak reduction %"),
        );
    }
}

/// Figure 12 fixture: (class, peak gain %, boosted hours over the 2-day run).
const FIG12_GOLD: [(ServerClass, f64, f64); 3] = [
    (ServerClass::LowPower1U, 40.845070423, 25.083333333),
    (ServerClass::HighThroughput2U, 45.746954132, 12.0),
    (ServerClass::OpenComputeBlade, 30.273948847, 4.25),
];

// Printed to 9 decimals when pinned.
const FIG12_TOL: f64 = 5e-9;

#[test]
fn fig12_throughput_study_matches_golden_values() {
    for (class, gain, hours) in FIG12_GOLD {
        let r = fig12(class);
        let got_gain = r.study.run.peak_gain.percent();
        let got_hours = r.study.run.boosted_hours;
        assert!(
            (got_gain - gain).abs() <= FIG12_TOL * (1.0 + gain.abs()),
            "fig12 {class:?} peak gain: got {got_gain}, pinned {gain}"
        );
        assert!(
            (got_hours - hours).abs() <= FIG12_TOL * (1.0 + hours.abs()),
            "fig12 {class:?} boosted hours: got {got_hours}, pinned {hours}"
        );
    }
}
